"""λ-sweep cost: cold fit per value vs compress-once / refit-many.

The compress-once/refit-many split (``CompressedKernel`` +
``ULVFactorization.factor``) turns a regularization sweep from
``O(sweep x full build)`` into ``O(1 build + sweep x ULV)``.  This
benchmark measures that contract on the real training stack, twice:

* **serial** — one cold :class:`repro.krr.HSSSolver` fit, then a λ sweep
  via ``refit``; asserts zero recompressions, bitwise equality with a
  cold fit at the same λ, and a measurable per-λ speedup;
* **warm-grid shards=2** — the same sweep through
  :class:`repro.distributed.DistributedSolver` on one warm
  :class:`repro.distributed.WorkerGrid`; asserts zero new process spawns,
  zero recompressions, bitwise equality with a cold distributed fit and a
  measurable speedup over it.

Everything lands in ``BENCH_lambda_sweep.json`` via
:mod:`benchmarks._harness`.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_lambda_sweep.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread so timings compare single axes of parallelism
# (must happen before NumPy loads its BLAS).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np
import pytest
from _harness import write_bench_json
from conftest import scaled

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import standardize, susy_like
from repro.distributed.grid import WorkerGrid
from repro.distributed.plan import ShardPlan
from repro.distributed.solver import DistributedSolver
from repro.kernels import GaussianKernel
from repro.krr.solvers import HSSSolver

LEAF_SIZE = 64
LAMBDAS = (0.5, 1.0, 2.0, 4.0, 8.0)


@pytest.fixture(scope="module")
def sweep_problem():
    n = scaled(1536)
    X, _ = susy_like(n, seed=0)
    X = standardize(X)
    result = cluster(X, method="two_means", leaf_size=LEAF_SIZE, seed=0)
    kernel = GaussianKernel(h=1.0)
    hss_opts = HSSOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5,
                          initial_samples=96)
    h_opts = HMatrixOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5)
    rhs = np.random.default_rng(1).standard_normal(n)
    return result.X, result.tree, kernel, hss_opts, h_opts, rhs


def _serial_sweep(problem):
    """Cold fit at LAMBDAS[0], then refit through the rest; plus one cold
    fit at the final λ for the speedup / equality contrast."""
    X_perm, tree, kernel, hss_opts, h_opts, rhs = problem
    solver = HSSSolver(hss_options=hss_opts, hmatrix_options=h_opts, seed=0)
    try:
        t0 = time.perf_counter()
        solver.fit(X_perm, tree, kernel, LAMBDAS[0])
        cold_fit_s = time.perf_counter() - t0
        refit_seconds = []
        for lam in LAMBDAS[1:]:
            t1 = time.perf_counter()
            solver.refit(lam)
            refit_seconds.append(time.perf_counter() - t1)
        serial_counts = {"kernel_constructions": solver.compression_count,
                         "refits": solver.report.refits}
        assert solver.compression_count == 1, \
            "serial λ sweep must not recompress"
        assert solver.report.refits == len(LAMBDAS) - 1
        w_refit = solver.solve(rhs).copy()
    finally:
        solver.close()

    cold = HSSSolver(hss_options=hss_opts, hmatrix_options=h_opts, seed=0)
    try:
        t2 = time.perf_counter()
        cold.fit(X_perm, tree, kernel, LAMBDAS[-1])
        cold_last_s = time.perf_counter() - t2
        w_cold = cold.solve(rhs).copy()
    finally:
        cold.close()
    assert np.array_equal(w_refit, w_cold), \
        "serial refit must be bitwise equal to a cold fit at the same λ"
    return cold_fit_s, cold_last_s, refit_seconds, serial_counts


def _warm_grid_sweep(problem):
    """The same sweep through a shards=2 DistributedSolver on a warm grid."""
    X_perm, tree, kernel, hss_opts, h_opts, rhs = problem
    plan = ShardPlan.from_tree(tree, 2)
    results = {}
    with WorkerGrid(plan, X_perm) as grid:
        solver = DistributedSolver(shards=2, hss_options=hss_opts,
                                   hmatrix_options=h_opts, seed=0,
                                   coupling_rel_tol=1e-5, grid=grid)
        t0 = time.perf_counter()
        solver.fit(X_perm, tree, kernel, LAMBDAS[0])
        results["cold_fit_s"] = time.perf_counter() - t0
        spawned = grid.spawn_count
        refit_seconds = []
        for lam in LAMBDAS[1:]:
            t1 = time.perf_counter()
            solver.refit(lam)
            refit_seconds.append(time.perf_counter() - t1)
        assert grid.spawn_count == spawned, \
            "warm-grid λ sweep must spawn zero new processes"
        assert solver.compression_count == 1, \
            "warm-grid λ sweep must not recompress"
        results["kernel_constructions"] = solver.compression_count
        results["refits"] = len(LAMBDAS) - 1
        results["refit_seconds"] = refit_seconds
        w_refit = solver.solve(rhs).copy()
        solver.close()

        cold = DistributedSolver(shards=2, hss_options=hss_opts,
                                 hmatrix_options=h_opts, seed=0,
                                 coupling_rel_tol=1e-5, grid=grid)
        t2 = time.perf_counter()
        cold.fit(X_perm, tree, kernel, LAMBDAS[-1])
        results["cold_last_s"] = time.perf_counter() - t2
        w_cold = cold.solve(rhs).copy()
        cold.close()
    # Identical λ-free shard compressions + identical shift: the sharded
    # refit is bitwise equal to the cold sharded fit at the same λ ...
    assert np.array_equal(w_refit, w_cold), \
        "warm-grid refit must equal a cold distributed fit at the same λ"
    results["w_refit"] = w_refit
    return results


def test_lambda_sweep_refit_speedup(benchmark, sweep_problem):
    X_perm, tree, kernel, hss_opts, h_opts, rhs = sweep_problem

    cold_fit_s, cold_last_s, serial_refits, serial_counts = \
        _serial_sweep(sweep_problem)
    serial_refit_s = min(serial_refits)
    serial_speedup = cold_last_s / serial_refit_s

    dist = _warm_grid_sweep(sweep_problem)
    dist_refit_s = min(dist["refit_seconds"])
    dist_speedup = dist["cold_last_s"] / dist_refit_s

    # ... and within the coupling tolerance of the serial solution.
    serial = HSSSolver(hss_options=hss_opts, hmatrix_options=h_opts, seed=0)
    try:
        serial.fit(X_perm, tree, kernel, LAMBDAS[-1])
        w_serial = serial.solve(rhs)
    finally:
        serial.close()
    rel_dev = (np.linalg.norm(dist["w_refit"] - w_serial)
               / np.linalg.norm(w_serial))
    assert rel_dev < 1e-3, f"sharded refit deviates by {rel_dev:.2e}"

    n = X_perm.shape[0]
    path = write_bench_json(
        "lambda_sweep",
        results={
            "lambdas": list(LAMBDAS),
            "serial_cold_fit_s": round(cold_fit_s, 4),
            "serial_cold_last_s": round(cold_last_s, 4),
            "serial_refit_s": round(serial_refit_s, 4),
            "serial_refit_speedup": round(serial_speedup, 3),
            "serial_sweep_refit_total_s": round(sum(serial_refits), 4),
            "serial_kernel_constructions": serial_counts["kernel_constructions"],
            "serial_refits": serial_counts["refits"],
            "grid_kernel_constructions": dist["kernel_constructions"],
            "grid_refits": dist["refits"],
            "grid_cold_fit_s": round(dist["cold_fit_s"], 4),
            "grid_cold_last_s": round(dist["cold_last_s"], 4),
            "grid_refit_s": round(dist_refit_s, 4),
            "grid_refit_speedup": round(dist_speedup, 3),
            "sharded_vs_serial_rel_dev": float(rel_dev),
        },
        sizes={"n_train": int(n), "dim": int(X_perm.shape[1]),
               "leaf_size": LEAF_SIZE, "sweep_points": len(LAMBDAS)},
        shards=2)
    benchmark.extra_info["serial_refit_speedup"] = round(serial_speedup, 3)
    benchmark.extra_info["grid_refit_speedup"] = round(dist_speedup, 3)
    print(f"\nserial: cold={cold_last_s:.3f}s refit={serial_refit_s:.3f}s "
          f"({serial_speedup:.2f}x)  warm grid shards=2: "
          f"cold={dist['cold_last_s']:.3f}s refit={dist_refit_s:.3f}s "
          f"({dist_speedup:.2f}x)  -> {path}")

    # Record one timed refit for the pytest-benchmark JSON.
    solver = HSSSolver(hss_options=hss_opts, hmatrix_options=h_opts, seed=0)
    try:
        solver.fit(X_perm, tree, kernel, LAMBDAS[0])
        benchmark.pedantic(lambda: solver.refit(LAMBDAS[-1]),
                           rounds=1, iterations=1)
    finally:
        solver.close()

    # A refit skips the H-matrix + HSS compression entirely; that saving
    # is robust at every scale and core count, so assert it always —
    # serially and on the warm grid.
    assert serial_refit_s < cold_last_s, (
        f"expected the serial λ-refit to beat the cold fit: "
        f"refit {serial_refit_s:.3f}s vs cold {cold_last_s:.3f}s")
    assert dist_refit_s < dist["cold_last_s"], (
        f"expected the warm-grid λ-refit to beat the cold warm fit: "
        f"refit {dist_refit_s:.3f}s vs cold {dist['cold_last_s']:.3f}s")
