"""Benchmark regenerating Table 1: effective ranks of the GAS1K off-diagonal block.

Paper reference (Table 1): effective rank (singular values > 0.01) of the
500 x 500 block is tiny for extreme h, peaks at h ~ 1, and the two-means
ordering reduces it by a large factor (338 -> 78 at h = 1).
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_table1_effective_rank

PAPER_RANKS = {
    "natural": {0.01: 1, 0.1: 23, 1.0: 338, 10.0: 129, 100.0: 14},
    "two_means": {0.01: 1, 0.1: 1, 1.0: 78, 10.0: 76, 100.0: 12},
}


def test_table1_effective_rank(benchmark):
    n = scaled(1000)

    def run():
        return run_table1_effective_rank(
            n=n, h_values=(0.01, 0.1, 1.0, 10.0, 100.0), seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())
    print(f"paper reference ranks (N/P): {PAPER_RANKS['natural']}")
    print(f"paper reference ranks (2MN): {PAPER_RANKS['two_means']}")

    for ordering in ("natural", "two_means"):
        for h, rank in result.ranks[ordering].items():
            benchmark.extra_info[f"rank_{ordering}_h{h}"] = rank
    benchmark.extra_info["improvement_at_h1"] = result.improvement(1.0)

    # Shape claims of Table 1:
    natural, clustered = result.ranks["natural"], result.ranks["two_means"]
    # (a) rank is tiny at the extremes of h,
    assert natural[0.01] <= 3
    # (b) rank peaks at intermediate h,
    assert natural[1.0] >= natural[0.01]
    assert natural[1.0] >= natural[100.0]
    # (c) the two-means ordering never increases the rank and reduces it at
    #     intermediate h.
    for h in (0.1, 1.0, 10.0):
        assert clustered[h] <= natural[h]
