"""Benchmark regenerating Figure 1: singular value decay of kernel blocks.

Paper reference (Figure 1a/1b): on GAS1K, the singular values of the
off-diagonal block decay dramatically faster under the two-means ordering
for intermediate bandwidths (h ~ 1), while the full-matrix spectrum is
unchanged.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_fig1_singular_values


def test_fig1_singular_values(benchmark):
    n = scaled(1000)

    def run():
        return run_fig1_singular_values(n=n, h_values=(0.1, 1.0, 10.0), seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())

    natural = result.decay_index("natural", 1.0)
    clustered = result.decay_index("two_means", 1.0)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["decay_index_natural_h1"] = natural
    benchmark.extra_info["decay_index_two_means_h1"] = clustered

    # Paper claim: clustering accelerates the off-diagonal decay at h ~ 1.
    assert clustered <= natural
    # The full-matrix spectrum is permutation invariant, so the decay index
    # of the full matrix must not depend on the ordering.
    assert result.decay_index("natural", 1.0, which="full") == \
        result.decay_index("two_means", 1.0, which="full")
