"""Benchmark regenerating Figure 8: strong scaling of the ULV factorization.

Paper reference (Figure 8): the factorization time of the four large
datasets scales nearly linearly from 32 cores until communication and the
serialised top tree levels flatten the curve towards 1,024 cores; datasets
with larger feature dimension (larger HSS ranks) sit higher even with fewer
points (MNIST above SUSY).
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_fig8_strong_scaling

CORE_COUNTS = (32, 64, 128, 256, 512, 1024)


def test_fig8_strong_scaling(benchmark):
    n_train = scaled(2048)

    def run():
        return run_fig8_strong_scaling(datasets=("mnist", "covtype", "hepmass",
                                                 "susy"),
                                       n_train=n_train, core_counts=CORE_COUNTS,
                                       seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())

    for curve in result.curves:
        times = curve.factorization_times()
        benchmark.extra_info[f"{curve.dataset}_speedup_1024"] = round(
            times[32] / times[1024], 2)
        benchmark.extra_info[f"{curve.dataset}_max_rank"] = curve.max_rank

    curves = {c.dataset: c for c in result.curves}
    for curve in result.curves:
        times = curve.factorization_times()
        # (a) factorization accelerates with the core count,
        assert times[1024] <= times[32]
        # (b) but the speed-up is sub-linear at 1,024 cores (the curve
        #     flattens as in the paper).
        assert times[32] / times[1024] < 32.0
        efficiency = [pt.parallel_efficiency for pt in curve.points]
        assert efficiency[-1] <= efficiency[0] + 1e-9
    # (c) the dataset with the largest dimension / ranks (MNIST-like) is the
    #     most expensive one at 32 cores, as in Figure 8.
    t32 = {name: c.factorization_times()[32] for name, c in curves.items()}
    assert t32["mnist"] >= max(t32["susy"], t32["hepmass"]) * 0.9
