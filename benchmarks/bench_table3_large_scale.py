"""Benchmark regenerating Table 3: large-scale prediction accuracy.

Paper reference (Table 3): with the compressed kernel, KRR classification
is run on millions of training points (SUSY 4.5M at 73%, MNIST 1.6M at 99%,
COVTYPE 0.5M at 99%, HEPMASS 1.0M at 90%).  The pure-Python reproduction
runs the same datasets at the largest size practical on one node and
reports the accuracy and the compressed-vs-dense memory ratio that makes
those sizes reachable.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_table3_large_scale
from repro.experiments.table3_large_scale import PAPER_TABLE3


def test_table3_large_scale(benchmark):
    n_train = scaled(4096)
    n_test = scaled(512)

    def run():
        return run_table3_large_scale(datasets=("susy", "mnist", "covtype",
                                                "hepmass"),
                                      n_train=n_train, n_test=n_test, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())
    print("paper reference:", {k: f"N={v[0]:,}, acc={v[3]:.0%}"
                               for k, v in PAPER_TABLE3.items()})

    for row in result.rows:
        benchmark.extra_info[f"{row.dataset}_accuracy"] = round(row.accuracy, 4)
        benchmark.extra_info[f"{row.dataset}_compression"] = round(
            row.compression_ratio, 1)

    # Shape claims of Table 3: high accuracy on the easy datasets, lower but
    # well above chance on SUSY, and a large compression factor everywhere.
    accuracies = {row.dataset: row.accuracy for row in result.rows}
    assert accuracies["mnist"] > 0.9
    assert accuracies["covtype"] > 0.9
    assert accuracies["hepmass"] > 0.8
    assert accuracies["susy"] > 0.65
    for row in result.rows:
        assert row.compression_ratio > 2.0
