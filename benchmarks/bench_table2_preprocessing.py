"""Benchmark regenerating Table 2: HSS memory and accuracy per ordering.

Paper reference (Table 2): over seven datasets (10K train / 1K test), the
memory of the compressed kernel matrix satisfies 2MN <= PCA <= KD <= NP
(up to ~10x reduction NP -> 2MN), while the classification accuracy is
independent of the ordering.  Problem sizes here default to 1,024 / 256 —
scale with REPRO_BENCH_SCALE to approach the paper's setting.
"""

from __future__ import annotations

import numpy as np
from conftest import scaled

from repro.experiments import run_table2_preprocessing
from repro.experiments.table2_preprocessing import TABLE2_ORDERINGS

#: Paper Table 2 memory (MB) per dataset: (NP, KD, PCA, 2MN) at 10K samples.
PAPER_MEMORY = {
    "susy": (499, 344, 242, 190),
    "letter": (315, 237, 91, 51),
    "pen": (445, 227, 133, 58),
    "hepmass": (577, 505, 542, 435),
    "covtype": (655, 344, 120, 45),
    "gas": (264, 65, 29, 25),
    "mnist": (40, 164, 43, 36),
}


def test_table2_preprocessing(benchmark):
    n_train = scaled(1024)
    n_test = scaled(256)
    datasets = ("susy", "letter", "pen", "hepmass", "covtype", "gas", "mnist")

    def run():
        return run_table2_preprocessing(datasets=datasets, n_train=n_train,
                                        n_test=n_test, two_means_repeats=1,
                                        seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())
    print("paper memory (MB at 10K train), NP/KD/PCA/2MN:")
    for name, mems in PAPER_MEMORY.items():
        print(f"  {name.upper():8s}: {mems}")

    for row in result.rows:
        for ordering in TABLE2_ORDERINGS:
            benchmark.extra_info[f"{row.dataset}_mem_{ordering}"] = round(
                row.memory_mb[ordering], 3)
        benchmark.extra_info[f"{row.dataset}_acc"] = round(
            float(np.mean(list(row.accuracy.values()))), 4)

    # Shape claims of Table 2:
    for row in result.rows:
        # (a) clustering-based orderings never use substantially more memory
        #     than the natural ordering,
        best_clustered = min(row.memory_mb["two_means"], row.memory_mb["pca"],
                             row.memory_mb["kd"])
        assert best_clustered <= row.memory_mb["natural"] * 1.05
        # (b) accuracy does not depend on the ordering.
        accs = list(row.accuracy.values())
        assert max(accs) - min(accs) < 0.1
    # (c) on the strongly clustered datasets the reduction is large
    #     (the paper reports up to ~10x; we require at least 2x).
    improvements = [result.memory_improvement(name) for name in ("gas", "covtype",
                                                                 "letter", "pen")]
    assert max(improvements) > 2.0
