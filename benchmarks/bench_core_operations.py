"""Micro-benchmarks of the core computational kernels.

These measure the individual building blocks (clustering, H construction,
randomized HSS compression, ULV factorization, ULV solve, HSS matvec) with
pytest-benchmark's statistical timing, complementing the table/figure
benchmarks which each run a whole experiment once.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import scaled

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import gas_like, standardize, susy_like
from repro.hmatrix import HMatrixSampler, build_hmatrix
from repro.hss import ULVFactorization, build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator


@pytest.fixture(scope="module")
def susy_problem():
    n = scaled(2048)
    X, y = susy_like(n, seed=0)
    X = standardize(X)
    clustering = cluster(X, method="two_means", leaf_size=16, seed=0)
    operator = ShiftedKernelOperator(clustering.X, GaussianKernel(h=1.0), 4.0)
    return clustering, operator, y


@pytest.fixture(scope="module")
def built_hss(susy_problem):
    clustering, operator, _ = susy_problem
    hss, _ = build_hss_randomized(operator, clustering.tree,
                                  HSSOptions(rel_tol=0.1), rng=0)
    return hss


def test_clustering_two_means(benchmark):
    n = scaled(4096)
    X, _ = gas_like(n, seed=0)
    X = standardize(X)
    result = benchmark(lambda: cluster(X, method="two_means", leaf_size=16, seed=0))
    assert result.tree.n == n


def test_hmatrix_construction(benchmark, susy_problem):
    clustering, operator, _ = susy_problem
    hmatrix = benchmark(lambda: build_hmatrix(operator, clustering.X,
                                              clustering.tree, HMatrixOptions()))
    benchmark.extra_info["memory_mb"] = round(hmatrix.nbytes / 2**20, 3)
    assert hmatrix.n == clustering.tree.n


def test_hss_randomized_construction(benchmark, susy_problem):
    clustering, operator, _ = susy_problem

    def build():
        hss, _ = build_hss_randomized(operator, clustering.tree,
                                      HSSOptions(rel_tol=0.1), rng=0)
        return hss

    hss = benchmark(build)
    benchmark.extra_info["memory_mb"] = round(hss.statistics().memory_mb, 3)
    benchmark.extra_info["max_rank"] = hss.max_rank


def test_hss_construction_with_hmatrix_sampling(benchmark, susy_problem):
    clustering, operator, _ = susy_problem
    hmatrix = build_hmatrix(operator, clustering.X, clustering.tree, HMatrixOptions())
    sampler = HMatrixSampler(hmatrix, operator)

    def build():
        hss, _ = build_hss_randomized(sampler, clustering.tree,
                                      HSSOptions(rel_tol=0.1), rng=0)
        return hss

    hss = benchmark(build)
    benchmark.extra_info["memory_mb"] = round(hss.statistics().memory_mb, 3)


def test_ulv_factorization(benchmark, built_hss):
    factorization = benchmark(lambda: ULVFactorization(built_hss))
    benchmark.extra_info["factor_mb"] = round(factorization.factor_bytes / 2**20, 3)


def test_ulv_solve(benchmark, built_hss):
    factorization = ULVFactorization(built_hss)
    b = np.random.default_rng(0).standard_normal(built_hss.n)
    x = benchmark(lambda: factorization.solve(b))
    resid = np.linalg.norm(built_hss.matvec(x) - b) / np.linalg.norm(b)
    benchmark.extra_info["residual"] = float(resid)
    assert resid < 1e-6


def test_hss_matvec(benchmark, built_hss):
    x = np.random.default_rng(1).standard_normal(built_hss.n)
    benchmark(lambda: built_hss.matvec(x))


def test_dense_kernel_matvec_baseline(benchmark, susy_problem):
    clustering, operator, _ = susy_problem
    x = np.random.default_rng(2).standard_normal(clustering.tree.n)
    benchmark(lambda: operator.matvec(x))
