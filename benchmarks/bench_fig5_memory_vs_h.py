"""Benchmark regenerating Figure 5: HSS memory versus the bandwidth h (GAS).

Paper reference (Figure 5): on GAS10K with lambda = 4, the memory of the
compressed matrix decreases as h grows, and the orderings separate
consistently over the whole sweep with two-means at the bottom and the
natural ordering at the top.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_fig5_memory_vs_h

H_VALUES = (0.6, 1.0, 2.0, 4.0, 8.0, 16.0)


def test_fig5_memory_vs_h(benchmark):
    n = scaled(1024)

    def run():
        return run_fig5_memory_vs_h(n=n, h_values=H_VALUES, lam=4.0, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())

    for ordering, per_h in result.memory_mb.items():
        for h, mem in per_h.items():
            benchmark.extra_info[f"mem_{ordering}_h{h}"] = round(mem, 3)

    natural = result.memory_mb["natural"]
    clustered = result.memory_mb["two_means"]
    # Shape claims of Figure 5:
    # (a) the clustered ordering uses no more memory than natural at every h,
    for h in H_VALUES:
        assert clustered[h] <= natural[h] * 1.1
    # (b) memory depends strongly on h and peaks at intermediate bandwidths
    #     (mirroring the effective-rank behaviour of Table 1: both limits of
    #     h are "easy"),
    peak = max(natural.values())
    assert peak >= 2.0 * natural[H_VALUES[0]] or peak >= 2.0 * natural[H_VALUES[-1]]
    # (c) at least one intermediate h shows a clear separation between the
    #     best and worst ordering.
    assert any(natural[h] > 1.5 * clustered[h] for h in H_VALUES)
