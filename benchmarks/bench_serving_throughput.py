"""Serving throughput: one-query-at-a-time vs micro-batched prediction.

The prediction step (Step 3 of Algorithm 1) is a GEMM against the training
set.  Serving queries one at a time degrades it to a GEMV per query; the
:class:`repro.serving.PredictionEngine` coalesces queries into micro-batch
GEMMs instead, and the LRU kernel-row cache short-circuits repeated points.
This benchmark measures all three modes on the same trained model and
asserts the headline claim: micro-batched serving beats the one-at-a-time
loop in queries/second.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _harness import write_bench_json
from conftest import scaled

import repro.obs as obs
from repro.datasets import standardize, susy_like
from repro.krr import KernelRidgeClassifier
from repro.serving import PredictionEngine, PredictionService


@pytest.fixture(scope="module")
def served_model():
    n_train = scaled(2048)
    n_queries = scaled(512)
    X, y = susy_like(n_train + n_queries, seed=0)
    X = standardize(X)
    X_train, y_train = X[:n_train], y[:n_train]
    queries = X[n_train:]
    clf = KernelRidgeClassifier(h=1.0, lam=4.0, solver="hss",
                                clustering="two_means", seed=0)
    clf.fit(X_train, y_train)
    return clf, queries


def _one_at_a_time(clf, queries) -> np.ndarray:
    out = np.empty(queries.shape[0])
    for i in range(queries.shape[0]):
        out[i] = clf.predict(queries[i:i + 1])[0]
    return out


def test_one_at_a_time(benchmark, served_model):
    clf, queries = served_model
    labels = benchmark(lambda: _one_at_a_time(clf, queries))
    if benchmark.stats:
        benchmark.extra_info["qps"] = round(
            queries.shape[0] / benchmark.stats.stats.mean, 1)
    assert labels.shape[0] == queries.shape[0]


def test_micro_batched(benchmark, served_model):
    clf, queries = served_model
    engine = PredictionEngine(clf, batch_size=256)
    labels = benchmark(lambda: engine.predict_many(queries))
    if benchmark.stats:
        benchmark.extra_info["qps"] = round(
            queries.shape[0] / benchmark.stats.stats.mean, 1)
    assert np.array_equal(labels, clf.predict(queries))


def test_micro_batched_with_cache(benchmark, served_model):
    """Repeated query points served from the kernel-row LRU cache."""
    clf, queries = served_model
    engine = PredictionEngine(clf, batch_size=256,
                              cache_size=queries.shape[0])
    engine.predict_many(queries)  # warm the cache

    labels = benchmark(lambda: engine.predict_many(queries))
    if benchmark.stats:
        benchmark.extra_info["qps"] = round(
            queries.shape[0] / benchmark.stats.stats.mean, 1)
    benchmark.extra_info["hit_rate"] = round(engine.stats.hit_rate, 3)
    assert np.array_equal(labels, clf.predict(queries))


def test_service_end_to_end(benchmark, served_model):
    """Full queue -> dispatcher -> engine path, including latency stats."""
    clf, queries = served_model
    engine = PredictionEngine(clf, batch_size=256)

    def serve():
        with PredictionService(engine, max_batch=256,
                               batch_window=0.001) as svc:
            return svc.predict_many(queries), svc.stats()

    (labels, stats) = benchmark(serve)
    benchmark.extra_info["qps"] = round(stats.qps, 1)
    benchmark.extra_info["p50_ms"] = round(stats.p50_latency_ms, 3)
    benchmark.extra_info["p95_ms"] = round(stats.p95_latency_ms, 3)
    assert np.array_equal(labels, clf.predict(queries))


def test_batched_beats_one_at_a_time(served_model):
    """Acceptance check: micro-batched serving wins in queries/second."""
    clf, queries = served_model
    engine = PredictionEngine(clf, batch_size=256)
    engine.predict_many(queries)  # warm caches / allocators

    t0 = time.perf_counter()
    serial_labels = _one_at_a_time(clf, queries)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched_labels = engine.predict_many(queries)
    batched_s = time.perf_counter() - t0

    qps_serial = queries.shape[0] / serial_s
    qps_batched = queries.shape[0] / batched_s
    write_bench_json(
        "serving_throughput",
        results={"one_at_a_time_qps": round(qps_serial, 1),
                 "micro_batched_qps": round(qps_batched, 1),
                 "speedup": round(qps_batched / qps_serial, 3)},
        sizes={"n_train": int(clf.X_train_.shape[0]),
               "n_queries": int(queries.shape[0])})
    print(f"\none-at-a-time : {qps_serial:10.1f} qps")
    print(f"micro-batched : {qps_batched:10.1f} qps "
          f"({qps_batched / qps_serial:.1f}x)")
    assert np.array_equal(batched_labels, serial_labels)
    assert qps_batched > qps_serial


def test_obs_overhead(served_model):
    """Registry instrumentation must not tax the serving hot path.

    Measures micro-batched QPS with telemetry enabled vs disabled (fresh
    engines each, so metric handles match the mode) and records the ratio.
    The acceptance target is <= 3% overhead; the assertion is looser
    (15%) because single-digit-percent wall-clock deltas are noise on a
    shared 1-core CI host — the recorded ratio in ``BENCH_*.json`` is the
    number to watch across commits.
    """
    clf, queries = served_model
    reps = 3

    def qps_run() -> float:
        engine = PredictionEngine(clf, batch_size=256)
        engine.predict_many(queries)  # warm caches / allocators
        best = 0.0
        for _ in range(reps):
            t0 = time.perf_counter()
            engine.predict_many(queries)
            best = max(best, queries.shape[0] / (time.perf_counter() - t0))
        return best

    qps_enabled = qps_run()
    obs.set_enabled(False)
    try:
        qps_disabled = qps_run()
    finally:
        obs.set_enabled(True)

    ratio = qps_enabled / qps_disabled
    write_bench_json(
        "serving_obs_overhead",
        results={"qps_enabled": round(qps_enabled, 1),
                 "qps_disabled": round(qps_disabled, 1),
                 "enabled_over_disabled": round(ratio, 4)},
        sizes={"n_train": int(clf.X_train_.shape[0]),
               "n_queries": int(queries.shape[0])})
    print(f"\nobs enabled  : {qps_enabled:10.1f} qps")
    print(f"obs disabled : {qps_disabled:10.1f} qps (ratio {ratio:.3f})")
    assert ratio > 0.85
