"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
problem size (pure-Python execution), prints the resulting table in the
paper's layout and attaches the headline numbers to the pytest-benchmark
record via ``benchmark.extra_info`` so they end up in the JSON output.

The problem sizes scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0): e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only``
runs every experiment at 4x the default size for a closer approach to the
paper's setting.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Problem-size multiplier taken from ``REPRO_BENCH_SCALE`` (default 1)."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        scale = 1.0
    return max(scale, 0.1)


def scaled(n: int) -> int:
    """Scale a default problem size, keeping it at least 64."""
    return max(64, int(round(n * bench_scale())))


@pytest.fixture()
def scale() -> float:
    return bench_scale()
