"""Streaming updates: Woodbury ``partial_fit`` vs cold refits.

The streaming contract (``KernelRidgeClassifier.partial_fit``): picking
up a batch of new/removed training rows costs one kernel block plus one
capacitance solve against the *existing* factorization — no clustering,
no compression, no ULV — so it must be far cheaper than the cold fit it
replaces.  This benchmark measures that on the real training stack:

* **cold fit** — full cluster + compress + factor + solve at ``n``;
* **partial_fit** — a stream of add/remove batches against the fitted
  model (mean per-update wall time, correction-rank growth);
* **recompress** — folding the accumulated corrections back into a
  fresh factorization (the drift-budget escape hatch), which should cost
  about one cold fit;

and asserts the headline acceptance bar: a streaming update is at least
**5x** faster than the cold fit at ``n = 2000``, while the streamed
decisions match a cold fit on the same effective data.

Everything lands in ``BENCH_streaming_updates.json`` via
:mod:`benchmarks._harness`.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_streaming_updates.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread so timings compare single axes of parallelism
# (must happen before NumPy loads its BLAS).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np
from _harness import write_bench_json
from conftest import scaled

from repro.datasets import susy_like
from repro.krr import KernelRidgeClassifier

N_TRAIN = 2000
N_UPDATES = 8
ADD_PER_UPDATE = 16
REMOVE_PER_UPDATE = 4
SPEEDUP_BAR = 5.0


def test_partial_fit_beats_cold_fit():
    n = scaled(N_TRAIN)
    X, y = susy_like(n, seed=0)
    pool_X, pool_y = susy_like(N_UPDATES * ADD_PER_UPDATE, seed=900)
    X_test, _ = susy_like(200, seed=901)
    rng = np.random.default_rng(2)

    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
    t0 = time.perf_counter()
    clf.fit(X, y)
    cold_fit_s = time.perf_counter() - t0

    update_seconds = []
    ranks = []
    cursor = 0
    for _ in range(N_UPDATES):
        add_X = pool_X[cursor:cursor + ADD_PER_UPDATE]
        add_y = pool_y[cursor:cursor + ADD_PER_UPDATE]
        cursor += ADD_PER_UPDATE
        drop = sorted(int(i) for i in rng.choice(
            clf.X_train_.shape[0], size=REMOVE_PER_UPDATE, replace=False))
        t1 = time.perf_counter()
        clf.partial_fit(X_new=add_X, y_new=add_y, remove=drop)
        update_seconds.append(time.perf_counter() - t1)
        ranks.append(int(clf.stream_info_["correction_rank"]))

    mean_update_s = float(np.mean(update_seconds))
    speedup = cold_fit_s / mean_update_s

    # correctness alongside the speed claim: the streamed model matches a
    # cold fit on the final effective data (within compression tolerance)
    eff_X, eff_y = clf.X_train_.copy(), clf._y_perm.copy()
    t2 = time.perf_counter()
    cold = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss",
                                 seed=0).fit(eff_X, eff_y)
    cold_fit_effective_s = time.perf_counter() - t2
    decision_diff = float(np.abs(clf.decision_function(X_test)
                                 - cold.decision_function(X_test)).max())

    # recompress folds the corrections back in (~ one cold fit)
    t3 = time.perf_counter()
    clf.recompress()
    recompress_s = time.perf_counter() - t3
    assert np.array_equal(clf.weights_, cold.weights_), \
        "recompression must be bitwise-identical to the cold build"

    results = {
        "cold_fit_s": cold_fit_s,
        "cold_fit_effective_s": cold_fit_effective_s,
        "partial_fit_mean_s": mean_update_s,
        "partial_fit_per_update_s": [float(s) for s in update_seconds],
        "partial_fit_speedup_vs_cold_fit": float(speedup),
        "speedup_bar": SPEEDUP_BAR,
        "final_correction_rank": ranks[-1],
        "correction_rank_per_update": ranks,
        "recompress_s": recompress_s,
        "streamed_vs_cold_decision_diff": decision_diff,
        "recompress_bitwise_equal": True,
    }
    write_bench_json(
        "streaming_updates", results,
        sizes={"n_train": n, "dim": int(X.shape[1]),
               "n_updates": N_UPDATES, "add_per_update": ADD_PER_UPDATE,
               "remove_per_update": REMOVE_PER_UPDATE})

    assert decision_diff < 0.05, \
        f"streamed decisions drifted from the cold fit: {decision_diff:.3e}"
    assert speedup >= SPEEDUP_BAR, \
        (f"partial_fit must be >= {SPEEDUP_BAR}x faster than a cold fit "
         f"at n={n}: got {speedup:.1f}x "
         f"({mean_update_s:.4f}s vs {cold_fit_s:.2f}s)")
