"""2-D (h, λ) grid tuning: the move-cost fabric vs per-point cold fits.

The tuning fabric prices the three move classes of a hyper-parameter
search very differently (``lam_move ≪ h_move ≪ cold``, see
``docs/tuning.md``): a λ-move refits the resident compression (one ULV,
batch-prefactored per λ column via ``factor_many``), an h-move
recompresses on the retained clustering / admissibility structure
(``refit_kernel``), and only the very first evaluation pays a cold
build.  This benchmark runs the *same* H x L grid twice through the
real HSS training stack:

* **fabric** — :class:`repro.tuning.KRRObjective` with the per-``h``
  cache on: 1 cold build + (H-1) h-moves + H·(L-1) λ-moves;
* **cold** — the identical objective with ``cache_kernels=False``:
  every grid point is a full build.

and asserts the contract of both: the two runs are **bitwise
identical** in every objective value and pick the same best (h, λ),
while the fabric performs ``H ≪ H·L`` kernel constructions and beats
the cold sweep's wall-clock (≥ 3x at the default scale).  Per-move
wall-clock buckets land in ``BENCH_tuning_fabric.json``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_tuning_fabric.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread so timings compare single axes of parallelism
# (must happen before NumPy loads its BLAS).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import pytest
from _harness import write_bench_json
from conftest import bench_scale, scaled

from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import standardize, susy_like
from repro.tuning import GridSearch, KRRObjective, ParameterSpace

LEAF_SIZE = 32
POINTS_PER_DIM = 5  # 5 x 5 = 25 grid points, 5 distinct h columns


@pytest.fixture(scope="module")
def tuning_problem():
    n_train = scaled(640)
    n_val = scaled(224)
    X, y = susy_like(n_train + n_val, seed=0)
    X = standardize(X)
    return (X[:n_train], y[:n_train], X[n_train:], y[n_train:])


class _TimedObjective:
    """Wrap an objective, bucketing per-evaluation wall-clock by move class.

    Attribute access falls through to the wrapped objective, so the
    searchers still see ``prepare_lam_schedule`` / ``last_move`` /
    ``last_was_refit`` and behave exactly as if unwrapped.
    """

    def __init__(self, objective):
        self._objective = objective
        self.move_seconds = {}
        self.total_seconds = 0.0

    def __call__(self, config):
        t0 = time.perf_counter()
        value = self._objective(config)
        elapsed = time.perf_counter() - t0
        self.total_seconds += elapsed
        move = self._objective.last_move or "cold"
        self.move_seconds[move] = self.move_seconds.get(move, 0.0) + elapsed
        return value

    def __getattr__(self, name):
        return getattr(self._objective, name)


def _make_objective(problem, **overrides):
    X_tr, y_tr, X_val, y_val = problem
    kwargs = dict(
        solver="hss", leaf_size=LEAF_SIZE, seed=0,
        hss_options=HSSOptions(leaf_size=LEAF_SIZE, rel_tol=1e-4,
                               initial_samples=48),
        hmatrix_options=HMatrixOptions(leaf_size=LEAF_SIZE, rel_tol=1e-4))
    kwargs.update(overrides)
    return KRRObjective(X_tr, y_tr, X_val, y_val, **kwargs)


def test_tuning_fabric_grid_speedup(benchmark, tuning_problem):
    space = ParameterSpace.krr_default(h_bounds=(0.5, 2.5),
                                       lam_bounds=(0.25, 8.0))
    grid_points = POINTS_PER_DIM ** 2

    # --- fabric: per-h cache + structure-reuse recompression + prefactor
    fabric = _TimedObjective(_make_objective(tuning_problem))
    t0 = time.perf_counter()
    fabric_result = GridSearch(space, points_per_dim=POINTS_PER_DIM) \
        .optimize(fabric)
    fabric_s = time.perf_counter() - t0
    fabric_moves = dict(fabric.move_counts)
    fabric_builds = fabric.kernel_constructions

    # --- cold baseline: the identical grid, every point a full build
    cold = _TimedObjective(_make_objective(tuning_problem,
                                           cache_kernels=False))
    t1 = time.perf_counter()
    cold_result = GridSearch(space, points_per_dim=POINTS_PER_DIM) \
        .optimize(cold)
    cold_s = time.perf_counter() - t1

    # The fabric changes the *cost* of the sweep, never its answers:
    # every objective value is bitwise equal to the cold run's and the
    # selected best (h, λ) is identical.
    assert fabric_result.evaluations == cold_result.evaluations == grid_points
    for fab, ref in zip(fabric_result.history, cold_result.history):
        assert (fab["h"], fab["lam"]) == (ref["h"], ref["lam"])
        assert fab["objective"] == ref["objective"], \
            f"fabric diverges at (h={fab['h']}, lam={fab['lam']})"
    assert fabric_result.best_config == cold_result.best_config
    assert fabric_result.best_value == cold_result.best_value

    # Move accounting: one cold build, (H-1) structure-reuse h-moves,
    # H·(L-1) λ-refits — kernel constructions ≪ grid points.
    assert fabric_moves == {"cold": 1,
                            "h_move": POINTS_PER_DIM - 1,
                            "lam_move": grid_points - POINTS_PER_DIM}
    assert cold.move_counts == {"cold": grid_points}
    assert fabric_builds == POINTS_PER_DIM
    assert fabric_builds * 4 <= grid_points, \
        "fabric must build kernels for far fewer points than it evaluates"

    speedup = cold_s / fabric_s
    n_train = tuning_problem[0].shape[0]

    def _mean(bucket, count):
        return round(bucket / count, 4) if count else 0.0

    path = write_bench_json(
        "tuning_fabric",
        results={
            "grid_points": grid_points,
            "fabric_total_s": round(fabric_s, 4),
            "cold_total_s": round(cold_s, 4),
            "grid_speedup": round(speedup, 3),
            "fabric_kernel_constructions": int(fabric_builds),
            "cold_kernel_constructions": int(cold.kernel_constructions),
            "fabric_moves": fabric_moves,
            "fabric_move_seconds": {k: round(v, 4)
                                    for k, v in fabric.move_seconds.items()},
            "mean_cold_s": _mean(cold.total_seconds, grid_points),
            "mean_h_move_s": _mean(fabric.move_seconds.get("h_move", 0.0),
                                   fabric_moves.get("h_move", 0)),
            "mean_lam_move_s": _mean(fabric.move_seconds.get("lam_move", 0.0),
                                     fabric_moves.get("lam_move", 0)),
            "best_h": float(fabric_result.best_config["h"]),
            "best_lam": float(fabric_result.best_config["lam"]),
            "best_accuracy": float(fabric_result.best_value),
        },
        sizes={"n_train": int(n_train),
               "n_val": int(tuning_problem[2].shape[0]),
               "dim": int(tuning_problem[0].shape[1]),
               "leaf_size": LEAF_SIZE,
               "points_per_dim": POINTS_PER_DIM})
    benchmark.extra_info["grid_speedup"] = round(speedup, 3)
    benchmark.extra_info["fabric_kernel_constructions"] = int(fabric_builds)
    print(f"\n{grid_points}-point grid: fabric={fabric_s:.3f}s "
          f"cold={cold_s:.3f}s ({speedup:.2f}x), "
          f"{fabric_builds} kernel constructions, moves={fabric_moves} "
          f"-> {path}")

    # Record one timed λ-move for the pytest-benchmark JSON: re-evaluating
    # the last grid point hits the resident compression.
    last = fabric.records[-1]
    benchmark.pedantic(lambda: fabric({"h": last.h, "lam": last.lam}),
                       rounds=1, iterations=1)
    assert fabric.last_move == "lam_move"

    fabric.close()
    cold.close()

    # Skipping (H·L - H) compressions is robust at every scale, so the
    # fabric must always win outright; the ≥ 3x acceptance bar is
    # calibrated at the default problem size (and holds with margin
    # there), so only enforce it when not scaled down.
    assert fabric_s < cold_s, (
        f"expected the tuning fabric to beat per-point cold fits: "
        f"fabric {fabric_s:.3f}s vs cold {cold_s:.3f}s")
    if bench_scale() >= 1.0:
        assert speedup >= 3.0, (
            f"expected >= 3x over per-point cold fits at full scale, "
            f"got {speedup:.2f}x")
