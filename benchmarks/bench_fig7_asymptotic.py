"""Benchmark regenerating Figure 7: asymptotic complexity of memory and time.

Paper reference (Figure 7a/7b): on SUSY, the memory of the compressed
matrix (H and HSS) and the HSS factorization / solve times grow
quasi-linearly with N — in contrast to the O(N^2) memory and O(N^3)
factorization of the dense approach (which is what makes million-point
kernels feasible at all: "storing a 1M dense matrix requires 8,000GB,
whereas the HSS construction used in this work just required 1.3 GB").
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_fig7_asymptotic


def test_fig7_asymptotic(benchmark):
    sizes = tuple(scaled(n) for n in (512, 1024, 2048, 4096))

    def run():
        return run_fig7_asymptotic(sizes=sizes, h=1.0, lam=4.0, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())

    mem_exp = result.growth_exponent("hss_memory_mb")
    time_exp = result.growth_exponent("factorization_time")
    hmat_exp = result.growth_exponent("hmatrix_memory_mb")
    print(f"growth exponents: HSS memory {mem_exp:.2f}, H memory {hmat_exp:.2f}, "
          f"factorization time {time_exp:.2f} (dense would be 2 / 2 / 3)")
    benchmark.extra_info["hss_memory_growth_exponent"] = round(mem_exp, 3)
    benchmark.extra_info["hmatrix_memory_growth_exponent"] = round(hmat_exp, 3)
    benchmark.extra_info["factorization_time_growth_exponent"] = round(time_exp, 3)

    # Shape claims of Figure 7: quasi-linear growth, far below the dense
    # exponents (2 for memory, 3 for factorization time).
    assert mem_exp < 1.7
    assert time_exp < 2.2
    # The compressed memory beats the dense matrix at the largest size.
    last = result.points[-1]
    assert last.hss_memory_mb < last.dense_memory_mb
    assert last.hmatrix_memory_mb < last.dense_memory_mb
