"""HTTP serving tier: closed-loop QPS/latency and admission-control 429s.

Measures the full network path — stdlib ``http.client`` keep-alive
connections into the asyncio daemon, through the thread-pool bridge and
the micro-batching :class:`repro.serving.PredictionService` — with
closed-loop clients at 1 / 4 / 16 concurrency (each client waits for its
response before sending the next request, so offered load scales with
concurrency).  A second daemon with a tiny ``server.max_queue`` is then
deliberately over-offered to measure the shed rate: past the in-flight
cap the server must answer ``429 Too Many Requests`` immediately instead
of queueing without bound, and every response must still be a clean 200
or 429 — nothing dropped, nothing hung.

Headline numbers land in ``BENCH_http_serving.json``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_http_serving.py -q
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest
from _harness import write_bench_json
from conftest import scaled

from repro.datasets import standardize, susy_like
from repro.krr import KernelRidgeClassifier
from repro.runtime import resolve_runtime_config
from repro.server import ServerApp
from repro.serving import ModelStore

CONCURRENCIES = (1, 4, 16)
OVERLOAD_MAX_QUEUE = 2
OVERLOAD_CLIENTS = 16


@pytest.fixture(scope="module")
def trained_store(tmp_path_factory):
    n_train = scaled(2048)
    X, y = susy_like(n_train + 64, seed=0)
    X = standardize(X)
    clf = KernelRidgeClassifier(h=1.0, lam=4.0, solver="hss",
                                clustering="two_means", seed=0)
    clf.fit(X[:n_train], y[:n_train])
    store = ModelStore(str(tmp_path_factory.mktemp("http-bench") / "store"))
    store.save(clf, "bench")
    return store, X[n_train:]


class _Daemon:
    """A ServerApp on a background thread, torn down on exit."""

    def __init__(self, store, **server_flags):
        flags = {"serving.store": store.root, "serving.model": "bench",
                 "server.port": 0}
        flags.update(server_flags)
        self.app = ServerApp(resolve_runtime_config(env={}, flags=flags),
                             store=store)
        self.addr = None

    def __enter__(self):
        ready = threading.Event()

        def on_ready(host, port):
            self.addr = (host, port)
            ready.set()

        self.thread = threading.Thread(target=self.app.run,
                                       kwargs={"ready": on_ready},
                                       daemon=True)
        self.thread.start()
        assert ready.wait(60.0), "daemon did not come up"
        return self

    def __exit__(self, *exc_info):
        self.app.request_shutdown()
        self.thread.join(60.0)
        assert not self.thread.is_alive(), "daemon did not drain"


def _closed_loop(addr, n_clients: int, requests_per_client: int, row):
    """Fire closed-loop clients; returns (wall_s, latencies_s, statuses)."""
    host, port = addr
    body = json.dumps({"inputs": [list(map(float, row))]})
    headers = {"Content-Type": "application/json"}
    lock = threading.Lock()
    latencies, statuses = [], []
    start_barrier = threading.Barrier(n_clients + 1)

    def client():
        conn = http.client.HTTPConnection(host, port, timeout=60.0)
        local_lat, local_status = [], []
        try:
            start_barrier.wait(timeout=60)
            for _ in range(requests_per_client):
                t0 = time.perf_counter()
                conn.request("POST", "/v1/predict", body=body,
                             headers=headers)
                resp = conn.getresponse()
                resp.read()  # drain so the keep-alive socket is reusable
                local_lat.append(time.perf_counter() - t0)
                local_status.append(resp.status)
        finally:
            conn.close()
        with lock:
            latencies.extend(local_lat)
            statuses.extend(local_status)

    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(n_clients)]
    for t in threads:
        t.start()
    start_barrier.wait(timeout=60)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=300)
        assert not t.is_alive(), "client thread hung"
    wall = time.perf_counter() - t0
    return wall, latencies, statuses


def _percentile_ms(latencies, q: float) -> float:
    return float(np.percentile(np.asarray(latencies) * 1e3, q))


def test_http_closed_loop_qps_and_latency(trained_store):
    """QPS and p50/p95 at 1 / 4 / 16 closed-loop keep-alive clients."""
    store, queries = trained_store
    row = queries[0]
    requests_per_client = scaled(64)
    results = {}
    with _Daemon(store) as daemon:
        _closed_loop(daemon.addr, 2, 8, row)  # warm engines + thread pool
        for n_clients in CONCURRENCIES:
            wall, lats, statuses = _closed_loop(
                daemon.addr, n_clients, requests_per_client, row)
            assert statuses and all(s == 200 for s in statuses), \
                f"non-200 under closed-loop load: {set(statuses)}"
            results[f"clients_{n_clients}"] = {
                "qps": round(len(lats) / wall, 1),
                "p50_ms": round(_percentile_ms(lats, 50), 3),
                "p95_ms": round(_percentile_ms(lats, 95), 3),
            }
            print(f"\n{n_clients:3d} clients: "
                  f"{results[f'clients_{n_clients}']['qps']:8.1f} qps, "
                  f"p50 {results[f'clients_{n_clients}']['p50_ms']:.2f} ms, "
                  f"p95 {results[f'clients_{n_clients}']['p95_ms']:.2f} ms")

    # Closed-loop throughput must rise with concurrency at least somewhat:
    # 16 clients must beat a single client (micro-batching coalesces them).
    assert results["clients_16"]["qps"] > results["clients_1"]["qps"]

    overload = _measure_overload(store, row)
    results["overload"] = overload
    write_bench_json(
        "http_serving",
        results=results,
        sizes={"n_train": scaled(2048),
               "requests_per_client": requests_per_client,
               "overload_clients": OVERLOAD_CLIENTS,
               "overload_max_queue": OVERLOAD_MAX_QUEUE})


def _measure_overload(store, row):
    """Over-offer a daemon capped at a tiny in-flight queue; measure 429s."""
    with _Daemon(store, **{"server.max_queue": OVERLOAD_MAX_QUEUE}) as daemon:
        _closed_loop(daemon.addr, 1, 4, row)  # warm up without rejections
        wall, lats, statuses = _closed_loop(
            daemon.addr, OVERLOAD_CLIENTS, scaled(32), row)
    completed = sum(1 for s in statuses if s == 200)
    rejected = sum(1 for s in statuses if s == 429)
    # Admission control fails fast and cleanly: every response is either
    # a served 200 or a shed 429 — never a drop, hang or 5xx.
    assert completed + rejected == len(statuses), \
        f"unexpected statuses: {set(statuses)}"
    assert completed > 0
    overload = {
        "max_queue": OVERLOAD_MAX_QUEUE,
        "clients": OVERLOAD_CLIENTS,
        "completed": completed,
        "rejected_429": rejected,
        "rejected_rate": round(rejected / len(statuses), 4),
        "goodput_qps": round(completed / wall, 1),
    }
    print(f"\noverload ({OVERLOAD_CLIENTS} clients vs max_queue="
          f"{OVERLOAD_MAX_QUEUE}): {completed} served, {rejected} shed "
          f"({overload['rejected_rate']:.1%})")
    return overload


def test_http_predict_matches_in_process(trained_store):
    """The network path must not change the numbers: HTTP predictions are
    bitwise equal to the in-process model's."""
    store, queries = trained_store
    model = store.load("bench")
    with _Daemon(store) as daemon:
        host, port = daemon.addr
        conn = http.client.HTTPConnection(host, port, timeout=60.0)
        try:
            conn.request("POST", "/v1/predict",
                         body=json.dumps({"inputs": queries[:32].tolist()}),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 200
            served = np.asarray(json.loads(resp.read())["predictions"])
        finally:
            conn.close()
    assert np.array_equal(served, model.predict(queries[:32]))
