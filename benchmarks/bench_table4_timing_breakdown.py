"""Benchmark regenerating Table 4: per-phase timing breakdown at 32 / 512 cores.

Paper reference (Table 4): for SUSY and COVTYPE, the HSS construction is
dominated by the sampling phase, the auxiliary H construction is cheap in
comparison, factorization and solve are orders of magnitude cheaper than
construction, and everything except the prototype H code speeds up from 32
to 512 cores.

Here the serial phases are measured on our implementation at a reduced N
and the 32/512-core columns come from the calibrated distributed cost
model (see DESIGN.md for the substitution).
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_table4_timing_breakdown

#: Paper Table 4 (seconds): dataset -> {phase: (32 cores, 512 cores)}
PAPER_TABLE4 = {
    "susy": {"h_construction": (173.7, 18.3), "hss_construction": (3344.4, 726.7),
             "sampling": (2993.5, 662.1), "hss_other": (350.9, 64.6),
             "factorization": (14.2, 3.3), "solve": (0.5, 0.3)},
    "covtype": {"h_construction": (36.5, 32.2), "hss_construction": (432.3, 239.7),
                "sampling": (305.2, 178.4), "hss_other": (127.1, 61.3),
                "factorization": (26.5, 4.6), "solve": (0.5, 0.4)},
}


def test_table4_timing_breakdown(benchmark):
    n_train = scaled(2048)

    def run():
        return run_table4_timing_breakdown(datasets=("susy", "covtype"),
                                           n_train=n_train,
                                           core_counts=(32, 512), seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())
    print("paper reference (seconds at 4.5M / 0.5M points):")
    for name, phases in PAPER_TABLE4.items():
        print(f"  {name.upper()}: {phases}")

    for entry in result.entries:
        for phase, seconds in entry.measured_seconds.items():
            benchmark.extra_info[f"{entry.dataset}_{phase}_serial_s"] = round(seconds, 4)

    # Shape claims of Table 4:
    for entry in result.entries:
        t32 = entry.modelled[32]
        t512 = entry.modelled[512]
        # (a) sampling dominates the HSS construction,
        assert t32.sampling > t32.hss_other
        # (b) the H construction is cheaper than the sampling it accelerates,
        assert t32.h_construction < t32.sampling + t32.hss_other
        # (c) factorization and solve are much cheaper than construction,
        assert t32.factorization < t32.hss_construction
        assert t32.solve < t32.factorization * 10
        # (d) the scalable phases speed up from 32 to 512 cores.
        assert t512.sampling <= t32.sampling
        assert t512.factorization <= t32.factorization
        # Measured serial times show the same construction-dominates shape.
        assert entry.measured_seconds["hss_construction"] > \
            entry.measured_seconds["factorization"]
