"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to a single paper table; they quantify the knobs
the paper fixes (leaf size 16, tolerance 0.1, z-score normalization, ULV
solver, H-matrix sampling) so a downstream user can see what each one buys.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import (run_ablation_kd_split, run_ablation_leafsize,
                               run_ablation_normalization, run_ablation_sampling,
                               run_ablation_solvers, run_ablation_tolerance)


def test_ablation_sampling(benchmark):
    """Dense vs H-matrix accelerated sampling for the HSS construction."""
    result = benchmark.pedantic(
        lambda: run_ablation_sampling(dataset="gas", n_train=scaled(2048), seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    rows = {row["strategy"]: row for row in result.rows}
    benchmark.extra_info["dense_sampling_s"] = rows["dense sampling"]["sampling_s"]
    benchmark.extra_info["hmatrix_sampling_s"] = rows["hmatrix sampling"]["sampling_s"]
    # The H-matrix sampler must accelerate the sampling phase itself (the
    # paper's headline engineering win) without changing the HSS memory.
    assert rows["hmatrix sampling"]["sampling_s"] <= rows["dense sampling"]["sampling_s"]
    assert abs(rows["hmatrix sampling"]["memory_mb"] -
               rows["dense sampling"]["memory_mb"]) < \
        0.5 * rows["dense sampling"]["memory_mb"] + 1e-9


def test_ablation_leafsize(benchmark):
    """HSS leaf size sweep (the paper fixes 16)."""
    result = benchmark.pedantic(
        lambda: run_ablation_leafsize(dataset="gas", n_train=scaled(1024),
                                      leaf_sizes=(8, 16, 32, 64, 128), seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    for row in result.rows:
        benchmark.extra_info[f"leaf{row['leaf_size']}_memory_mb"] = row["memory_mb"]
    accs = [row["accuracy_percent"] for row in result.rows]
    # Leaf size is a memory/efficiency trade-off and must not affect accuracy.
    assert max(accs) - min(accs) < 6.0


def test_ablation_tolerance(benchmark):
    """Compression tolerance sweep (the paper uses 0.1 for classification)."""
    result = benchmark.pedantic(
        lambda: run_ablation_tolerance(dataset="pen", n_train=scaled(1024),
                                       tolerances=(0.5, 0.1, 0.01, 1e-4), seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    rows = {row["rel_tol"]: row for row in result.rows}
    benchmark.extra_info["memory_at_0.1"] = rows[0.1]["memory_mb"]
    benchmark.extra_info["memory_at_1e-4"] = rows[1e-4]["memory_mb"]
    # Tighter tolerance costs memory ...
    assert rows[1e-4]["memory_mb"] >= rows[0.1]["memory_mb"]
    # ... but the paper's 0.1 already delivers the full classification
    # accuracy (within a small margin of the tightest setting).
    assert abs(rows[0.1]["accuracy_percent"] - rows[1e-4]["accuracy_percent"]) < 5.0


def test_ablation_solvers(benchmark):
    """ULV (HSS) vs dense Cholesky vs CG for the training system."""
    result = benchmark.pedantic(
        lambda: run_ablation_solvers(dataset="letter", n_train=scaled(1024),
                                     solvers=("dense", "hss", "cg"), seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    rows = {row["solver"]: row for row in result.rows}
    for solver, row in rows.items():
        benchmark.extra_info[f"{solver}_accuracy"] = row["accuracy_percent"]
        benchmark.extra_info[f"{solver}_train_s"] = row["train_s"]
    # All solvers must reach the same accuracy (the paper's premise: an
    # approximate solver is enough for the sign decision).
    accs = [row["accuracy_percent"] for row in result.rows]
    assert max(accs) - min(accs) < 5.0
    # The compressed representation uses far less memory than the dense one.
    assert rows["hss"]["memory_mb"] < rows["dense"]["memory_mb"]


def test_ablation_kd_split(benchmark):
    """Mean vs median splitting in the k-d tree ordering (Section 4.3)."""
    result = benchmark.pedantic(
        lambda: run_ablation_kd_split(dataset="covtype", n_train=scaled(1024),
                                      seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    rows = {row["split"]: row for row in result.rows}
    benchmark.extra_info["mean_split_memory_mb"] = rows["mean split"]["memory_mb"]
    benchmark.extra_info["median_split_memory_mb"] = rows["median split"]["memory_mb"]
    # The median split always yields a balanced tree; the mean split may not.
    assert rows["median split"]["max_leaf"] <= 16
    # Both variants produce a working compression of comparable memory.
    ratio = rows["mean split"]["memory_mb"] / rows["median split"]["memory_mb"]
    assert 0.3 < ratio < 3.0


def test_ablation_normalization(benchmark):
    """z-score vs max-abs vs no normalization (Section 5.2)."""
    result = benchmark.pedantic(
        lambda: run_ablation_normalization(dataset="gas", n_train=scaled(1024),
                                           seed=0),
        rounds=1, iterations=1)
    print()
    print(result.table().render())
    accs = {row["normalization"]: row["accuracy_percent"] for row in result.rows}
    for name, acc in accs.items():
        benchmark.extra_info[f"{name}_accuracy"] = acc
    # The paper's protocol (z-score) must be at least as good as the
    # alternatives it rejects.
    assert accs["zscore"] >= accs["maxabs"] - 2.0
    assert accs["zscore"] >= accs["none"] - 2.0
