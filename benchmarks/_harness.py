"""Machine-readable benchmark results: ``BENCH_<name>.json`` writer.

Every benchmark that produces headline numbers (wall times, speedups,
throughput) records them through :func:`write_bench_json` so the repo's
perf trajectory is tracked in version-controlled JSON instead of scrollback.
Each file carries enough context to compare runs across commits and hosts:
the git revision, the python/numpy versions, the visible core count, the
problem sizes and the worker/shard configuration.

Output lands in ``REPRO_BENCH_DIR`` when set, else next to the repository
root (the parent of ``benchmarks/``).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_revision() -> str:
    """Current short git revision (``"unknown"`` outside a work tree)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def visible_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_output_dir() -> str:
    return os.environ.get("REPRO_BENCH_DIR", "").strip() or _REPO_ROOT


def write_bench_json(name: str, results: Dict[str, object],
                     sizes: Optional[Dict[str, int]] = None,
                     workers: Optional[int] = None,
                     shards: Optional[int] = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Parameters
    ----------
    name:
        Benchmark name; becomes the file suffix.
    results:
        The headline numbers (wall-clock seconds, speedups, QPS, ...).
        Must be JSON-serializable.
    sizes:
        Problem sizes (``n_train``, ``dim``, ...).
    workers, shards:
        Thread / process configuration of the run, when applicable.
    """
    import numpy

    record = {
        "name": str(name),
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": git_revision(),
        "host": {
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "visible_cores": visible_cores(),
        },
        "sizes": dict(sizes or {}),
        "workers": workers,
        "shards": shards,
        "results": results,
    }
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
