"""Machine-readable benchmark results: ``BENCH_<name>.json`` writer.

Every benchmark that produces headline numbers (wall times, speedups,
throughput) records them through :func:`write_bench_json` so the repo's
perf trajectory is tracked in version-controlled JSON instead of scrollback.
Each file carries enough context to compare runs across commits and hosts:
the git revision, the python/numpy versions, the visible core count, the
problem sizes and the worker/shard configuration.

Output lands in ``REPRO_BENCH_DIR`` when set, else next to the repository
root (the parent of ``benchmarks/``).

Each record also stamps the host context (``os.cpu_count()``, platform,
the ``REPRO_WORKERS`` / ``REPRO_SHARDS`` environment) so anomalies — e.g.
a "parallel" speedup below 1x — are attributable to the machine that
produced them, and embeds a compact ``metrics`` summary of the process's
telemetry registry (see :mod:`repro.obs`).  Setting ``REPRO_METRICS_DUMP``
to a path additionally writes the full merged snapshot there (Prometheus
text for ``.prom`` / ``.txt``, JSON otherwise).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_revision() -> str:
    """Current short git revision (``"unknown"`` outside a work tree)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def visible_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_output_dir() -> str:
    return os.environ.get("REPRO_BENCH_DIR", "").strip() or _REPO_ROOT


def _metrics_section() -> Dict[str, object]:
    """Compact telemetry summary of this process's registry.

    Honors ``REPRO_METRICS_DUMP``: when set, the full merged snapshot is
    also written to that path (format by extension).  Telemetry failures
    never fail a benchmark write — the section degrades to an ``error``
    note instead.
    """
    try:
        from repro import obs

        if os.environ.get("REPRO_METRICS_DUMP", "").strip():
            obs.dump_metrics(os.environ["REPRO_METRICS_DUMP"].strip())
        return obs.summarize_snapshot(obs.global_registry().snapshot())
    except Exception as exc:  # pragma: no cover - defensive
        return {"error": repr(exc)}


def write_bench_json(name: str, results: Dict[str, object],
                     sizes: Optional[Dict[str, int]] = None,
                     workers: Optional[int] = None,
                     shards: Optional[int] = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Parameters
    ----------
    name:
        Benchmark name; becomes the file suffix.
    results:
        The headline numbers (wall-clock seconds, speedups, QPS, ...).
        Must be JSON-serializable.
    sizes:
        Problem sizes (``n_train``, ``dim``, ...).
    workers, shards:
        Thread / process configuration of the run, when applicable.
    """
    import numpy

    record = {
        "name": str(name),
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": git_revision(),
        "host": {
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "visible_cores": visible_cores(),
            "cpu_count": os.cpu_count(),
            "env": {
                key: os.environ.get(key, "")
                for key in ("REPRO_WORKERS", "REPRO_SHARDS")
            },
        },
        "sizes": dict(sizes or {}),
        "workers": workers,
        "shards": shards,
        "results": results,
        "metrics": _metrics_section(),
    }
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
