"""Machine-readable benchmark results: ``BENCH_<name>.json`` writer.

Every benchmark that produces headline numbers (wall times, speedups,
throughput) records them through :func:`write_bench_json` so the repo's
perf trajectory is tracked in version-controlled JSON instead of scrollback.
Each file carries enough context to compare runs across commits and hosts:
the git revision, the python/numpy versions, the visible core count, the
problem sizes and the worker/shard configuration.

Output lands in ``REPRO_BENCH_DIR`` when set, else next to the repository
root (the parent of ``benchmarks/``).

The host stamp comes from :func:`repro.runtime.host_context` — the same
fields ``repro env`` and every CLI result record, so benchmark JSON stays
directly comparable with CLI output.  Each record also embeds a compact
``metrics`` summary of the process's telemetry registry (see
:mod:`repro.obs`).  Setting ``REPRO_METRICS_DUMP`` to a path additionally
writes the full merged snapshot there (Prometheus text for ``.prom`` /
``.txt``, JSON otherwise).
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, Optional

from repro.runtime import git_revision as _git_revision
from repro.runtime import host_context, visible_cores  # noqa: F401 (re-export)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_revision() -> str:
    """Current short git revision of *this repository*.

    Thin wrapper over :func:`repro.runtime.git_revision` pinned to the
    repo root, so benchmarks report the repo's revision regardless of the
    directory they were launched from.
    """
    return _git_revision(cwd=_REPO_ROOT)


def bench_output_dir() -> str:
    return os.environ.get("REPRO_BENCH_DIR", "").strip() or _REPO_ROOT


def _metrics_section() -> Dict[str, object]:
    """Compact telemetry summary of this process's registry.

    Honors ``REPRO_METRICS_DUMP`` (via the dump-path fallback in
    :func:`repro.obs.dump_metrics`): when set, the full merged snapshot
    is also written to that path (format by extension).  Telemetry
    failures never fail a benchmark write — the section degrades to an
    ``error`` note instead.
    """
    try:
        from repro import obs

        if obs.configured_dump_path():
            obs.dump_metrics()
        return obs.summarize_snapshot(obs.global_registry().snapshot())
    except Exception as exc:  # pragma: no cover - defensive
        return {"error": repr(exc)}


def write_bench_json(name: str, results: Dict[str, object],
                     sizes: Optional[Dict[str, int]] = None,
                     workers: Optional[int] = None,
                     shards: Optional[int] = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Parameters
    ----------
    name:
        Benchmark name; becomes the file suffix.
    results:
        The headline numbers (wall-clock seconds, speedups, QPS, ...).
        Must be JSON-serializable.
    sizes:
        Problem sizes (``n_train``, ``dim``, ...).
    workers, shards:
        Thread / process configuration of the run, when applicable.
    """
    host = host_context(cwd=_REPO_ROOT)
    record = {
        "name": str(name),
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": host.pop("git_rev"),
        "host": host,
        "sizes": dict(sizes or {}),
        "workers": workers,
        "shards": shards,
        "results": results,
        "metrics": _metrics_section(),
    }
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path
