"""Parallel training path: compression + ULV wall-clock vs worker count.

The paper's Table 4 / Figure 8 story is that H-matrix assembly, HSS
compression and ULV factorization parallelize within each cluster-tree
level.  This benchmark runs the *real* threaded training path — H-matrix
assembly, H-accelerated randomized HSS compression and ULV factorization
over one shared :class:`repro.parallel.BlockExecutor` — serially and with
multiple workers on the same problem, asserts that the two runs produce
bitwise-identical factorizations, and (on machines with at least two
visible cores) that the parallel run is faster wall-clock.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_parallel_training.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per call so the workers=1 baseline is genuinely
# serial and the multi-worker run does not oversubscribe (threads x BLAS
# threads).  Must happen before NumPy loads its BLAS; effective when this
# file runs standalone (as in CI), harmless otherwise.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np
import pytest
from _harness import write_bench_json
from conftest import scaled

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import standardize, susy_like
from repro.hmatrix import HMatrixSampler, build_hmatrix
from repro.hss import ULVFactorization, build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator
from repro.parallel import BlockExecutor, default_worker_count

#: leaf size chosen larger than the paper's 16 so each per-level task is a
#: BLAS-sized chunk of work (threads need GIL-released work to win).
LEAF_SIZE = 128


@pytest.fixture(scope="module")
def training_problem():
    n = scaled(2048)
    X, y = susy_like(n, seed=0)
    X = standardize(X)
    result = cluster(X, method="two_means", leaf_size=LEAF_SIZE, seed=0)
    operator = ShiftedKernelOperator(result.X, GaussianKernel(h=1.0), 4.0)
    hss_opts = HSSOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5, initial_samples=128)
    h_opts = HMatrixOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5)
    return operator, result.X, result.tree, hss_opts, h_opts


def _train_once(problem, workers: int):
    """One full training run; returns (seconds, hss, ulv)."""
    operator, X_perm, tree, hss_opts, h_opts = problem
    with BlockExecutor(workers=workers) as ex:
        t0 = time.perf_counter()
        hmatrix = build_hmatrix(operator, X_perm, tree, options=h_opts,
                                executor=ex)
        sampler = HMatrixSampler(hmatrix, operator)
        hss, _ = build_hss_randomized(sampler, tree, options=hss_opts, rng=0,
                                      executor=ex)
        ulv = ULVFactorization(hss, executor=ex)
        elapsed = time.perf_counter() - t0
    return elapsed, hss, ulv


def _node_arrays(hss):
    for data in hss.node_data:
        for a in (data.D, data.U, data.V, data.B12, data.B21):
            if a is not None:
                yield a


def test_parallel_training_speedup(benchmark, training_problem):
    parallel_workers = min(default_worker_count(), 4)

    # Warm-up run (BLAS initialisation, page faults) kept out of the timings.
    _train_once(training_problem, workers=1)

    # Best-of-3 per configuration to shave off scheduler noise.
    serial_time, hss_serial, ulv_serial = min(
        (_train_once(training_problem, workers=1) for _ in range(3)),
        key=lambda r: r[0])
    parallel_time, hss_parallel, ulv_parallel = min(
        (_train_once(training_problem, workers=parallel_workers)
         for _ in range(3)),
        key=lambda r: r[0])

    benchmark.extra_info["serial_s"] = round(serial_time, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_time, 4)
    benchmark.extra_info["workers"] = parallel_workers
    benchmark.extra_info["speedup"] = round(serial_time / parallel_time, 3)
    write_bench_json(
        "parallel_training",
        results={"serial_s": round(serial_time, 4),
                 "parallel_s": round(parallel_time, 4),
                 "speedup": round(serial_time / parallel_time, 3)},
        sizes={"n_train": int(hss_serial.n), "leaf_size": LEAF_SIZE},
        workers=parallel_workers)
    print(f"\nserial={serial_time:.3f}s  parallel({parallel_workers}w)="
          f"{parallel_time:.3f}s  speedup={serial_time / parallel_time:.2f}x")

    # Parallel and serial factorizations must be bitwise identical.
    for a, b in zip(_node_arrays(hss_serial), _node_arrays(hss_parallel)):
        assert np.array_equal(a, b)
    rhs = np.random.default_rng(1).standard_normal(hss_serial.n)
    assert np.array_equal(ulv_serial.solve(rhs), ulv_parallel.solve(rhs))

    # Record one timed run for the pytest-benchmark JSON.
    benchmark.pedantic(lambda: _train_once(training_problem,
                                           workers=parallel_workers),
                       rounds=1, iterations=1)

    if parallel_workers < 2:
        pytest.skip("speedup assertion needs >= 2 visible cores")
    assert parallel_time < serial_time, (
        f"expected compression+ULV speedup with {parallel_workers} workers: "
        f"parallel {parallel_time:.3f}s vs serial {serial_time:.3f}s")
