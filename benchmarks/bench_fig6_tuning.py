"""Benchmark regenerating Figure 6: grid search vs OpenTuner-style tuning.

Paper reference (Figure 6): a 128^2 grid search over (h, lambda) on SUSY is
out-performed by ~100 black-box (OpenTuner) evaluations, which converge to
parameters with better validation accuracy at ~1% of the cost.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments import run_fig6_tuning


def test_fig6_tuning(benchmark):
    n_train = scaled(768)
    n_val = scaled(256)

    def run():
        return run_fig6_tuning(dataset="susy", n_train=n_train, n_val=n_val,
                               grid_points_per_dim=12, tuner_budget=100, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table().render())

    benchmark.extra_info["grid_best_accuracy"] = result.grid.best_value
    benchmark.extra_info["bandit_best_accuracy"] = result.bandit.best_value
    benchmark.extra_info["grid_evaluations"] = result.evaluations["grid"]
    benchmark.extra_info["bandit_evaluations"] = result.evaluations["bandit"]
    benchmark.extra_info["grid_kernel_constructions"] = \
        result.kernel_constructions["grid"]
    benchmark.extra_info["bandit_kernel_constructions"] = \
        result.kernel_constructions["bandit"]
    benchmark.extra_info["grid_refits"] = result.refits["grid"]
    benchmark.extra_info["bandit_refits"] = result.refits["bandit"]
    for strategy, moves in result.moves.items():
        for move, count in moves.items():
            benchmark.extra_info[f"{strategy}_{move}s"] = count

    # The cost model must hold: each strategy builds kernels only for its
    # cold + h-move evaluations, everything else is a λ-move refit.
    for strategy, moves in result.moves.items():
        assert result.kernel_constructions[strategy] == \
            moves.get("cold", 0) + moves.get("h_move", 0), strategy
        assert result.refits[strategy] == moves.get("lam_move", 0), strategy

    # Shape claims of Figure 6: with fewer evaluations than the grid, the
    # black-box tuner reaches at least comparable validation accuracy.
    assert result.evaluations["bandit"] <= result.evaluations["grid"]
    assert result.bandit.best_value >= result.grid.best_value - 0.02
