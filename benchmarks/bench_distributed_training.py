"""Process-sharded training: distributed build+solve wall-clock vs shards.

The paper's Figure 8 / Table 3 results come from distributed-memory runs
where every rank owns a subtree of the cluster tree.  This benchmark runs
the *real* process-sharded path of :mod:`repro.distributed` — per-shard
H/HSS/ULV builds in worker processes plus the coordinator's coupling merge
— at 1 and ``min(cores, 4)`` shards on the same problem, checks that the
sharded solution matches the single-shard one within the compression
tolerance, records everything to ``BENCH_distributed_training.json`` via
:mod:`benchmarks._harness`, and (on hosts with at least two visible cores)
asserts a wall-clock speedup over the 1-shard run.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_distributed_training.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process so the shard processes are the only
# parallel axis (must happen before NumPy loads its BLAS).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np
import pytest
from _harness import visible_cores, write_bench_json
from conftest import bench_scale, scaled

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import standardize, susy_like
from repro.distributed.solver import DistributedSolver
from repro.kernels import GaussianKernel

#: larger leaf than the paper's 16 so each shard does BLAS-sized chunks
LEAF_SIZE = 128


@pytest.fixture(scope="module")
def sharded_problem():
    n = scaled(2048)
    X, y = susy_like(n, seed=0)
    X = standardize(X)
    result = cluster(X, method="two_means", leaf_size=LEAF_SIZE, seed=0)
    kernel = GaussianKernel(h=1.0)
    hss_opts = HSSOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5,
                          initial_samples=128)
    h_opts = HMatrixOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5)
    rhs = np.random.default_rng(1).standard_normal(n)
    return result.X, result.tree, kernel, 4.0, hss_opts, h_opts, rhs


def _train_once(problem, shards: int):
    """One full distributed build + solve; returns (seconds, solution)."""
    X_perm, tree, kernel, lam, hss_opts, h_opts, rhs = problem
    solver = DistributedSolver(shards=shards, hss_options=hss_opts,
                               hmatrix_options=h_opts, seed=0,
                               coupling_rel_tol=1e-5)
    try:
        t0 = time.perf_counter()
        solver.fit(X_perm, tree, kernel, lam)
        w = solver.solve(rhs)
        elapsed = time.perf_counter() - t0
    finally:
        solver.close()
    return elapsed, w


def test_distributed_training_speedup(benchmark, sharded_problem):
    cores = visible_cores()
    parallel_shards = max(2, min(cores, 4))

    # Warm-up (spawn machinery, BLAS initialisation) kept out of the timings.
    _train_once(sharded_problem, shards=1)

    serial_time, w_serial = min(
        (_train_once(sharded_problem, shards=1) for _ in range(2)),
        key=lambda r: r[0])
    parallel_time, w_parallel = min(
        (_train_once(sharded_problem, shards=parallel_shards)
         for _ in range(2)),
        key=lambda r: r[0])

    # Sharded and single-shard solutions agree within the compression /
    # coupling tolerance (they approximate the same system).
    rel_dev = (np.linalg.norm(w_parallel - w_serial)
               / np.linalg.norm(w_serial))
    assert rel_dev < 1e-3, f"sharded solution deviates by {rel_dev:.2e}"

    speedup = serial_time / parallel_time
    n = sharded_problem[0].shape[0]
    path = write_bench_json(
        "distributed_training",
        results={
            "one_shard_s": round(serial_time, 4),
            "sharded_s": round(parallel_time, 4),
            "speedup": round(speedup, 3),
            "solution_rel_dev": float(rel_dev),
        },
        sizes={"n_train": int(n), "dim": int(sharded_problem[0].shape[1]),
               "leaf_size": LEAF_SIZE},
        shards=parallel_shards)
    benchmark.extra_info["one_shard_s"] = round(serial_time, 4)
    benchmark.extra_info["sharded_s"] = round(parallel_time, 4)
    benchmark.extra_info["shards"] = parallel_shards
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(f"\n1 shard={serial_time:.3f}s  {parallel_shards} shards="
          f"{parallel_time:.3f}s  speedup={speedup:.2f}x  -> {path}")

    # Record one timed run for the pytest-benchmark JSON.
    benchmark.pedantic(
        lambda: _train_once(sharded_problem, shards=parallel_shards),
        rounds=1, iterations=1)

    if cores < 2:
        pytest.skip("speedup assertion needs >= 2 visible cores")
    if bench_scale() < 1.0:
        # At smoke scale the per-process spawn overhead rivals the compute
        # and a contended runner can flip the comparison; the numbers are
        # still recorded above, only the hard assertion is scale-gated.
        pytest.skip("speedup assertion needs the full-scale problem")
    assert parallel_time < serial_time, (
        f"expected distributed speedup with {parallel_shards} shards: "
        f"sharded {parallel_time:.3f}s vs 1-shard {serial_time:.3f}s")
