"""Process-sharded training: distributed wall-clock vs shards, cold vs warm.

The paper's Figure 8 / Table 3 results come from distributed-memory runs
where every rank owns a subtree of the cluster tree and ranks are launched
once for many factor / solve calls.  This benchmark runs the *real*
process-sharded path of :mod:`repro.distributed` — per-shard H/HSS/ULV
builds in worker processes plus the coordinator's coupling merge — and
measures two things on the same problem:

* **shard speedup** — full build+solve at 1 and ``min(cores, 4)`` shards,
  checking that the sharded solution matches the single-shard one within
  the compression tolerance and (on hosts with at least two visible
  cores, at full scale) asserting a wall-clock speedup;
* **warm-grid speedup** — a second ``fit`` on the same
  :class:`repro.distributed.WorkerGrid`: worker processes are reused
  instead of respawned (the benchmark asserts zero new spawns), so the
  warm fit excludes process startup + interpreter/NumPy import and is the
  amortized cost a hyper-parameter sweep pays per configuration.

Everything lands in ``BENCH_distributed_training.json`` via
:mod:`benchmarks._harness`.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_distributed_training.py -q
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process so the shard processes are the only
# parallel axis (must happen before NumPy loads its BLAS).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np
import pytest
from _harness import visible_cores, write_bench_json
from conftest import bench_scale, scaled

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import standardize, susy_like
from repro.distributed.solver import DistributedSolver
from repro.kernels import GaussianKernel

#: larger leaf than the paper's 16 so each shard does BLAS-sized chunks
LEAF_SIZE = 128


@pytest.fixture(scope="module")
def sharded_problem():
    n = scaled(2048)
    X, y = susy_like(n, seed=0)
    X = standardize(X)
    result = cluster(X, method="two_means", leaf_size=LEAF_SIZE, seed=0)
    kernel = GaussianKernel(h=1.0)
    hss_opts = HSSOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5,
                          initial_samples=128)
    h_opts = HMatrixOptions(leaf_size=LEAF_SIZE, rel_tol=1e-5)
    rhs = np.random.default_rng(1).standard_normal(n)
    return result.X, result.tree, kernel, 4.0, hss_opts, h_opts, rhs


def _make_solver(problem, shards: int) -> DistributedSolver:
    _, _, _, _, hss_opts, h_opts, _ = problem
    return DistributedSolver(shards=shards, hss_options=hss_opts,
                             hmatrix_options=h_opts, seed=0,
                             coupling_rel_tol=1e-5)


def _train_once(problem, shards: int, measure_warm: bool = False):
    """One full cold distributed build + solve; returns timing details.

    With ``measure_warm``, the same solver fits a second time on its
    already-spawned grid (asserting zero new process spawns), so the
    cold-vs-warm contrast rides along with a regular cold sample instead
    of costing an extra full distributed build.
    """
    X_perm, tree, kernel, lam, _, _, rhs = problem
    solver = _make_solver(problem, shards)
    warm_fit = None
    try:
        t0 = time.perf_counter()
        solver.fit(X_perm, tree, kernel, lam)
        cold_fit = time.perf_counter() - t0
        w = solver.solve(rhs)
        elapsed = time.perf_counter() - t0
        if measure_warm:
            grid = solver._owned_grid
            spawned_after_cold = grid.spawn_count
            t1 = time.perf_counter()
            solver.fit(X_perm, tree, kernel, lam)
            warm_fit = time.perf_counter() - t1
            assert solver.warm_start_, "second fit must reuse the live grid"
            assert grid.spawn_count == spawned_after_cold, (
                "warm fit spawned new worker processes")
    finally:
        solver.close()
    return elapsed, w, cold_fit, warm_fit


def test_distributed_training_speedup(benchmark, sharded_problem):
    cores = visible_cores()
    parallel_shards = max(2, min(cores, 4))

    # Warm-up (spawn machinery, BLAS initialisation) kept out of the timings.
    _train_once(sharded_problem, shards=1)

    serial_time, w_serial, _, _ = min(
        (_train_once(sharded_problem, shards=1) for _ in range(2)),
        key=lambda r: r[0])
    parallel_runs = [_train_once(sharded_problem, shards=parallel_shards,
                                 measure_warm=True) for _ in range(2)]
    parallel_time, w_parallel, _, _ = min(parallel_runs,
                                          key=lambda r: r[0])

    # Sharded and single-shard solutions agree within the compression /
    # coupling tolerance (they approximate the same system).
    rel_dev = (np.linalg.norm(w_parallel - w_serial)
               / np.linalg.norm(w_serial))
    assert rel_dev < 1e-3, f"sharded solution deviates by {rel_dev:.2e}"

    # Warm-grid contrast: best cold fit vs best second-fit-on-live-grid.
    cold_fit = min(r[2] for r in parallel_runs)
    warm_fit = min(r[3] for r in parallel_runs)
    warm_speedup = cold_fit / warm_fit

    speedup = serial_time / parallel_time
    n = sharded_problem[0].shape[0]
    path = write_bench_json(
        "distributed_training",
        results={
            "one_shard_s": round(serial_time, 4),
            "sharded_s": round(parallel_time, 4),
            "speedup": round(speedup, 3),
            "solution_rel_dev": float(rel_dev),
            "cold_fit_s": round(cold_fit, 4),
            "warm_fit_s": round(warm_fit, 4),
            "warm_speedup": round(warm_speedup, 3),
        },
        sizes={"n_train": int(n), "dim": int(sharded_problem[0].shape[1]),
               "leaf_size": LEAF_SIZE},
        shards=parallel_shards)
    benchmark.extra_info["one_shard_s"] = round(serial_time, 4)
    benchmark.extra_info["sharded_s"] = round(parallel_time, 4)
    benchmark.extra_info["shards"] = parallel_shards
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["cold_fit_s"] = round(cold_fit, 4)
    benchmark.extra_info["warm_fit_s"] = round(warm_fit, 4)
    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 3)
    print(f"\n1 shard={serial_time:.3f}s  {parallel_shards} shards="
          f"{parallel_time:.3f}s  speedup={speedup:.2f}x  "
          f"cold fit={cold_fit:.3f}s  warm fit={warm_fit:.3f}s  "
          f"warm speedup={warm_speedup:.2f}x  -> {path}")

    # Record one timed run for the pytest-benchmark JSON.
    benchmark.pedantic(
        lambda: _train_once(sharded_problem, shards=parallel_shards),
        rounds=1, iterations=1)

    # The warm fit skips process spawn + interpreter/NumPy startup; that
    # saving is robust even on one core, so assert it at every scale.
    assert warm_fit < cold_fit, (
        f"expected the warm fit to beat the cold fit: warm {warm_fit:.3f}s "
        f"vs cold {cold_fit:.3f}s")

    if cores < 2:
        pytest.skip("speedup assertion needs >= 2 visible cores")
    if bench_scale() < 1.0:
        # At smoke scale the per-process spawn overhead rivals the compute
        # and a contended runner can flip the comparison; the numbers are
        # still recorded above, only the hard assertion is scale-gated.
        pytest.skip("speedup assertion needs the full-scale problem")
    assert parallel_time < serial_time, (
        f"expected distributed speedup with {parallel_shards} shards: "
        f"sharded {parallel_time:.3f}s vs 1-shard {serial_time:.3f}s")
