#!/usr/bin/env python
"""Quickstart: the paper's Algorithm 1 end to end, via the ``repro`` CLI.

The umbrella CLI now covers what used to be a hand-rolled script.  It
resolves its configuration through the layered runtime config (built-in
defaults < ``repro.toml`` < ``REPRO_*`` env vars < CLI flags), trains the
HSS-compressed KRR classifier — two-means reordering, H-matrix
accelerated randomized HSS compression, ULV factorization + solve —
persists the fitted model into the ``models/`` store and leaves a machine
readable report in ``repro_train.json``.  The equivalent shell command::

    repro train --dataset gas --n-train 2048 --n-test 512

Run it with:  PYTHONPATH=src python examples/quickstart.py [n_train]
"""

from __future__ import annotations

import sys

from repro.cli import main as repro_main


def main(n_train: int = 2048, n_test: int = 512) -> int:
    argv = ["train", "--dataset", "gas",
            "--n-train", str(n_train), "--n-test", str(n_test)]
    print(f"$ repro {' '.join(argv)}")
    return repro_main(argv)


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    sys.exit(main(n_train=n))
