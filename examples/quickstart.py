#!/usr/bin/env python
"""Quickstart: kernel ridge regression classification with a compressed kernel.

This script walks through the paper's Algorithm 1 end to end on a synthetic
GAS-like dataset:

1. generate and standardize the data,
2. reorder the training points with recursive two-means clustering (Step 0),
3. compress the (implicit) kernel matrix into HSS form with randomized
   sampling accelerated by an H matrix,
4. factor it with the ULV factorization and solve for the weight vector
   (Step 2),
5. predict the test labels and report accuracy, memory and timings.

Run it with:  python examples/quickstart.py [n_train]
"""

from __future__ import annotations

import sys

from repro.datasets import load_dataset
from repro.krr import KernelRidgeClassifier
from repro.utils.bytes import dense_matrix_bytes, megabytes


def main(n_train: int = 2048, n_test: int = 512) -> None:
    print(f"Loading GAS-like dataset: {n_train} train / {n_test} test samples")
    data = load_dataset("gas", n_train=n_train, n_test=n_test, seed=0)
    print(f"  dimension      : {data.dim}")
    print(f"  paper (h, lam) : ({data.h}, {data.lam})")

    # The classifier runs all steps of Algorithm 1: clustering preprocessing,
    # HSS compression (with H-matrix accelerated sampling), ULV factorization,
    # solve, and sign-based prediction.
    clf = KernelRidgeClassifier(
        h=data.h,
        lam=data.lam,
        solver="hss",
        clustering="two_means",
        leaf_size=16,
        seed=0,
    )
    clf.fit(data.X_train, data.y_train)
    accuracy = clf.score(data.X_test, data.y_test)

    report = clf.report
    dense_mb = megabytes(dense_matrix_bytes(n_train))
    print("\nResults")
    print(f"  test accuracy            : {100 * accuracy:.1f}%")
    print(f"  HSS memory               : {report.hss_memory_mb:.2f} MB")
    print(f"  H matrix memory          : {report.hmatrix_memory_mb:.2f} MB")
    print(f"  dense kernel would need  : {dense_mb:.1f} MB")
    print(f"  maximum off-diagonal rank: {report.max_rank}")
    print("  phase timings (s):")
    for phase, seconds in sorted(report.timings.items()):
        print(f"    {phase:20s} {seconds:8.3f}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    main(n_train=n)
