#!/usr/bin/env python
"""Compare the preprocessing orderings (the paper's Table 2, in miniature).

For a chosen dataset, this example builds the HSS approximation of the
kernel matrix under each ordering (natural, k-d tree, PCA tree, recursive
two-means, ball tree) and reports the three quantities the paper uses to
judge a preprocessing method: memory of the compressed matrix, maximum
off-diagonal rank, and classification accuracy.

Run it with:  python examples/compare_clusterings.py [dataset] [n_train]
e.g.          python examples/compare_clusterings.py covtype 2048
"""

from __future__ import annotations

import sys

from repro.datasets import dataset_names, load_dataset
from repro.diagnostics import Table
from repro.krr import KRRPipeline


def main(dataset: str = "gas", n_train: int = 1024, n_test: int = 256) -> None:
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}; choose from {dataset_names()}")
    data = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=0)
    print(f"{dataset.upper()}: {n_train} train / {n_test} test, d={data.dim}, "
          f"h={data.h}, lambda={data.lam}\n")

    table = Table(title="Preprocessing comparison (paper Table 2, scaled down)")
    orderings = ("natural", "kd", "pca", "two_means", "ball")
    for ordering in orderings:
        pipeline = KRRPipeline(h=data.h, lam=data.lam, clustering=ordering,
                               solver="hss", use_hmatrix_sampling=False, seed=0)
        report = pipeline.run(data.X_train, data.y_train,
                              data.X_test, data.y_test, dataset_name=dataset)
        table.add_row(
            ordering=ordering,
            memory_mb=round(report.hss_memory_mb, 3),
            max_rank=report.max_rank,
            accuracy_percent=round(report.accuracy_percent, 1),
            train_seconds=round(report.phase("train_total"), 2),
        )
    print(table.render())
    rows = {r["ordering"]: r for r in table.rows}
    gain = rows["natural"]["memory_mb"] / rows["two_means"]["memory_mb"]
    print(f"\nMemory reduction natural -> two-means: {gain:.1f}x "
          "(the paper reports up to ~10x on the best datasets)")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "gas"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    main(dataset=name, n_train=n)
