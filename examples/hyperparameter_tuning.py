#!/usr/bin/env python
"""Hyper-parameter tuning: grid search vs an OpenTuner-style black-box tuner.

Reproduces the experiment behind the paper's Figure 6 on a SUSY-like
dataset: a full grid over (h, lambda) is compared with a budgeted
multi-armed-bandit tuner (random sampling, local perturbation, differential
evolution and Nelder-Mead proposals).  The black-box tuner typically matches
or beats the grid with an order of magnitude fewer kernel evaluations.

Run it with:  python examples/hyperparameter_tuning.py [budget]
"""

from __future__ import annotations

import sys

from repro.datasets import load_dataset, train_test_split
from repro.krr import KernelRidgeClassifier
from repro.tuning import BanditTuner, GridSearch, KRRObjective, ParameterSpace


def main(budget: int = 100, n_train: int = 768, n_val: int = 256,
         n_test: int = 256) -> None:
    data = load_dataset("susy", n_train=n_train + n_val, n_test=n_test, seed=0)
    X_tr, y_tr, X_val, y_val = train_test_split(
        data.X_train, data.y_train, test_fraction=n_val / (n_train + n_val), seed=0)
    print(f"SUSY-like data: {X_tr.shape[0]} train, {X_val.shape[0]} validation, "
          f"{n_test} test\n")

    space = ParameterSpace.krr_default(h_bounds=(0.25, 2.0), lam_bounds=(0.5, 10.0))

    # --- grid search (the paper's expensive baseline, Figure 6a)
    grid_objective = KRRObjective(X_tr, y_tr, X_val, y_val)
    grid_result = GridSearch(space, points_per_dim=12).optimize(grid_objective)
    print(f"Grid search      : {grid_objective.evaluations:4d} runs, "
          f"{grid_objective.kernel_constructions:3d} kernel builds, "
          f"best validation accuracy {100 * grid_result.best_value:.2f}% at "
          f"h={grid_result.best_config['h']:.3f}, "
          f"lam={grid_result.best_config['lam']:.3f}")

    # --- black-box tuner (Figure 6b)
    tuner_objective = KRRObjective(X_tr, y_tr, X_val, y_val)
    tuner = BanditTuner(space, budget=budget, seed=0)
    tuner_result = tuner.optimize(tuner_objective)
    print(f"Black-box tuner  : {tuner_objective.evaluations:4d} runs, "
          f"{tuner_objective.kernel_constructions:3d} kernel builds, "
          f"best validation accuracy {100 * tuner_result.best_value:.2f}% at "
          f"h={tuner_result.best_config['h']:.3f}, "
          f"lam={tuner_result.best_config['lam']:.3f}")
    print(f"  technique usage: {tuner.technique_usage_}")

    # --- final model on the held-out test set with the tuned parameters
    best = tuner_result.best_config
    clf = KernelRidgeClassifier(h=best["h"], lam=best["lam"], solver="hss",
                                clustering="two_means", seed=0)
    clf.fit(data.X_train, data.y_train)
    print(f"\nTest accuracy with tuned (h, lambda): "
          f"{100 * clf.score(data.X_test, data.y_test):.2f}%")


if __name__ == "__main__":
    main(budget=int(sys.argv[1]) if len(sys.argv) > 1 else 100)
