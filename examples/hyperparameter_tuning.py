#!/usr/bin/env python
"""Hyper-parameter tuning via the ``repro`` CLI: grid vs black-box search.

Reproduces the experiment behind the paper's Figure 6 on a SUSY-like
dataset by driving ``repro tune`` twice — once with the exhaustive grid
(Figure 6a) and once with the budgeted multi-armed-bandit tuner
(Figure 6b).  Both searches are λ-move aware: the objective pays one
kernel compression per distinct ``h`` and a cheap refit per λ.  The
equivalent shell commands::

    repro tune --dataset susy --strategy grid   --set tuning.points_per_dim=12
    repro tune --dataset susy --strategy bandit --budget 100

Each run leaves its best ``(h, lambda)`` in its ``--json`` result; apply
it with ``repro train --h ... --lam ...`` (or ``repro refit`` for a
λ-only move on an already-trained model).

Run it with:  PYTHONPATH=src python examples/hyperparameter_tuning.py [budget]
"""

from __future__ import annotations

import sys

from repro.cli import main as repro_main

COMMON = ["--dataset", "susy", "--n-train", "1024", "--n-test", "256",
          "--set", "tuning.h_min=0.25", "--set", "tuning.h_max=2.0",
          "--set", "tuning.lam_min=0.5", "--set", "tuning.lam_max=10.0"]


def main(budget: int = 100) -> int:
    # --- grid search (the paper's expensive baseline, Figure 6a)
    argv = ["tune", "--strategy", "grid",
            "--set", "tuning.points_per_dim=12", *COMMON,
            "--json", "repro_tune_grid.json"]
    print(f"$ repro {' '.join(argv)}")
    rc = repro_main(argv)
    if rc != 0:
        return rc

    # --- black-box tuner (Figure 6b)
    argv = ["tune", "--strategy", "bandit", "--budget", str(budget),
            *COMMON, "--json", "repro_tune_bandit.json"]
    print(f"\n$ repro {' '.join(argv)}")
    return repro_main(argv)


if __name__ == "__main__":
    sys.exit(main(budget=int(sys.argv[1]) if len(sys.argv) > 1 else 100))
