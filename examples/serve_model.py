#!/usr/bin/env python
"""Train once, persist, and serve — the lifecycle via the ``repro`` CLI.

This script walks through the train-offline / serve-online split as three
CLI invocations sharing one layered runtime config:

1. ``repro train`` — the full Algorithm-1 pipeline; the fitted model
   (cluster tree, HSS generators, ULV factors, weights) lands in the
   model store with the pipeline report attached as metadata,
2. ``repro serve --check`` — a fresh process's view: load the model back
   (checksum-verified), stand up the micro-batched
   :class:`repro.serving.PredictionService` and verify the served answers
   match direct model predictions bit for bit,
3. ``repro inspect models`` — the store catalog a deployment would audit.

The equivalent shell commands::

    repro train --store models --model gas-hss
    repro serve --check --store models --model gas-hss
    repro inspect models --store models

Run it with:  PYTHONPATH=src python examples/serve_model.py [n_train]
"""

from __future__ import annotations

import sys
import tempfile

from repro.cli import main as repro_main


def main(n_train: int = 2048, n_test: int = 512) -> int:
    store = tempfile.mkdtemp(prefix="repro-models-")
    common = ["--dataset", "gas", "--n-train", str(n_train),
              "--n-test", str(n_test), "--store", store,
              "--model", "gas-hss"]
    for argv in (
        ["train", *common, "--json", "repro_serve_train.json"],
        ["serve", "--check", *common, "--json", "repro_serve_check.json"],
        ["inspect", "models", *common, "--json", "repro_serve_models.json"],
    ):
        print(f"$ repro {' '.join(argv)}")
        rc = repro_main(argv)
        if rc != 0:
            return rc
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(*(int(a) for a in sys.argv[1:3])))
