#!/usr/bin/env python
"""Train once, persist, and serve batched predictions (repro.serving demo).

This script walks through the train-offline / serve-online split:

1. train the paper's HSS-compressed KRR classifier on a GAS-like dataset
   (the full Algorithm-1 pipeline, via :class:`repro.krr.KRRPipeline`),
2. persist the trained model — cluster tree, HSS generators, ULV factors
   and weights — into a :class:`repro.serving.ModelStore` with the
   pipeline report attached as metadata,
3. load it back (checksum-verified) in a fresh object, as a serving
   process would after a restart,
4. answer queries through a :class:`repro.serving.PredictionService`
   (micro-batched, with an LRU kernel-row cache) and print the serving
   statistics: p50/p95 latency, queries per second, cache hit rate.

Run it with:  PYTHONPATH=src python examples/serve_model.py [n_train]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.datasets import load_dataset
from repro.krr import KRRPipeline
from repro.serving import ModelStore, PredictionEngine, PredictionService


def main(n_train: int = 2048, n_test: int = 512) -> None:
    # ------------------------------------------------------------- 1. train
    print(f"Training on GAS-like data: {n_train} train / {n_test} test")
    data = load_dataset("gas", n_train=n_train, n_test=n_test, seed=0)
    pipeline = KRRPipeline(h=data.h, lam=data.lam, solver="hss",
                           clustering="two_means", seed=0)
    report = pipeline.run(data.X_train, data.y_train, data.X_test, data.y_test,
                          dataset_name="gas")
    print(f"  accuracy {report.accuracy_percent:.1f}%, "
          f"memory {report.memory_mb:.2f} MB, max rank {report.max_rank}")

    # ----------------------------------------------------------- 2. persist
    store_dir = tempfile.mkdtemp(prefix="repro-models-")
    store = ModelStore(store_dir)
    record = store.save(pipeline.classifier_, "gas-hss", report=report)
    print(f"\nSaved to {store.root}")
    print(f"  {record.describe()}")
    print(f"  archive: {store.artifact('gas-hss').nbytes / 2**20:.2f} MB")

    # -------------------------------------------------------------- 3. load
    served = store.load("gas-hss")  # checksum-verified round trip
    same = np.array_equal(served.predict(data.X_test),
                          pipeline.classifier_.predict(data.X_test))
    print(f"  reloaded model matches original predictions exactly: {same}")

    # ------------------------------------------------------------- 4. serve
    engine = PredictionEngine(served, batch_size=256, cache_size=1024)
    queries = data.X_test
    # Simulate traffic with repeats (cache hits) mixed into fresh queries.
    rng = np.random.default_rng(0)
    traffic = np.vstack([queries, queries[rng.integers(0, n_test, n_test)]])

    print(f"\nServing {traffic.shape[0]} queries "
          f"({n_test} unique + {n_test} repeats)")
    with PredictionService(engine, max_batch=256, batch_window=0.001) as svc:
        labels = svc.predict_many(traffic)
        stats = svc.stats()

    accuracy = float(np.mean(labels[:n_test] == data.y_test))
    print(f"  online accuracy : {100 * accuracy:.1f}%")
    print(f"  throughput      : {stats.qps:.0f} queries/s "
          f"({stats.batches} batches, mean size {stats.mean_batch_size:.1f})")
    print(f"  latency         : p50 {stats.p50_latency_ms:.2f} ms, "
          f"p95 {stats.p95_latency_ms:.2f} ms")
    print(f"  kernel-row cache: {engine.stats.cache_hits} hits / "
          f"{engine.stats.cache_hits + engine.stats.cache_misses} lookups "
          f"({100 * engine.stats.hit_rate:.0f}% hit rate)")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
