#!/usr/bin/env python
"""Multi-class classification with one-vs-all kernel ridge regression.

The paper's Section 2 describes the one-vs-all extension of Algorithm 1:
one binary classifier per class, sharing the same kernel matrix — and
therefore, with the HSS solver, sharing a single compression and ULV
factorization across all classes (only the right-hand side changes).

This example classifies a PEN-like handwritten-digit dataset into its ten
digit classes and prints the per-class accuracy and the confusion matrix.

Run it with:  python examples/multiclass_digits.py [n_train]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.datasets import clustered_manifold, standardize
from repro.krr import OneVsAllClassifier, confusion_matrix


def make_digits(n: int, seed: int = 0):
    """A PEN-like dataset keeping the full 10-class label (not one-vs-all)."""
    X, ids = clustered_manifold(n, 16, n_clusters=20, intrinsic_dim=4,
                                separation=3.5, noise=0.3, seed=seed)
    return X, ids % 10


def main(n_train: int = 2048, n_test: int = 512) -> None:
    X, y = make_digits(n_train + n_test, seed=0)
    X_train, X_test = standardize(X[:n_train], X[n_train:])
    y_train, y_test = y[:n_train], y[n_train:]
    print(f"PEN-like digits: {n_train} train / {n_test} test, "
          f"{len(np.unique(y))} classes\n")

    clf = OneVsAllClassifier(h=1.0, lam=1.0, solver="hss",
                             clustering="two_means", seed=0)
    clf.fit(X_train, y_train)
    predictions = clf.predict(X_test)
    accuracy = float(np.mean(predictions == y_test))
    print(f"Overall accuracy: {100 * accuracy:.1f}%")
    print(f"Shared HSS compression: {clf.report.hss_memory_mb:.2f} MB, "
          f"max rank {clf.report.max_rank}, one factorization for "
          f"{clf.classes_.size} classes\n")

    matrix, labels = confusion_matrix(y_test, predictions)
    header = "true\\pred " + " ".join(f"{int(c):4d}" for c in labels)
    print(header)
    for i, label in enumerate(labels):
        row = " ".join(f"{matrix[i, j]:4d}" for j in range(labels.size))
        print(f"{int(label):9d} {row}")

    per_class = {int(c): float(np.mean(predictions[y_test == c] == c))
                 for c in labels if np.any(y_test == c)}
    worst = min(per_class, key=per_class.get)
    print(f"\nWorst class: {worst} at {100 * per_class[worst]:.1f}% "
          "(the paper notes one-vs-all accuracy varies by target class)")


if __name__ == "__main__":
    main(n_train=int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
