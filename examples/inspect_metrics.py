#!/usr/bin/env python
"""Inspect the telemetry a lifecycle run leaves behind, via the CLI.

The library instruments itself: phase wall-clock, kernel evaluation
counts and serving latencies accumulate in one process-wide registry
(see ``docs/observability.md``).  The runtime config's ``[obs]`` section
wires that registry into every CLI command: a non-empty ``dump_path``
makes each command write the merged snapshot on exit, and
``repro inspect metrics`` renders the dump back — counters, gauges and
collapsed histogram percentiles.

This script drives that loop end to end:

1. ``repro train --set obs.dump_path=...`` — the training phases and
   kernel counters land in the dump,
2. ``repro inspect metrics`` — parse and summarize the dump (the same
   ``obs.parse_prometheus`` / ``obs.summarize_snapshot`` round trip CI
   asserts),
3. print a few headline series directly from the parsed JSON result.

Run it with:  PYTHONPATH=src python examples/inspect_metrics.py [n_train]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.cli import main as repro_main


def main(n_train: int = 1024, n_test: int = 256) -> int:
    workdir = tempfile.mkdtemp(prefix="repro-metrics-")
    dump = os.path.join(workdir, "metrics.json")
    result = os.path.join(workdir, "inspect.json")
    common = ["--dataset", "susy", "--n-train", str(n_train),
              "--n-test", str(n_test), "--store",
              os.path.join(workdir, "models"),
              "--set", f"obs.dump_path={dump}"]

    argv = ["train", *common, "--json",
            os.path.join(workdir, "train.json")]
    print(f"$ repro {' '.join(argv)}")
    rc = repro_main(argv)
    if rc != 0:
        return rc

    argv = ["inspect", "metrics", *common, "--json", result]
    print(f"\n$ repro {' '.join(argv)}")
    rc = repro_main(argv)
    if rc != 0:
        return rc

    with open(result, "r", encoding="utf-8") as fh:
        summary = json.load(fh)["result"]["summary"]
    compressions = summary["counters"].get(
        "repro_kernel_compressions_total", 0)
    print(f"\nParsed back from {result}:")
    print(f"  kernel compressions recorded: {compressions:g}")
    assert compressions >= 1, "training must record a kernel compression"
    return 0


if __name__ == "__main__":
    sys.exit(main(*(int(a) for a in sys.argv[1:3])))
