#!/usr/bin/env python
"""Inspect the telemetry a training + serving run leaves behind (repro.obs).

The library instruments itself: phase wall-clock, kernel evaluation
counts, serving latencies and per-request life cycles all accumulate in
one process-wide registry (see ``docs/observability.md``).  This script
makes that visible end to end:

1. train the HSS-compressed KRR classifier on a SUSY-like dataset inside
   an explicit trace span, so the run produces a nested phase tree,
2. serve a few hundred queries through a
   :class:`repro.serving.PredictionService` (micro-batched, with repeats
   so the kernel-row cache sees hits),
3. print the merged metrics snapshot — phase timing counters, kernel /
   serving counters, latency histogram percentiles,
4. print the span tree of the training run and the tail of the
   per-request trail, and
5. write the full snapshot as a Prometheus text exposition and re-parse
   it, the same round trip CI asserts.

Run it with:  PYTHONPATH=src python examples/inspect_metrics.py [n_train]
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np

import repro.obs as obs
from repro.datasets import load_dataset
from repro.krr import KRRPipeline
from repro.serving import PredictionEngine, PredictionService


def main(n_train: int = 1024, n_test: int = 256) -> None:
    reg = obs.global_registry()

    # ------------------------------------------------------------- 1. train
    print(f"Training on SUSY-like data: {n_train} train / {n_test} test")
    data = load_dataset("susy", n_train=n_train, n_test=n_test, seed=0)
    pipeline = KRRPipeline(h=data.h, lam=data.lam, solver="hss",
                           clustering="two_means", seed=0)
    with obs.trace.span("example.train"):
        report = pipeline.run(data.X_train, data.y_train,
                              data.X_test, data.y_test,
                              dataset_name="susy")
    print(f"  accuracy {report.accuracy_percent:.1f}%, "
          f"max rank {report.max_rank}")

    # ------------------------------------------------------------- 2. serve
    rng = np.random.default_rng(0)
    traffic = np.vstack([data.X_test,
                         data.X_test[rng.integers(0, n_test, n_test)]])
    print(f"\nServing {traffic.shape[0]} queries "
          f"({n_test} unique + {n_test} repeats)")
    engine = PredictionEngine(pipeline.classifier_, batch_size=128,
                              cache_size=n_test)
    with PredictionService(engine, max_batch=128, batch_window=0.001,
                           model_name="susy-hss") as svc:
        svc.predict_many(traffic)
        trail = svc.recent_requests(5)

    # ---------------------------------------------------- 3. metrics snapshot
    snap = reg.snapshot()
    print("\nPhase timings (repro_phase_seconds_total):")
    for sample, value in sorted(snap["counters"].items()):
        if sample.startswith("repro_phase_seconds_total"):
            print(f"  {sample:60s} {value:10.4f}")
    print("Kernel / serving counters:")
    for sample, value in sorted(snap["counters"].items()):
        if sample.startswith(("repro_kernel", "repro_serving", "repro_service")):
            print(f"  {sample:60s} {value:10.0f}")
    summary = obs.summarize_snapshot(snap)
    for sample, hist in sorted(summary["histograms"].items()):
        print(f"  {sample}: count={hist['count']} "
              f"p50<={hist['p50'] * 1e3:.3f}ms p95<={hist['p95'] * 1e3:.3f}ms")

    # --------------------------------------------------------- 4. span tree
    roots = [r for r in obs.trace.recent_roots() if r.name == "example.train"]
    print("\nTraining span tree:")
    print(roots[-1].format(indent=1))

    print("\nLast requests in the service trail:")
    for rec in trail:
        print(f"  #{rec.request_id:<5d} {rec.status:<10s} "
              f"latency {rec.latency * 1e3:8.3f} ms  "
              f"(queued {rec.queue_wait * 1e3:6.3f} ms, "
              f"batch of {rec.batch_size})")

    # -------------------------------------------------- 5. export round trip
    path = os.path.join(tempfile.mkdtemp(prefix="repro-metrics-"),
                        "metrics.prom")
    obs.dump_metrics(path)
    with open(path) as fh:
        samples = obs.parse_prometheus(fh.read())
    print(f"\nWrote {path}: {len(samples)} samples, "
          "round-tripped through obs.parse_prometheus")
    assert samples["repro_serving_queries_total"] >= traffic.shape[0]


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
