#!/usr/bin/env python
"""λ sweep: compress the kernel once, refit the factorization per λ.

The training system is ``K + lambda I``, and everything expensive about
its hierarchical approximation depends only on ``K`` — so a
regularization sweep should pay the H-matrix + HSS compression exactly
once.  This script demonstrates the compress-once/refit-many API on a
synthetic SUSY-like dataset, configured through the layered
:class:`repro.runtime.RuntimeConfig` (the same spine the ``repro`` CLI
uses, so ``REPRO_*`` env vars and a ``./repro.toml`` apply here too):

1. resolve the runtime config and build the classifier from it,
2. fit cold at the first λ (clustering + λ-free compression + ULV
   factorization + solve),
3. sweep the remaining λ values with ``clf.refit(lam)`` — each point
   reuses the resident :class:`repro.hss.CompressedKernel` and redoes
   only the ``O(n r^2)`` ULV factorization and the training solve.

Every refit is numerically identical (bitwise) to a cold fit at that λ.
The shell equivalent of one sweep step:  ``repro refit --new-lam 2.0``.

Run it with:  PYTHONPATH=src python examples/sweep_lambda.py [n_train]
"""

from __future__ import annotations

import sys
import time

from repro.datasets import load_dataset
from repro.krr import KernelRidgeClassifier
from repro.runtime import resolve_runtime_config


def main(n_train: int = 2048, n_test: int = 512) -> None:
    lambdas = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    config = resolve_runtime_config(flags={
        "dataset.name": "susy",
        "dataset.n_train": n_train,
        "dataset.n_test": n_test,
    })
    d = config.dataset
    print(f"Loading SUSY-like dataset: {d.n_train} train / {d.n_test} test "
          f"samples")
    data = load_dataset(d.name, n_train=d.n_train, n_test=d.n_test,
                        seed=d.seed, normalize=d.normalize)

    clf = KernelRidgeClassifier(
        h=data.h, lam=lambdas[0], solver=config.solver.name,
        clustering=config.clustering.method,
        leaf_size=config.clustering.leaf_size, seed=config.clustering.seed,
        workers=config.distributed.workers,
        solver_options={"hss_options": config.hss_options(),
                        "hmatrix_options": config.hmatrix_options(),
                        "use_hmatrix_sampling":
                            config.solver.use_hmatrix_sampling})
    t0 = time.perf_counter()
    clf.fit(data.X_train, data.y_train)
    cold_seconds = time.perf_counter() - t0
    acc = clf.score(data.X_test, data.y_test)
    print(f"\ncold fit   lam={lambdas[0]:<6g} accuracy={100 * acc:6.2f}%  "
          f"{cold_seconds:6.3f}s  (clustering + compression + ULV + solve)")

    best = (acc, lambdas[0])
    for lam in lambdas[1:]:
        t1 = time.perf_counter()
        clf.refit(lam)           # reuses the λ-free compression
        refit_seconds = time.perf_counter() - t1
        acc = clf.score(data.X_test, data.y_test)
        best = max(best, (acc, lam))
        print(f"refit      lam={lam:<6g} accuracy={100 * acc:6.2f}%  "
              f"{refit_seconds:6.3f}s  ({cold_seconds / refit_seconds:4.1f}x "
              f"faster than the cold fit)")

    solver = clf.solver_
    print(f"\ncompressions performed : {solver.compression_count} "
          f"(for {len(lambdas)} lambda values)")
    print(f"lambda refits          : {solver.report.refits}")
    print(f"best                   : lam={best[1]:g} "
          f"accuracy={100 * best[0]:.2f}%")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
