#!/usr/bin/env python
"""λ sweep: compress the kernel once, refit the factorization per λ.

The training system is ``K + lambda I``, and everything expensive about
its hierarchical approximation depends only on ``K`` — so a
regularization sweep should pay the H-matrix + HSS compression exactly
once.  This script demonstrates the compress-once/refit-many API on a
synthetic SUSY-like dataset:

1. fit a ``KernelRidgeClassifier`` cold at the first λ (clustering +
   λ-free compression + ULV factorization + solve),
2. sweep the remaining λ values with ``clf.refit(lam)`` — each point
   reuses the resident :class:`repro.hss.CompressedKernel` and redoes
   only the ``O(n r^2)`` ULV factorization and the training solve,
3. report per-λ validation accuracy and wall-clock, comparing the refit
   cost against the cold fit.

Every refit is numerically identical (bitwise) to a cold fit at that λ.
With ``shards=2`` (and optionally a warm ``WorkerGrid``) the same
``refit`` call keeps the worker processes and their per-shard
compressions resident too.

Run it with:  python examples/sweep_lambda.py [n_train]
"""

from __future__ import annotations

import sys
import time

from repro.datasets import load_dataset
from repro.krr import KernelRidgeClassifier


def main(n_train: int = 2048, n_test: int = 512) -> None:
    lambdas = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    print(f"Loading SUSY-like dataset: {n_train} train / {n_test} test samples")
    data = load_dataset("susy", n_train=n_train, n_test=n_test, seed=0)

    clf = KernelRidgeClassifier(h=data.h, lam=lambdas[0], solver="hss",
                                clustering="two_means", seed=0)
    t0 = time.perf_counter()
    clf.fit(data.X_train, data.y_train)
    cold_seconds = time.perf_counter() - t0
    acc = clf.score(data.X_test, data.y_test)
    print(f"\ncold fit   lam={lambdas[0]:<6g} accuracy={100 * acc:6.2f}%  "
          f"{cold_seconds:6.3f}s  (clustering + compression + ULV + solve)")

    best = (acc, lambdas[0])
    for lam in lambdas[1:]:
        t1 = time.perf_counter()
        clf.refit(lam)           # reuses the λ-free compression
        refit_seconds = time.perf_counter() - t1
        acc = clf.score(data.X_test, data.y_test)
        best = max(best, (acc, lam))
        print(f"refit      lam={lam:<6g} accuracy={100 * acc:6.2f}%  "
              f"{refit_seconds:6.3f}s  ({cold_seconds / refit_seconds:4.1f}x "
              f"faster than the cold fit)")

    solver = clf.solver_
    print(f"\ncompressions performed : {solver.compression_count} "
          f"(for {len(lambdas)} lambda values)")
    print(f"lambda refits          : {solver.report.refits}")
    print(f"best                   : lam={best[1]:g} "
          f"accuracy={100 * best[0]:.2f}%")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
