#!/usr/bin/env python
"""Large-scale pipeline: how far can one node go with a compressed kernel?

This example mirrors the paper's Table 3 / Figure 7 story: sweep the
training set size and watch the memory of the compressed kernel matrix and
the factorization time grow quasi-linearly, while the dense kernel matrix
(shown for reference) grows quadratically and quickly becomes impossible.
It also models what the distributed (MPI) version of the solver would do on
32-1,024 cores using the calibrated cost model.

Run it with:  python examples/large_scale_pipeline.py [max_n]
"""

from __future__ import annotations

import sys
import time

from repro.clustering import cluster
from repro.datasets import load_dataset
from repro.diagnostics import Table
from repro.hmatrix import HMatrixSampler, build_hmatrix
from repro.hss import ULVFactorization, build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator
from repro.parallel import (estimate_hmatrix_work, estimate_hss_work,
                            estimate_sampling_work, simulate_strong_scaling)
from repro.runtime import resolve_runtime_config
from repro.utils.bytes import dense_matrix_bytes, megabytes


def main(max_n: int = 8192) -> None:
    sizes = [n for n in (1024, 2048, 4096, 8192, 16384, 32768) if n <= max_n]
    table = Table(title="Scaling of the compressed kernel solver (SUSY-like data)")
    last_build = None

    # One config resolution supplies every option object below, so a
    # ./repro.toml or REPRO_* env vars retune the whole sweep (the flag
    # layer only pins the rel_tol this example's table is calibrated for).
    config = resolve_runtime_config(flags={"hss.rel_tol": 0.1})
    c = config.clustering

    for n in sizes:
        data = load_dataset("susy", n_train=n, n_test=256,
                            seed=config.dataset.seed)
        clustering = cluster(data.X_train, method=c.method,
                             leaf_size=c.leaf_size, seed=c.seed)
        operator = ShiftedKernelOperator(clustering.X, GaussianKernel(h=data.h),
                                         data.lam)

        t0 = time.perf_counter()
        hmatrix = build_hmatrix(operator, clustering.X, clustering.tree,
                                config.hmatrix_options())
        sampler = HMatrixSampler(hmatrix, operator)
        hss, stats = build_hss_randomized(sampler, clustering.tree,
                                          config.hss_options(), rng=0)
        construction = time.perf_counter() - t0

        t0 = time.perf_counter()
        factorization = ULVFactorization(hss)
        factor_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        weights = factorization.solve(clustering.permute_labels(data.y_train))
        solve_time = time.perf_counter() - t0

        hss_stats = hss.statistics()
        table.add_row(
            N=n,
            hss_mb=round(hss_stats.memory_mb, 2),
            hmatrix_mb=round(megabytes(hmatrix.nbytes), 2),
            dense_mb=round(megabytes(dense_matrix_bytes(n)), 1),
            max_rank=hss_stats.max_rank,
            construction_s=round(construction, 2),
            factorization_s=round(factor_time, 3),
            solve_s=round(solve_time, 4),
        )
        last_build = (hss, stats, hmatrix)
        del weights

    print(table.render())

    # Model the distributed factorization of the largest problem (Figure 8).
    hss, stats, hmatrix = last_build
    work = estimate_hss_work(hss, n_random=stats.random_vectors)
    sampling = estimate_sampling_work(hss.n, stats.random_vectors, hmatrix)
    points = simulate_strong_scaling(
        work, core_counts=(32, 64, 128, 256, 512, 1024),
        n_sampling_sweeps=stats.rounds,
        hmatrix_flops=estimate_hmatrix_work(hmatrix),
        hmatrix_sampling_flops=sampling["hmatrix"])
    scaling = Table(title=f"Modelled distributed factorization time, N={hss.n} "
                          "(strong scaling, Figure 8)")
    for pt in points:
        scaling.add_row(cores=pt.cores,
                        factorization_s=f"{pt.factorization_time:.3g}",
                        efficiency=f"{pt.parallel_efficiency:.2f}")
    print()
    print(scaling.render())


if __name__ == "__main__":
    main(max_n=int(sys.argv[1]) if len(sys.argv) > 1 else 8192)
