"""Tests for the randomized range finder and randomized SVD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank import randomized_range_finder, randomized_svd


def _lowrank_matrix(m, n, r, seed=0, decay=None):
    rng = np.random.default_rng(seed)
    U, _ = np.linalg.qr(rng.standard_normal((m, r)))
    V, _ = np.linalg.qr(rng.standard_normal((n, r)))
    s = np.logspace(0, -6, r) if decay else np.ones(r)
    return (U * s) @ V.T


class TestRangeFinder:
    def test_captures_range_of_lowrank(self):
        A = _lowrank_matrix(80, 60, 10, seed=1)
        Q, rounds = randomized_range_finder(lambda V: A @ V, n=60, rel_tol=1e-8,
                                            initial_samples=16, rng=0)
        resid = A - Q @ (Q.T @ A)
        assert np.linalg.norm(resid) <= 1e-6 * np.linalg.norm(A)
        assert rounds >= 1

    def test_adaptive_enlargement(self):
        # Rank 30 but only 8 initial samples: the finder must enlarge.
        A = _lowrank_matrix(100, 100, 30, seed=2)
        Q, rounds = randomized_range_finder(lambda V: A @ V, n=100, rel_tol=1e-6,
                                            initial_samples=8, sample_increment=16,
                                            rng=0)
        resid = A - Q @ (Q.T @ A)
        assert np.linalg.norm(resid) <= 1e-4 * np.linalg.norm(A)
        assert rounds > 1

    def test_max_rank_cap(self):
        A = _lowrank_matrix(50, 50, 20, seed=3)
        Q, _ = randomized_range_finder(lambda V: A @ V, n=50, rel_tol=1e-10,
                                       max_rank=5, initial_samples=4, rng=0)
        assert Q.shape[1] <= 5

    def test_empty(self):
        Q, rounds = randomized_range_finder(lambda V: V, n=0)
        assert Q.shape == (0, 0)
        assert rounds == 0


class TestRandomizedSVD:
    def test_matches_exact_svd_of_lowrank(self):
        A = _lowrank_matrix(70, 50, 8, seed=4, decay=True)
        U, s, Vt = randomized_svd(lambda V: A @ V, lambda V: A.T @ V, n=50,
                                  rank=8, rng=1)
        s_exact = np.linalg.svd(A, compute_uv=False)[:8]
        np.testing.assert_allclose(s, s_exact, rtol=1e-4)
        np.testing.assert_allclose((U * s) @ Vt, A, atol=1e-6)

    def test_truncation_rank(self):
        A = _lowrank_matrix(40, 40, 12, seed=5)
        U, s, Vt = randomized_svd(lambda V: A @ V, lambda V: A.T @ V, n=40, rank=5,
                                  rng=0)
        assert U.shape == (40, 5) and s.shape == (5,) and Vt.shape == (5, 40)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            randomized_svd(lambda V: V, lambda V: V, n=10, rank=-1)

    def test_zero_rank(self):
        U, s, Vt = randomized_svd(lambda V: np.zeros((5, V.shape[1])),
                                  lambda V: np.zeros((5, V.shape[1])), n=5, rank=0,
                                  oversampling=0)
        assert s.size == 0
