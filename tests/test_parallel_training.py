"""Parallel-vs-serial determinism of the training path.

The level-parallel HSS builders and the ULV factorization promise bitwise
identical results for any worker count: the random sample is drawn once up
front, tasks are partitioned identically, and per-node results are
committed in deterministic tree order.  These tests pin that contract for
the dense builder, the randomized builder (with and without H-matrix
sampling), the ULV factor/solve sweeps and the full `KRRPipeline.run()`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.datasets import gas_like, standardize, susy_like
from repro.hmatrix import HMatrixSampler, build_hmatrix
from repro.hss import ULVFactorization, build_hss_from_dense, build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator
from repro.krr import KernelRidgeClassifier, KRRPipeline
from repro.parallel import BlockExecutor

WORKERS = 4


def _assert_hss_equal(a, b):
    assert a.n == b.n
    for da, db in zip(a.node_data, b.node_data):
        for name in ("D", "U", "V", "B12", "B21", "row_skeleton",
                     "col_skeleton"):
            xa, xb = getattr(da, name), getattr(db, name)
            assert (xa is None) == (xb is None), name
            if xa is not None:
                assert np.array_equal(xa, xb), f"{name} differs"


def _assert_factors_equal(fa, fb):
    for f1, f2 in zip(fa._factors, fb._factors):
        assert f1.n_loc == f2.n_loc and f1.n_elim == f2.n_elim
        for name in ("omega", "q", "lower", "d_hat1", "d_hat2", "u_hat",
                     "g1", "g2"):
            xa, xb = getattr(f1, name), getattr(f2, name)
            assert (xa is None) == (xb is None), name
            if xa is not None:
                assert np.array_equal(xa, xb), f"{name} differs"


@pytest.fixture(scope="module", params=["susy", "gas"])
def problem(request):
    if request.param == "susy":
        X, y = susy_like(384, seed=5)
    else:
        X, y = gas_like(256, seed=5)
    X = standardize(X)
    result = cluster(X, method="two_means", leaf_size=16, seed=2)
    operator = ShiftedKernelOperator(result.X, GaussianKernel(h=1.0), 2.0)
    return result, operator, y


class TestBuilderDeterminism:
    def test_dense_builder(self, problem):
        result, operator, _ = problem
        A = GaussianKernel(h=1.0).matrix(result.X)
        A[np.diag_indices_from(A)] += 2.0
        opts = HSSOptions(rel_tol=1e-2)
        serial = build_hss_from_dense(A, result.tree, opts)
        with BlockExecutor(workers=WORKERS) as ex:
            parallel = build_hss_from_dense(A, result.tree, opts, executor=ex)
        _assert_hss_equal(serial, parallel)

    def test_dense_builder_nonsymmetric_path(self, problem):
        result, operator, _ = problem
        rng = np.random.default_rng(0)
        A = rng.standard_normal((result.tree.n, result.tree.n))
        opts = HSSOptions(rel_tol=1e-2, symmetric=False, max_rank=24)
        serial = build_hss_from_dense(A, result.tree, opts)
        parallel = build_hss_from_dense(A, result.tree,
                                        opts.with_(workers=WORKERS))
        _assert_hss_equal(serial, parallel)

    def test_randomized_builder_exact_sampling(self, problem):
        result, operator, _ = problem
        opts = HSSOptions(rel_tol=1e-1)
        serial, s_stats = build_hss_randomized(operator, result.tree, opts,
                                               rng=0)
        with BlockExecutor(workers=WORKERS) as ex:
            parallel, p_stats = build_hss_randomized(operator, result.tree,
                                                     opts, rng=0, executor=ex)
        _assert_hss_equal(serial, parallel)
        assert s_stats.random_vectors == p_stats.random_vectors
        assert s_stats.rounds == p_stats.rounds

    def test_randomized_builder_hmatrix_sampling(self, problem):
        result, operator, _ = problem
        h_opts = HMatrixOptions(rel_tol=1e-3)
        hss_opts = HSSOptions(rel_tol=1e-1)

        def build(workers):
            with BlockExecutor(workers=workers) as ex:
                hm = build_hmatrix(operator, result.X, result.tree,
                                   options=h_opts, executor=ex)
                sampler = HMatrixSampler(hm, operator)
                hss, _ = build_hss_randomized(sampler, result.tree, hss_opts,
                                              rng=0, executor=ex)
            return hm, hss

        hm_serial, hss_serial = build(1)
        hm_parallel, hss_parallel = build(WORKERS)
        assert len(hm_serial.blocks) == len(hm_parallel.blocks)
        for ba, bb in zip(hm_serial.blocks, hm_parallel.blocks):
            assert ba.block_id == bb.block_id
            assert (ba.dense is None) == (bb.dense is None)
        assert np.array_equal(hm_serial.to_dense(), hm_parallel.to_dense())
        _assert_hss_equal(hss_serial, hss_parallel)

    def test_workers_option_matches_explicit_executor(self, problem):
        result, operator, _ = problem
        opts = HSSOptions(rel_tol=1e-1)
        via_option, _ = build_hss_randomized(operator, result.tree,
                                             opts.with_(workers=WORKERS), rng=0)
        serial, _ = build_hss_randomized(operator, result.tree, opts, rng=0)
        _assert_hss_equal(via_option, serial)


class TestULVDeterminism:
    def test_factor_and_solve(self, problem):
        result, operator, _ = problem
        opts = HSSOptions(rel_tol=1e-1)
        hss, _ = build_hss_randomized(operator, result.tree, opts, rng=0)
        serial = ULVFactorization(hss)
        with BlockExecutor(workers=WORKERS) as ex:
            parallel = ULVFactorization(hss, executor=ex)
            _assert_factors_equal(serial, parallel)
            rhs = np.random.default_rng(3).standard_normal((result.tree.n, 3))
            assert np.array_equal(serial.solve(rhs), parallel.solve(rhs))

    def test_solve_accuracy_unchanged(self, problem):
        result, operator, _ = problem
        opts = HSSOptions(rel_tol=1e-4)
        hss, _ = build_hss_randomized(operator, result.tree, opts, rng=0)
        with BlockExecutor(workers=WORKERS) as ex:
            ulv = ULVFactorization(hss, executor=ex)
            rhs = np.random.default_rng(4).standard_normal(result.tree.n)
            x = ulv.solve(rhs)
        K = GaussianKernel(h=1.0).matrix(result.X)
        K[np.diag_indices_from(K)] += 2.0
        assert np.linalg.norm(K @ x - rhs) / np.linalg.norm(rhs) < 1e-2


class TestPipelineDeterminism:
    def test_pipeline_reports_identical(self):
        X, y = susy_like(320, seed=9)
        X = standardize(X)
        X_train, y_train = X[:256], y[:256]
        X_test, y_test = X[256:], y[256:]

        reports = {}
        predictions = {}
        for workers in (1, WORKERS):
            pipe = KRRPipeline(h=1.0, lam=4.0, solver="hss", seed=0,
                               workers=workers)
            reports[workers] = pipe.run(X_train, y_train, X_test, y_test,
                                        dataset_name="susy")
            predictions[workers] = pipe.classifier_.predict(X_test)

        r1, r4 = reports[1], reports[WORKERS]
        assert r4.workers == WORKERS and r1.workers == 1
        assert r1.accuracy == r4.accuracy
        assert r1.memory_mb == r4.memory_mb
        assert r1.hss_memory_mb == r4.hss_memory_mb
        assert r1.hmatrix_memory_mb == r4.hmatrix_memory_mb
        assert r1.max_rank == r4.max_rank
        assert np.array_equal(predictions[1], predictions[WORKERS])

    def test_classifier_workers_knob(self, suite_workers):
        X, y = susy_like(256, seed=13)
        X = standardize(X)
        serial = KernelRidgeClassifier(h=1.0, lam=4.0, solver="hss", seed=0)
        threaded = KernelRidgeClassifier(h=1.0, lam=4.0, solver="hss", seed=0,
                                         workers=WORKERS)
        serial.fit(X, y)
        threaded.fit(X, y)
        assert threaded.solver_.report.workers == WORKERS
        # the default-configured classifier follows the suite's env leg
        assert serial.solver_.report.workers == suite_workers
        assert np.array_equal(serial.weights_, threaded.weights_)
        assert np.array_equal(serial.predict(X), threaded.predict(X))

    def test_suite_workers_leg_reaches_default_solvers(self, suite_workers):
        """The REPRO_WORKERS env leg flows into default-configured solvers."""
        X, y = susy_like(160, seed=3)
        X = standardize(X)
        clf = KernelRidgeClassifier(h=1.0, lam=4.0, solver="hss", seed=0)
        clf.fit(X, y)
        assert clf.solver_.report.workers == suite_workers

    def test_report_row_includes_memory_and_workers(self):
        X, y = susy_like(200, seed=1)
        X = standardize(X)
        pipe = KRRPipeline(h=1.0, lam=4.0, solver="hss", seed=0)
        report = pipe.run(X[:160], y[:160], X[160:], y[160:],
                          dataset_name="susy")
        row = report.row()
        assert row["hss_memory_mb"] == round(report.hss_memory_mb, 3)
        assert row["hmatrix_memory_mb"] == round(report.hmatrix_memory_mb, 3)
        assert row["workers"] == report.workers
        assert report.hss_memory_mb > 0
