"""Tests of the ``repro.server`` HTTP tier: router, app, hot-swap, 429s.

The daemon runs on a background thread per test (ephemeral port), and a
stdlib ``urllib``/``http.client`` client drives the real wire protocol —
no mocked transport.  The two headline regressions:

* a client hammering ``POST /v1/predict`` across a blue/green hot-swap
  sees **zero** failed requests, and the shared request trail shows a
  clean old→new revision boundary;
* past ``server.max_queue`` in-flight requests the server sheds load
  with ``429 Too Many Requests`` + ``Retry-After`` (and counts it in
  ``repro_server_rejected_total``) instead of queueing without bound.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from conftest import wait_until

from repro.datasets import gaussian_mixture
from repro.krr import KernelRidgeClassifier
from repro.obs import parse_prometheus
from repro.runtime import resolve_runtime_config
from repro.server import ModelNotServed, ModelRouter, ServerApp
from repro.serving import ModelStore

MODEL = "demo"


# --------------------------------------------------------------------- helpers
@pytest.fixture(scope="session")
def fitted():
    """One fitted classifier shared by every server test (training is the
    expensive part; stores and daemons are rebuilt per test)."""
    X, y = gaussian_mixture(n=192, d=4, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    return X, y, clf


@pytest.fixture
def store(tmp_path, fitted):
    _, _, clf = fitted
    s = ModelStore(str(tmp_path / "store"))
    s.save(clf, MODEL)
    return s


def _make_config(store, **extra):
    flags = {"serving.store": store.root, "serving.model": MODEL,
             "server.port": 0}
    flags.update(extra)
    return resolve_runtime_config(env={}, flags=flags)


@pytest.fixture
def server(store):
    """A live daemon on an ephemeral port; yields ``(app, base_url)``."""
    with _running_app(_make_config(store), store) as pair:
        yield pair


class _running_app:
    def __init__(self, config, store):
        self.app = ServerApp(config, store=store)
        self._ready = threading.Event()
        self._bound = {}

    def __enter__(self):
        def on_ready(host, port):
            self._bound["url"] = f"http://{host}:{port}"
            self._ready.set()

        self.thread = threading.Thread(target=self.app.run,
                                       kwargs={"ready": on_ready},
                                       daemon=True)
        self.thread.start()
        assert self._ready.wait(30.0), "server did not come up"
        return self.app, self._bound["url"]

    def __exit__(self, *exc_info):
        self.app.request_shutdown()
        self.thread.join(30.0)
        assert not self.thread.is_alive(), "server did not drain on shutdown"


def _get(url, timeout=10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8"), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8"), exc.headers


def _post(url, payload, timeout=30.0):
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


# ---------------------------------------------------------------- basic serve
def test_predict_matches_direct_model(server, fitted):
    X, _, clf = fitted
    app, url = server
    status, body, _ = _post(f"{url}/v1/predict",
                            {"inputs": X[:16].tolist()})
    assert status == 200
    assert body["model"] == MODEL
    assert body["version"] == 1
    assert body["count"] == 16
    # served-over-HTTP == in-process predict, bitwise
    assert np.array_equal(np.asarray(body["predictions"]),
                          clf.predict(X[:16]))


def test_single_row_and_named_model(server, fitted):
    X, _, clf = fitted
    _, url = server
    status, body, _ = _post(f"{url}/v1/predict",
                            {"inputs": X[0].tolist(), "model": MODEL})
    assert status == 200
    assert body["count"] == 1
    assert body["predictions"] == [clf.predict(X[:1])[0]]


def test_health_ready_index(server):
    app, url = server
    assert _get(f"{url}/healthz")[0] == 200
    status, text, _ = _get(f"{url}/readyz")
    assert status == 200
    assert json.loads(text)["models"] == [MODEL]
    status, text, _ = _get(f"{url}/")
    assert status == 200
    assert MODEL in json.loads(text)["models"]


def test_models_listing_and_status(server):
    _, url = server
    status, text, _ = _get(f"{url}/models")
    assert status == 200
    (entry,) = json.loads(text)["models"]
    assert entry["model"] == MODEL
    assert entry["status"] == "ready"
    assert entry["revision"] == 1
    assert entry["swap_available"] is False
    status, text, _ = _get(f"{url}/models/{MODEL}")
    assert status == 200
    assert json.loads(text)["revision"] == 1


def test_metrics_endpoint_parses(server, fitted):
    X, _, _ = fitted
    _, url = server
    _post(f"{url}/v1/predict", {"inputs": X[:4].tolist()})
    status, text, headers = _get(f"{url}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    samples = parse_prometheus(text)  # raises on malformed exposition
    for family in ("repro_server_predictions_total",
                   "repro_server_http_requests_total",
                   "repro_server_model_revision"):
        assert any(key.startswith(family) for key in samples), family


def test_keep_alive_reuses_one_connection(server, fitted):
    X, _, _ = fitted
    _, url = server
    host, port = url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10.0)
    try:
        for _ in range(3):
            conn.request("POST", "/v1/predict",
                         body=json.dumps({"inputs": X[:2].tolist()}),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 200
            json.loads(resp.read())  # must fully read to reuse the socket
    finally:
        conn.close()


# ------------------------------------------------------------------ hot-swap
def test_hot_swap_under_load_zero_failures(server, store, fitted):
    """The tentpole guarantee: a closed-loop client hammering predict
    across a re-save + swap never sees a failure, and the shared request
    trail shows a clean revision 1 → 2 boundary."""
    X, _, clf = fitted
    app, url = server
    failures = []
    served_versions = []
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            status, body, _ = _post(f"{url}/v1/predict",
                                    {"inputs": X[:2].tolist()})
            if status != 200:
                failures.append((status, body))
                return
            served_versions.append(body["version"])

    client = threading.Thread(target=hammer, daemon=True)
    client.start()
    # let traffic build on revision 1
    wait_until(lambda: len(served_versions) >= 5 or failures,
               message="no traffic reached revision 1")
    store.save(clf, MODEL, overwrite=True)  # publish revision 2
    status, body, _ = _post(f"{url}/models/{MODEL}/swap", {"wait": True})
    assert status == 200
    assert body == {"model": MODEL, "old_revision": 1, "new_revision": 2,
                    "swapped": True}
    # traffic on revision 2
    wait_until(lambda: failures or (served_versions
                                    and served_versions[-1] == 2),
               message="no traffic reached revision 2")
    stop.set()
    client.join(30.0)
    assert not client.is_alive()

    assert failures == []  # zero dropped / failed requests across the swap
    assert set(served_versions) == {1, 2}

    # The shared trail spans the swap: versions are non-decreasing with
    # exactly one boundary (the closed-loop client serializes requests).
    trail_versions = [r.model_version
                      for r in app.router.recent_requests(MODEL)
                      if r.model == MODEL]
    assert set(trail_versions) == {1, 2}
    assert trail_versions == sorted(trail_versions)
    boundary = trail_versions.index(2)
    assert all(v == 1 for v in trail_versions[:boundary])
    assert all(v == 2 for v in trail_versions[boundary:])


def test_swap_without_new_revision_is_noop(server):
    _, url = server
    status, body, _ = _post(f"{url}/models/{MODEL}/swap", {})
    assert status == 200
    assert body["swapped"] is False
    assert body["new_revision"] == body["old_revision"] == 1


def test_refit_bumps_revision_and_changes_lambda(server, store, fitted):
    X, _, clf = fitted
    _, url = server
    status, body, _ = _post(f"{url}/models/{MODEL}/refit", {"lam": 0.25})
    assert status == 200
    assert body["swapped"] is True
    assert body["new_revision"] == 2
    assert body["lam"] == 0.25
    assert store.record(MODEL).metadata["lambda"] == 0.25
    # served predictions now come from the refitted weights
    refitted = store.load(MODEL)
    status, out, _ = _post(f"{url}/v1/predict", {"inputs": X[:8].tolist()})
    assert status == 200
    assert out["version"] == 2
    assert np.array_equal(np.asarray(out["predictions"]),
                          refitted.predict(X[:8]))


def test_versions_endpoint_tracks_history(server, store, fitted):
    _, _, clf = fitted
    _, url = server
    store.save(clf, MODEL, overwrite=True)
    _post(f"{url}/models/{MODEL}/swap", {})
    status, text, _ = _get(f"{url}/models/{MODEL}/versions")
    assert status == 200
    entries = json.loads(text)["versions"]
    assert [e["revision"] for e in entries] == [1, 2]


# ----------------------------------------------------------------- admission
def test_admission_control_sheds_load_with_429(store, fitted):
    X, _, _ = fitted
    config = _make_config(store, **{"server.max_queue": 1})
    with _running_app(config, store) as (app, url):
        # Make each predict slow enough that a second request reliably
        # arrives while the first is still in flight.
        original = app.router.predict

        def slow_predict(name, Xq, timeout=None):
            time.sleep(0.8)
            return original(name, Xq, timeout)

        app.router.predict = slow_predict
        results = []

        def client():
            results.append(_post(f"{url}/v1/predict",
                                 {"inputs": X[:1].tolist()}))

        first = threading.Thread(target=client, daemon=True)
        first.start()
        # first request is now in flight (max_queue=1)
        wait_until(lambda: app._inflight >= 1,
                   message="first request never entered flight")
        status, body, headers = _post(f"{url}/v1/predict",
                                      {"inputs": X[:1].tolist()})
        assert status == 429
        assert "capacity" in body["error"]
        assert headers["Retry-After"] == "1"
        first.join(15.0)
        assert results[0][0] == 200  # the admitted request still succeeded

        # recovery: with the slot free again the next request is admitted
        status, _, _ = _post(f"{url}/v1/predict",
                             {"inputs": X[:1].tolist()})
        assert status == 200

        # the shed request is visible in the metrics
        _, text, _ = _get(f"{url}/metrics")
        rejected = [value for key, value in parse_prometheus(text).items()
                    if key.startswith("repro_server_rejected_total")]
        assert rejected and max(rejected) >= 1


# ------------------------------------------------------------ drain contract
def test_drain_flips_readyz_while_inflight_completes(store, fitted):
    """The graceful-drain contract: once shutdown is requested (SIGTERM /
    request_shutdown), ``/readyz`` reports 503 so load balancers stop
    routing, while every predict admitted *before* the drain began still
    completes successfully."""
    X, _, clf = fitted
    with _running_app(_make_config(store), store) as (app, url):
        host, port = url.removeprefix("http://").split(":")
        # A keep-alive connection opened before the drain: the listener
        # stops accepting new connections during shutdown, so this is the
        # vantage point from which the 503 readiness flip is observable.
        conn = http.client.HTTPConnection(host, int(port), timeout=10.0)
        conn.request("GET", "/healthz")
        resp = conn.getresponse()
        assert resp.status == 200
        resp.read()

        # Hold one admitted predict in flight until released.
        release = threading.Event()
        original = app.router.predict

        def gated_predict(name, Xq, timeout=None):
            assert release.wait(10.0), "gate never released"
            return original(name, Xq, timeout)

        app.router.predict = gated_predict
        results = []

        def client():
            results.append(_post(f"{url}/v1/predict",
                                 {"inputs": X[:2].tolist()}))

        inflight = threading.Thread(target=client, daemon=True)
        inflight.start()
        wait_until(lambda: app._inflight >= 1,
                   message="predict never entered flight")

        app.request_shutdown()  # same path as SIGTERM
        wait_until(lambda: app._shutting_down,
                   message="drain never began")

        # Readiness flips to 503 while the admitted request still runs.
        conn.request("GET", "/readyz")
        resp = conn.getresponse()
        body = json.loads(resp.read())
        conn.close()
        assert resp.status == 503
        assert body["status"] == "draining"
        assert app._inflight >= 1  # the admitted predict is still in flight

        # ... and that request completes successfully once unblocked.
        release.set()
        inflight.join(15.0)
        assert not inflight.is_alive()
        assert results and results[0][0] == 200
        assert np.array_equal(np.asarray(results[0][1]["predictions"]),
                              clf.predict(X[:2]))


# -------------------------------------------------------------- error paths
def test_http_error_statuses(server, fitted):
    X, _, _ = fitted
    app, url = server
    assert _get(f"{url}/no/such/route")[0] == 404
    assert _get(f"{url}/models/never-served")[0] == 404
    assert _get(f"{url}/v1/predict")[0] == 405  # GET on a POST route
    assert _post(f"{url}/v1/predict", b"{not json")[0] == 400
    assert _post(f"{url}/v1/predict", {"rows": []})[0] == 400
    assert _post(f"{url}/v1/predict", {"inputs": [["a", "b"]]})[0] == 400
    assert _post(f"{url}/models/{MODEL}/refit", {})[0] == 400
    assert _post(f"{url}/models/{MODEL}/refit", {"lam": "x"})[0] == 400
    too_many = np.zeros((app.max_batch + 1, X.shape[1]))
    assert _post(f"{url}/v1/predict",
                 {"inputs": too_many.tolist()})[0] == 413
    status, body, _ = _post(f"{url}/v1/predict",
                            {"inputs": X[:1].tolist(),
                             "model": "never-served"})
    assert status == 404


def test_malformed_request_line_gets_400(server):
    _, url = server
    host, port = url.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        sock.sendall(b"BOGUS\r\n\r\n")
        reply = sock.recv(4096)
    assert reply.startswith(b"HTTP/1.1 400 ")


# ------------------------------------------------------------- router direct
def test_router_unserved_name_raises(store):
    router = ModelRouter(store)
    with pytest.raises(ModelNotServed):
        router.predict("nope", np.zeros((1, 4)))
    router.close()


def test_router_serve_is_idempotent(store, fitted):
    X, _, clf = fitted
    router = ModelRouter(store)
    try:
        assert router.serve(MODEL) == 1
        assert router.serve(MODEL) == 1  # second serve keeps the generation
        assert np.array_equal(router.predict(MODEL, X[:4]),
                              clf.predict(X[:4]))
        assert router.active_revision(MODEL) == 1
    finally:
        router.close()
    assert router.names() == []


# ------------------------------------------------------------------- daemon
def test_cli_daemon_boots_serves_and_drains(store, fitted, tmp_path):
    """`repro serve` (no mode flag) boots the daemon, writes the bound
    address into repro_serve.json, answers predictions, and exits 0 on
    SIGTERM."""
    X, _, clf = fitted
    json_path = tmp_path / "repro_serve.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", store.root, "--model", MODEL, "--port", "0",
         "--json", str(json_path)],
        env=env, cwd=str(tmp_path),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        url = None
        deadline = time.time() + 60
        while time.time() < deadline and url is None:
            if proc.poll() is not None:
                out, err = proc.communicate()
                pytest.fail(f"daemon exited early ({proc.returncode}):\n"
                            f"{out}\n{err}")
            if json_path.exists():
                try:
                    url = json.load(open(json_path))["result"]["url"]
                except (ValueError, KeyError):
                    url = None  # torn read during the atomic replace
            time.sleep(0.1)
        assert url, "repro_serve.json never published the bound address"
        status, body, _ = _post(f"{url}/v1/predict",
                                {"inputs": X[:4].tolist()})
        assert status == 200
        assert np.array_equal(np.asarray(body["predictions"]),
                              clf.predict(X[:4]))
    finally:
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, f"non-zero exit:\n{out}\n{err}"
