"""Tests for the low-rank primitives: SVD helpers, RRQR, LowRank container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowrank import (LowRank, effective_rank, rank_from_tolerance, rrqr,
                           singular_values, truncated_svd)


def _lowrank_matrix(m, n, r, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    if noise:
        A += noise * rng.standard_normal((m, n))
    return A


class TestSingularValues:
    def test_sorted_nonincreasing(self):
        A = _lowrank_matrix(20, 15, 5, noise=0.01)
        s = singular_values(A)
        assert np.all(np.diff(s) <= 1e-12)

    def test_empty(self):
        assert singular_values(np.zeros((0, 5))).size == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            singular_values(np.zeros(5))


class TestTruncatedSVD:
    def test_exact_rank_recovery(self):
        A = _lowrank_matrix(30, 25, 4)
        U, s, Vt = truncated_svd(A, rel_tol=1e-10)
        assert s.size == 4
        np.testing.assert_allclose((U * s) @ Vt, A, atol=1e-8)

    def test_max_rank_cap(self):
        A = _lowrank_matrix(30, 25, 10)
        U, s, Vt = truncated_svd(A, max_rank=3)
        assert s.size == 3

    def test_abs_tol(self):
        A = np.diag([10.0, 1.0, 0.001])
        _, s, _ = truncated_svd(A, abs_tol=0.01)
        assert s.size == 2

    def test_empty_matrix(self):
        U, s, Vt = truncated_svd(np.zeros((0, 4)))
        assert U.shape == (0, 0) and s.size == 0 and Vt.shape == (0, 4)


class TestEffectiveRank:
    def test_matches_paper_definition(self):
        A = np.diag([1.0, 0.5, 0.02, 0.005])
        assert effective_rank(A, threshold=0.01) == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            effective_rank(np.eye(3), threshold=-0.1)


class TestRRQR:
    def test_reconstruction(self):
        A = _lowrank_matrix(40, 30, 6)
        Q, R, piv, rank = rrqr(A, rel_tol=1e-10)
        assert rank == 6
        np.testing.assert_allclose(Q @ R, A[:, piv], atol=1e-8)
        np.testing.assert_allclose(Q.T @ Q, np.eye(rank), atol=1e-10)

    def test_rank_cap(self):
        A = _lowrank_matrix(20, 20, 10)
        *_, rank = rrqr(A, max_rank=4)
        assert rank == 4

    def test_zero_matrix(self):
        Q, R, piv, rank = rrqr(np.zeros((5, 5)), rel_tol=1e-8)
        assert rank == 0

    def test_rank_from_tolerance(self):
        diag = np.array([5.0, 1.0, 0.1, 1e-6])
        assert rank_from_tolerance(diag, rel_tol=1e-3) == 3
        assert rank_from_tolerance(diag, rel_tol=0.0, abs_tol=0.5) == 2
        assert rank_from_tolerance(diag, rel_tol=0.0) == 4
        assert rank_from_tolerance(np.array([]), rel_tol=0.1) == 0


class TestLowRank:
    def test_basic_properties(self):
        U = np.random.default_rng(0).standard_normal((10, 3))
        V = np.random.default_rng(1).standard_normal((8, 3))
        lr = LowRank(U, V)
        assert lr.shape == (10, 8)
        assert lr.rank == 3
        assert lr.nbytes == U.nbytes + V.nbytes
        np.testing.assert_allclose(lr.to_dense(), U @ V.T)

    def test_matvec_and_rmatvec(self):
        rng = np.random.default_rng(2)
        lr = LowRank(rng.standard_normal((12, 4)), rng.standard_normal((9, 4)))
        x = rng.standard_normal(9)
        y = rng.standard_normal(12)
        np.testing.assert_allclose(lr.matvec(x), lr.to_dense() @ x, atol=1e-10)
        np.testing.assert_allclose(lr.rmatvec(y), lr.to_dense().T @ y, atol=1e-10)

    def test_transpose(self):
        rng = np.random.default_rng(3)
        lr = LowRank(rng.standard_normal((5, 2)), rng.standard_normal((7, 2)))
        np.testing.assert_allclose(lr.transpose().to_dense(), lr.to_dense().T)

    def test_addition_and_recompress(self):
        rng = np.random.default_rng(4)
        a = LowRank(rng.standard_normal((10, 2)), rng.standard_normal((10, 2)))
        b = LowRank(rng.standard_normal((10, 3)), rng.standard_normal((10, 3)))
        summed = a + b
        assert summed.rank == 5
        np.testing.assert_allclose(summed.to_dense(), a.to_dense() + b.to_dense(),
                                   atol=1e-10)
        recompressed = summed.recompress(rel_tol=1e-12)
        assert recompressed.rank <= 5
        np.testing.assert_allclose(recompressed.to_dense(), summed.to_dense(),
                                   atol=1e-8)

    def test_from_dense_and_zero(self):
        A = _lowrank_matrix(12, 9, 3)
        lr = LowRank.from_dense(A, rel_tol=1e-10)
        assert lr.rank == 3
        np.testing.assert_allclose(lr.to_dense(), A, atol=1e-8)
        z = LowRank.zero(4, 6)
        assert z.rank == 0
        np.testing.assert_allclose(z.to_dense(), np.zeros((4, 6)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LowRank(np.zeros((3, 2)), np.zeros((4, 3)))
        a = LowRank.zero(3, 3)
        b = LowRank.zero(4, 4)
        with pytest.raises(ValueError):
            _ = a + b

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(2, 15), n=st.integers(2, 15), r=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_property_recompress_preserves_product(self, m, n, r, seed):
        rng = np.random.default_rng(seed)
        lr = LowRank(rng.standard_normal((m, r)), rng.standard_normal((n, r)))
        rc = lr.recompress()
        np.testing.assert_allclose(rc.to_dense(), lr.to_dense(), atol=1e-8)
