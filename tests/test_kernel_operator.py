"""Tests for the partially matrix-free kernel operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (DenseMatrixOperator, GaussianKernel, KernelOperator,
                           ShiftedKernelOperator)


@pytest.fixture()
def operator_and_dense():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((60, 5))
    kernel = GaussianKernel(h=1.2)
    op = KernelOperator(X, kernel, block_size=17)
    return op, kernel.matrix(X)


class TestKernelOperator:
    def test_shape_and_diag(self, operator_and_dense):
        op, K = operator_and_dense
        assert op.shape == (60, 60)
        assert op.n == 60
        np.testing.assert_allclose(op.diag(), np.ones(60))

    def test_block_matches_dense(self, operator_and_dense):
        op, K = operator_and_dense
        rows = np.array([0, 10, 59])
        cols = np.array([3, 4, 5, 6])
        np.testing.assert_allclose(op.block(rows, cols), K[np.ix_(rows, cols)],
                                   atol=1e-12)
        assert op.element_evaluations == rows.size * cols.size

    def test_element(self, operator_and_dense):
        op, K = operator_and_dense
        assert op.element(7, 12) == pytest.approx(K[7, 12])

    def test_matvec_and_matmat(self, operator_and_dense):
        op, K = operator_and_dense
        rng = np.random.default_rng(0)
        v = rng.standard_normal(60)
        V = rng.standard_normal((60, 4))
        np.testing.assert_allclose(op.matvec(v), K @ v, atol=1e-10)
        np.testing.assert_allclose(op.matmat(V), K @ V, atol=1e-10)
        np.testing.assert_allclose(op.rmatmat(V), K.T @ V, atol=1e-10)
        assert op.matvec_sweeps >= 3

    def test_matvec_rejects_matrix_input(self, operator_and_dense):
        op, _ = operator_and_dense
        with pytest.raises(ValueError):
            op.matvec(np.zeros((60, 2)))

    def test_matmat_shape_check(self, operator_and_dense):
        op, _ = operator_and_dense
        with pytest.raises(ValueError):
            op.matmat(np.zeros((10, 2)))

    def test_to_dense(self, operator_and_dense):
        op, K = operator_and_dense
        np.testing.assert_allclose(op.to_dense(), K, atol=1e-12)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            KernelOperator(np.zeros((4, 2)), GaussianKernel(), block_size=0)


class TestShiftedKernelOperator:
    def test_diagonal_shift_in_blocks(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((30, 4))
        op = ShiftedKernelOperator(X, GaussianKernel(h=1.0), lam=2.5)
        K = GaussianKernel(h=1.0).matrix(X) + 2.5 * np.eye(30)
        rows = np.array([0, 5, 9])
        np.testing.assert_allclose(op.block(rows, rows), K[np.ix_(rows, rows)],
                                   atol=1e-12)
        # off-diagonal blocks must NOT receive the shift
        cols = np.array([10, 11])
        np.testing.assert_allclose(op.block(rows, cols), K[np.ix_(rows, cols)],
                                   atol=1e-12)

    def test_matmat_and_dense_include_shift(self):
        rng = np.random.default_rng(6)
        X = rng.standard_normal((25, 3))
        lam = 0.7
        op = ShiftedKernelOperator(X, GaussianKernel(h=0.8), lam=lam)
        K = GaussianKernel(h=0.8).matrix(X) + lam * np.eye(25)
        V = rng.standard_normal((25, 3))
        np.testing.assert_allclose(op.matmat(V), K @ V, atol=1e-10)
        np.testing.assert_allclose(op.to_dense(), K, atol=1e-12)
        np.testing.assert_allclose(op.diag(), np.ones(25) + lam)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            ShiftedKernelOperator(np.zeros((4, 2)), GaussianKernel(), lam=-1.0)


class TestDenseMatrixOperator:
    def test_wraps_matrix(self):
        rng = np.random.default_rng(8)
        A = rng.standard_normal((20, 20))
        op = DenseMatrixOperator(A)
        v = rng.standard_normal(20)
        np.testing.assert_allclose(op.matvec(v), A @ v)
        np.testing.assert_allclose(op.rmatvec(v), A.T @ v)
        rows = np.array([1, 2])
        cols = np.array([3, 4, 5])
        np.testing.assert_allclose(op.block(rows, cols), A[np.ix_(rows, cols)])
        np.testing.assert_allclose(op.diag(), np.diag(A))
        assert op.element(3, 4) == A[3, 4]
        assert op.shape == (20, 20)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DenseMatrixOperator(np.zeros((3, 4)))


class TestCounterThreadSafety:
    """The usage counters are updated from BlockExecutor worker threads
    during parallel block assembly; increments must not be lost."""

    def test_block_counter_exact_under_concurrency(self):
        from repro.parallel import BlockExecutor

        rng = np.random.default_rng(0)
        X = rng.standard_normal((64, 3))
        op = KernelOperator(X, GaussianKernel(h=1.0))
        rows = np.arange(8)
        cols = np.arange(8, 21)
        n_tasks = 400
        executor = BlockExecutor(workers=8, serial_threshold=0)
        executor.map(lambda _i: op.block(rows, cols), range(n_tasks))
        assert op.element_evaluations == n_tasks * rows.size * cols.size

    def test_matvec_counter_exact_under_concurrency(self):
        from repro.parallel import BlockExecutor

        rng = np.random.default_rng(1)
        X = rng.standard_normal((48, 3))
        op = ShiftedKernelOperator(X, GaussianKernel(h=1.0), lam=0.5,
                                   block_size=7)
        v = rng.standard_normal(48)
        n_tasks = 200
        executor = BlockExecutor(workers=8, serial_threshold=0)
        executor.map(lambda _i: op.matvec(v), range(n_tasks))
        assert op.matvec_sweeps == n_tasks

    def test_dense_operator_counters_under_concurrency(self):
        from repro.parallel import BlockExecutor

        rng = np.random.default_rng(2)
        A = rng.standard_normal((32, 32))
        op = DenseMatrixOperator(A)
        v = rng.standard_normal(32)
        rows = np.arange(4)
        cols = np.arange(4, 9)
        executor = BlockExecutor(workers=8, serial_threshold=0)
        executor.map(lambda _i: (op.matvec(v), op.block(rows, cols)), range(300))
        assert op.matvec_sweeps == 300
        assert op.element_evaluations == 300 * rows.size * cols.size
