"""Refit equivalence: compress once, refit many.

The compress-once/refit-many split promises that a λ-only ``refit`` is
*indistinguishable* from a cold fit at the same λ — bitwise for the serial
solvers (the λ-free compression is deterministic, and the shift is applied
identically at factor time either way), within the sharded tolerance for
the distributed path — while performing **zero** recompressions and, on a
warm :class:`repro.distributed.WorkerGrid`, zero process spawns.  These
tests pin every layer of that contract: solvers, classifiers/regressor,
pipeline, tuning objective, persistence (refit after artifact reload) and
the distributed grid, plus the tiled kernel-operator ``matmat`` satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.config import HSSOptions
from repro.datasets import gaussian_mixture
from repro.kernels import GaussianKernel, KernelOperator
from repro.krr import (KernelRidgeClassifier, KernelRidgeRegressor,
                       KRRPipeline, OneVsAllClassifier)
from repro.krr.solvers import CGSolver, DenseSolver, HSSSolver
from repro.parallel import BlockExecutor

LAMBDAS = (0.5, 2.0, 8.0)


@pytest.fixture(scope="module")
def data():
    X, y = gaussian_mixture(n=320, d=4, n_components=4, separation=3.0,
                            noise=0.8, seed=0)
    return X, y


@pytest.fixture(scope="module")
def test_data():
    X, y = gaussian_mixture(n=96, d=4, n_components=4, separation=3.0,
                            noise=0.8, seed=1)
    return X, y


def _cold_weights(X, y, lam, solver):
    clf = KernelRidgeClassifier(h=1.0, lam=lam, solver=solver, seed=0)
    clf.fit(X, y)
    return clf.weights_


# ---------------------------------------------------------------------------
# serial solvers: bitwise refit == cold fit
# ---------------------------------------------------------------------------

class TestSerialRefitEquivalence:
    @pytest.mark.parametrize("solver", ["hss", "dense"])
    def test_refit_sweep_bitwise_equals_cold_fits(self, data, solver):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver, seed=0)
        clf.fit(X, y)
        for lam in LAMBDAS:
            clf.refit(lam)
            np.testing.assert_array_equal(
                clf.weights_, _cold_weights(X, y, lam, solver),
                err_msg=f"{solver} refit at lam={lam} differs from cold fit")

    def test_hss_refit_performs_zero_recompressions(self, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        clf.fit(X, y)
        assert clf.solver_.compression_count == 1
        for lam in LAMBDAS:
            clf.refit(lam)
        assert clf.solver_.compression_count == 1
        assert clf.solver_.report.refits == len(LAMBDAS)
        assert clf.lam == LAMBDAS[-1]

    def test_refit_only_redoes_factorization_phases(self, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        clf.fit(X, y)
        clf.refit(4.0)
        timings = clf.solver_.report.timings
        assert "factorization" in timings and "solve" in timings
        assert all(not name.startswith(("hmatrix", "hss_"))
                   for name in timings), (
            f"refit re-ran compression phases: {sorted(timings)}")

    def test_cg_refit_matches_cold(self, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="cg", seed=0)
        clf.fit(X, y)
        clf.refit(3.0)
        np.testing.assert_array_equal(clf.weights_,
                                      _cold_weights(X, y, 3.0, "cg"))

    def test_regressor_refit_bitwise(self, data):
        X, _ = data
        rng = np.random.default_rng(5)
        y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(X.shape[0])
        reg = KernelRidgeRegressor(h=1.0, lam=1.0, solver="hss", seed=0)
        reg.fit(X, y)
        reg.refit(2.0)
        cold = KernelRidgeRegressor(h=1.0, lam=2.0, solver="hss", seed=0)
        cold.fit(X, y)
        np.testing.assert_array_equal(reg.weights_, cold.weights_)

    def test_multiclass_refit_bitwise_single_compression(self, data):
        X, y_bin = data
        y = (y_bin > 0).astype(int) + (X[:, 0] > 0).astype(int)
        ova = OneVsAllClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        ova.fit(X, y)
        ova.refit(2.0)
        assert ova.solver_.compression_count == 1
        cold = OneVsAllClassifier(h=1.0, lam=2.0, solver="hss", seed=0)
        cold.fit(X, y)
        np.testing.assert_array_equal(ova.weights_, cold.weights_)

    def test_unfitted_refit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            KernelRidgeClassifier(solver="hss").refit(1.0)
        with pytest.raises(RuntimeError, match="fitted"):
            HSSSolver().refit(1.0)

    def test_negative_lambda_rejected(self, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
        with pytest.raises(ValueError):
            clf.refit(-1.0)

    def test_legacy_baked_in_compression_refuses_refit(self, data):
        X, y = data
        # A pre-constructed HSSSolver pins the serial path even under the
        # CI REPRO_SHARDS=2 leg (the legacy flag lives on HSSSolver).
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=HSSSolver(seed=0),
                                    seed=0)
        clf.fit(X, y)
        clf.solver_._hss_lam_free = False  # simulate a legacy artifact
        with pytest.raises(RuntimeError, match="baked in"):
            clf.refit(2.0)


class TestPipelineRefit:
    def test_refit_report_matches_cold_run(self, data, test_data):
        X, y = data
        Xt, yt = test_data
        pipe = KRRPipeline(h=1.0, lam=1.0, solver="hss", seed=0)
        pipe.run(X, y, Xt, yt, dataset_name="mixture")
        report = pipe.refit(2.0, X_test=Xt, y_test=yt)
        cold = KRRPipeline(h=1.0, lam=2.0, solver="hss", seed=0)
        cold_report = cold.run(X, y, Xt, yt, dataset_name="mixture")
        assert report.lam == 2.0
        assert report.accuracy == cold_report.accuracy
        assert report.dataset == "mixture"
        np.testing.assert_array_equal(pipe.classifier_.weights_,
                                      cold.classifier_.weights_)

    def test_refit_before_run_raises(self):
        with pytest.raises(RuntimeError, match="run"):
            KRRPipeline().refit(1.0)


# ---------------------------------------------------------------------------
# persistence: refit after artifact reload
# ---------------------------------------------------------------------------

class TestRefitAfterReload:
    def test_hss_artifact_reload_then_refit_bitwise(self, tmp_path, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        clf.fit(X, y)
        clf.save(str(tmp_path / "model.npz"))
        loaded = KernelRidgeClassifier.load(str(tmp_path / "model.npz"))
        loaded.refit(2.0)
        np.testing.assert_array_equal(loaded.weights_,
                                      _cold_weights(X, y, 2.0, "hss"))
        # a refitted model re-saves consistently
        loaded.save(str(tmp_path / "model2.npz"))
        again = KernelRidgeClassifier.load(str(tmp_path / "model2.npz"))
        np.testing.assert_array_equal(again.weights_, loaded.weights_)
        assert again.lam == 2.0

    def test_dense_artifact_reload_then_refit(self, tmp_path, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0)
        clf.fit(X, y)
        clf.save(str(tmp_path / "dense.npz"))
        loaded = KernelRidgeClassifier.load(str(tmp_path / "dense.npz"))
        loaded.refit(2.0)
        np.testing.assert_array_equal(loaded.weights_,
                                      _cold_weights(X, y, 2.0, "dense"))

    def test_multiclass_artifact_reload_then_refit(self, tmp_path, data):
        X, y_bin = data
        y = (y_bin > 0).astype(int) + (X[:, 0] > 0).astype(int)
        ova = OneVsAllClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        ova.fit(X, y)
        ova.save(str(tmp_path / "ova.npz"))
        loaded = OneVsAllClassifier.load(str(tmp_path / "ova.npz"))
        loaded.refit(2.0)
        cold = OneVsAllClassifier(h=1.0, lam=2.0, solver="hss", seed=0)
        cold.fit(X, y)
        np.testing.assert_array_equal(loaded.weights_, cold.weights_)

    def test_artifact_without_targets_refuses_refit(self, tmp_path, data):
        X, y = data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        clf.fit(X, y)
        clf._y_perm = None  # simulate an old-version artifact
        clf.save(str(tmp_path / "old.npz"))
        loaded = KernelRidgeClassifier.load(str(tmp_path / "old.npz"))
        with pytest.raises(RuntimeError, match="older version"):
            loaded.refit(2.0)


# ---------------------------------------------------------------------------
# tuning objective: λ-only moves take the refit path
# ---------------------------------------------------------------------------

class TestTuningRefitPath:
    def test_dense_objective_counts_refits(self, data, test_data):
        from repro.tuning import KRRObjective
        X, y = data
        Xv, yv = test_data
        obj = KRRObjective(X, y, Xv, yv)
        obj({"h": 1.0, "lam": 0.5})
        obj({"h": 1.0, "lam": 2.0})   # λ-only move
        obj({"h": 2.0, "lam": 2.0})   # h move
        obj({"h": 2.0, "lam": 4.0})   # λ-only move
        assert obj.refits == 2
        assert obj.kernel_constructions == 2
        assert obj.last_was_refit

    def test_hss_objective_refits_match_cold_accuracy(self, data, test_data):
        from repro.tuning import KRRObjective
        X, y = data
        Xv, yv = test_data
        refitting = KRRObjective(X, y, Xv, yv, solver="hss", seed=0)
        cold = KRRObjective(X, y, Xv, yv, solver="hss", seed=0,
                            cache_kernels=False)
        for lam in LAMBDAS:
            config = {"h": 1.0, "lam": lam}
            assert refitting(config) == cold(config)
        assert refitting.refits == len(LAMBDAS) - 1
        assert refitting.kernel_constructions == 1
        assert cold.refits == 0

    def test_grid_search_rides_refit_path(self, data, test_data):
        from repro.tuning import GridSearch, KRRObjective, ParameterSpace
        X, y = data
        Xv, yv = test_data
        obj = KRRObjective(X, y, Xv, yv)
        space = ParameterSpace.krr_default(h_bounds=(0.5, 2.0),
                                           lam_bounds=(0.5, 4.0))
        result = GridSearch(space, points_per_dim=4).optimize(obj)
        # 4 h-columns of 4 λ values each: one build + three refits per column
        assert result.evaluations == 16
        assert result.refits == 12
        assert obj.kernel_constructions == 4

    def test_random_search_lam_sweep_rides_refit_path(self, data, test_data):
        from repro.tuning import KRRObjective, ParameterSpace, RandomSearch
        X, y = data
        Xv, yv = test_data
        obj = KRRObjective(X, y, Xv, yv)
        space = ParameterSpace.krr_default()
        result = RandomSearch(space, budget=12, seed=0,
                              lam_sweep=4).optimize(obj)
        assert result.evaluations == 12
        assert result.refits == 9  # 3 groups x 3 λ-only follow-ups
        assert obj.kernel_constructions == 3

    def test_bandit_lambda_technique_produces_refits(self, data, test_data):
        from repro.tuning import BanditTuner, KRRObjective, ParameterSpace
        X, y = data
        Xv, yv = test_data
        # cache_size 6 = one slot per technique-rotation step, so the
        # λ-perturb technique's incumbent stays resident between picks.
        obj = KRRObjective(X, y, Xv, yv, cache_size=6)
        space = ParameterSpace.krr_default(h_bounds=(0.5, 2.0),
                                           lam_bounds=(0.5, 4.0))
        tuner = BanditTuner(space, budget=30, seed=0)
        result = tuner.optimize(obj)
        assert "lam_perturb" in tuner.technique_usage_
        assert result.refits == obj.refits
        assert result.refits >= 1

    def test_order_lam_fastest_groups_non_lam_params(self):
        from repro.tuning import order_lam_fastest
        configs = [{"h": 1.0, "lam": 1.0}, {"h": 2.0, "lam": 1.0},
                   {"h": 1.0, "lam": 2.0}, {"h": 2.0, "lam": 2.0}]
        ordered = order_lam_fastest(configs)
        assert [c["h"] for c in ordered] == [1.0, 1.0, 2.0, 2.0]
        # already-grouped input (lam fastest) comes back unchanged
        grouped = [{"h": 1.0, "lam": 1.0}, {"h": 1.0, "lam": 2.0},
                   {"h": 2.0, "lam": 1.0}, {"h": 2.0, "lam": 2.0}]
        assert order_lam_fastest(grouped) == grouped


# ---------------------------------------------------------------------------
# satellite: tiled kernel-operator matmat
# ---------------------------------------------------------------------------

class TestTiledMatmat:
    def _operator(self, **kwargs):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((230, 5))
        return KernelOperator(X, GaussianKernel(h=1.1), **kwargs), rng

    def test_tiled_bitwise_deterministic_across_worker_counts(self):
        op_serial, rng = self._operator(col_tile=48, block_size=64)
        V = rng.standard_normal((230, 6))
        serial = op_serial.matmat(V)
        for workers in (2, 4):
            with BlockExecutor(workers=workers, serial_threshold=0) as ex:
                op = KernelOperator(op_serial.X, op_serial.kernel,
                                    block_size=64, col_tile=48, executor=ex)
                np.testing.assert_array_equal(op.matmat(V), serial)

    def test_tiled_matches_untiled_path(self):
        op_tiled, rng = self._operator(col_tile=48)
        op_untiled = KernelOperator(op_tiled.X, op_tiled.kernel)
        V = rng.standard_normal((230, 4))
        np.testing.assert_allclose(op_tiled.matmat(V), op_untiled.matmat(V),
                                   rtol=1e-12, atol=1e-12)

    def test_exact_sampling_training_uses_tiles_and_stays_deterministic(self, data):
        X, y = data
        weights = {}
        for workers in (1, 2):
            solver = HSSSolver(hss_options=HSSOptions(rel_tol=1e-6),
                               use_hmatrix_sampling=False, seed=0,
                               workers=workers, matmat_col_tile=64)
            clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver, seed=0)
            clf.fit(X, y)
            weights[workers] = clf.weights_
        np.testing.assert_array_equal(weights[1], weights[2])

    def test_invalid_col_tile(self):
        with pytest.raises(ValueError):
            KernelOperator(np.zeros((4, 2)), GaussianKernel(), col_tile=0)
