"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.datasets import gas_like, susy_like
from repro.kernels import GaussianKernel


@pytest.fixture(scope="session")
def rng():
    """A session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_gas():
    """A small GAS-like dataset (n=256, d=128) with ±1 labels."""
    X, y = gas_like(256, seed=7)
    return X, y


@pytest.fixture(scope="session")
def small_susy():
    """A small SUSY-like dataset (n=256, d=8) with ±1 labels."""
    X, y = susy_like(256, seed=11)
    return X, y


@pytest.fixture(scope="session")
def clustered_kernel_matrix(small_susy):
    """A kernel matrix (permuted by 2MN clustering) plus its cluster tree."""
    X, _ = small_susy
    result = cluster(X, method="two_means", leaf_size=16, seed=3)
    kernel = GaussianKernel(h=1.0)
    K = kernel.matrix(result.X)
    K[np.diag_indices_from(K)] += 1.0  # ridge shift keeps it well conditioned
    return K, result
