"""Shared pytest fixtures and timing helpers for the test suite."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.clustering import cluster
from repro.datasets import gas_like, susy_like
from repro.kernels import GaussianKernel
from repro.parallel import resolve_workers

#: Worker-thread count of the current suite run.  ``REPRO_WORKERS`` is
#: consumed both here (for tests that look at the suite's worker count) and
#: by :func:`repro.parallel.resolve_workers`, which makes every
#: default-configured solver/pipeline in the suite run its threaded paths
#: when the variable is set (the CI matrix sets ``REPRO_WORKERS=2``).
SUITE_WORKERS = resolve_workers(None)


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
               message: str = "condition not met in time"):
    """Poll ``predicate`` until it is truthy or ``timeout`` elapses.

    The suite's replacement for fixed ``time.sleep(...)`` synchronization:
    it returns as soon as the condition holds (fast on quick machines) and
    only fails after a generous deadline (robust on slow / loaded CI), so
    timing-dependent tests neither flake nor waste wall-clock.

    Parameters
    ----------
    predicate:
        Zero-argument callable; its last return value is also returned.
    timeout:
        Seconds before giving up and asserting.
    interval:
        Seconds between polls.
    message:
        Assertion message on timeout.

    Returns
    -------
    The first truthy value the predicate produced.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"{message} (after {timeout:.1f}s)")
        time.sleep(interval)


@pytest.fixture(scope="session")
def suite_workers() -> int:
    """Worker-thread count the suite is running with (1 = serial leg)."""
    return SUITE_WORKERS


@pytest.fixture(scope="session")
def rng():
    """A session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_gas():
    """A small GAS-like dataset (n=256, d=128) with ±1 labels."""
    X, y = gas_like(256, seed=7)
    return X, y


@pytest.fixture(scope="session")
def small_susy():
    """A small SUSY-like dataset (n=256, d=8) with ±1 labels."""
    X, y = susy_like(256, seed=11)
    return X, y


@pytest.fixture(scope="session")
def clustered_kernel_matrix(small_susy):
    """A kernel matrix (permuted by 2MN clustering) plus its cluster tree."""
    X, _ = small_susy
    result = cluster(X, method="two_means", leaf_size=16, seed=3)
    kernel = GaussianKernel(h=1.0)
    K = kernel.matrix(result.X)
    K[np.diag_indices_from(K)] += 1.0  # ridge shift keeps it well conditioned
    return K, result
