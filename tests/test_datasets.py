"""Tests for the synthetic dataset generators, normalization and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (DATASET_DIMENSIONS, DatasetBundle, Standardizer,
                            concentric_spheres, clustered_manifold,
                            dataset_names, gaussian_mixture, load_dataset,
                            minmax_scale, standardize, train_test_split,
                            train_val_test_split, two_spirals)
from repro.datasets.registry import PAPER_HYPERPARAMETERS
from repro.datasets.uci_like import (covtype_like, gas_like, hepmass_like,
                                     letter_like, mnist_like, pen_like,
                                     susy_like)


class TestSyntheticPrimitives:
    def test_gaussian_mixture_shapes_and_labels(self):
        X, y = gaussian_mixture(200, 5, n_components=4, seed=0)
        assert X.shape == (200, 5)
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_gaussian_mixture_weights_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, n_components=2, weights=np.array([0.5]))

    def test_clustered_manifold_cluster_ids(self):
        X, ids = clustered_manifold(300, 10, n_clusters=5, seed=1)
        assert X.shape == (300, 10)
        assert ids.max() < 5
        # every cluster should get some points at this size
        assert len(np.unique(ids)) == 5

    def test_clustered_manifold_is_clustered(self):
        X, ids = clustered_manifold(400, 8, n_clusters=4, separation=6.0,
                                    noise=0.2, seed=2)
        # within-cluster spread should be much smaller than between-cluster
        centroids = np.array([X[ids == c].mean(axis=0) for c in range(4)])
        within = np.mean([X[ids == c].std() for c in range(4)])
        between = np.linalg.norm(centroids[0] - centroids[1])
        assert between > 2 * within

    def test_two_spirals_and_spheres(self):
        X, y = two_spirals(100, seed=3)
        assert X.shape == (100, 2)
        assert set(np.unique(y)) == {-1.0, 1.0}
        X2, y2 = concentric_spheres(100, d=4, seed=4)
        assert X2.shape == (100, 4)
        assert set(np.unique(y2)) == {-1.0, 1.0}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            gaussian_mixture(0, 3)
        with pytest.raises(ValueError):
            clustered_manifold(10, 0)
        with pytest.raises(ValueError):
            two_spirals(1)


class TestUCILikeGenerators:
    @pytest.mark.parametrize("gen,name", [
        (susy_like, "susy"), (hepmass_like, "hepmass"), (covtype_like, "covtype"),
        (gas_like, "gas"), (letter_like, "letter"), (pen_like, "pen"),
    ])
    def test_dimensions_match_paper(self, gen, name):
        X, y = gen(128, seed=0)
        assert X.shape == (128, DATASET_DIMENSIONS[name])
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_mnist_dimension_and_reduction(self):
        X, y = mnist_like(64, seed=0)
        assert X.shape[1] == 784
        X2, _ = mnist_like(64, seed=0, ambient_dim=100)
        assert X2.shape[1] == 100

    def test_one_vs_all_labels_are_minority(self):
        # One-vs-all labels: the positive class is a strict minority.
        for gen in (letter_like, pen_like, covtype_like, gas_like):
            _, y = gen(1000, seed=1)
            positive_fraction = np.mean(y == 1.0)
            assert 0.0 < positive_fraction < 0.5

    def test_reproducibility(self):
        X1, y1 = susy_like(100, seed=42)
        X2, y2 = susy_like(100, seed=42)
        np.testing.assert_allclose(X1, X2)
        np.testing.assert_array_equal(y1, y2)


class TestNormalization:
    def test_standardize_train_statistics(self):
        rng = np.random.default_rng(0)
        X_train = rng.normal(5.0, 3.0, size=(500, 4))
        X_test = rng.normal(5.0, 3.0, size=(100, 4))
        Xt, Xe = standardize(X_train, X_test)
        np.testing.assert_allclose(Xt.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Xt.std(axis=0), 1.0, atol=1e-10)
        # test set is scaled with TRAIN statistics, so only approximately normal
        assert np.all(np.abs(Xe.mean(axis=0)) < 0.5)

    def test_standardize_single_argument(self):
        X = np.random.default_rng(1).normal(size=(50, 3)) * 10 + 2
        Xs = standardize(X)
        np.testing.assert_allclose(Xs.mean(axis=0), 0.0, atol=1e-10)

    def test_standardizer_constant_column(self):
        X = np.column_stack([np.ones(20), np.arange(20, dtype=float)])
        Xs = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        np.testing.assert_allclose(Xs[:, 0], 0.0)

    def test_standardizer_errors(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((3, 2)))
        s = Standardizer().fit(np.random.default_rng(2).normal(size=(10, 3)))
        with pytest.raises(ValueError):
            s.transform(np.zeros((5, 4)))

    def test_minmax_scale(self):
        X = np.random.default_rng(3).uniform(-10, 10, size=(100, 3))
        Xs = minmax_scale(X)
        assert np.abs(Xs).max() <= 1.0 + 1e-12


class TestSplits:
    def test_train_test_split_sizes(self):
        X = np.arange(100)[:, None].astype(float)
        y = np.arange(100, dtype=float)
        X_tr, y_tr, X_te, y_te = train_test_split(X, y, test_fraction=0.2, seed=0)
        assert X_te.shape[0] == 20 and X_tr.shape[0] == 80
        # consistency between X and y
        np.testing.assert_allclose(X_tr.ravel(), y_tr)
        # no overlap
        assert set(y_tr).isdisjoint(set(y_te))

    def test_train_val_test_split(self):
        X = np.arange(200)[:, None].astype(float)
        y = np.arange(200, dtype=float)
        parts = train_val_test_split(X, y, val_fraction=0.1, test_fraction=0.2,
                                     seed=1)
        X_tr, y_tr, X_val, y_val, X_te, y_te = parts
        assert X_val.shape[0] == 20 and X_te.shape[0] == 40
        assert X_tr.shape[0] == 140
        all_targets = np.concatenate([y_tr, y_val, y_te])
        assert len(np.unique(all_targets)) == 200

    def test_invalid_fractions(self):
        X = np.zeros((10, 2))
        y = np.zeros(10)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_val_test_split(X, y, val_fraction=0.6, test_fraction=0.6)


class TestRegistry:
    def test_dataset_names_cover_paper(self):
        names = dataset_names()
        for expected in ("susy", "letter", "pen", "hepmass", "covtype", "gas",
                         "mnist"):
            assert expected in names
            assert expected in PAPER_HYPERPARAMETERS

    def test_load_dataset_bundle(self):
        data = load_dataset("gas", n_train=200, n_test=50, seed=0)
        assert isinstance(data, DatasetBundle)
        assert data.n_train == 200 and data.n_test == 50
        assert data.dim == DATASET_DIMENSIONS["gas"]
        assert data.h == PAPER_HYPERPARAMETERS["gas"][0]
        # standardized with train statistics
        np.testing.assert_allclose(data.X_train.mean(axis=0), 0.0, atol=1e-8)

    def test_load_dataset_no_normalization(self):
        data = load_dataset("susy", n_train=100, n_test=20, seed=0, normalize=False)
        assert abs(data.X_train.mean()) > 1e-6 or data.X_train.std() != 1.0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("cifar")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            load_dataset("susy", n_train=1, n_test=1)

    def test_train_test_same_distribution(self):
        data = load_dataset("pen", n_train=400, n_test=200, seed=5)
        # Means of train and test should agree within sampling error because
        # they come from the same generated pool.
        diff = np.abs(data.X_train.mean(axis=0) - data.X_test.mean(axis=0))
        assert np.median(diff) < 0.5
