"""Tests for HSS matrix-vector products and reconstruction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import cluster
from repro.config import HSSOptions
from repro.hss import build_hss_from_dense
from repro.kernels import GaussianKernel


def _hss_and_dense(n=160, h=1.0, lam=1.5, seed=0, rel_tol=1e-8, leaf_size=16):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((5, 4)) * 4.0
    X = centers[rng.integers(5, size=n)] + 0.4 * rng.standard_normal((n, 4))
    result = cluster(X, method="two_means", leaf_size=leaf_size, seed=seed)
    K = GaussianKernel(h=h).matrix(result.X) + lam * np.eye(n)
    hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=rel_tol))
    return hss, K


class TestMatvec:
    def test_single_vector(self):
        hss, K = _hss_and_dense()
        x = np.random.default_rng(1).standard_normal(K.shape[0])
        np.testing.assert_allclose(hss.matvec(x), K @ x,
                                   atol=1e-6 * np.linalg.norm(K @ x))

    def test_multiple_rhs(self):
        hss, K = _hss_and_dense(seed=2)
        X = np.random.default_rng(3).standard_normal((K.shape[0], 5))
        np.testing.assert_allclose(hss.matvec(X), K @ X,
                                   atol=1e-6 * np.linalg.norm(K @ X))

    def test_transpose_matvec(self):
        hss, K = _hss_and_dense(seed=4)
        x = np.random.default_rng(5).standard_normal(K.shape[0])
        np.testing.assert_allclose(hss.rmatvec(x), K.T @ x,
                                   atol=1e-6 * np.linalg.norm(K @ x))

    def test_shape_mismatch(self):
        hss, _ = _hss_and_dense(n=96, seed=6)
        with pytest.raises(ValueError):
            hss.matvec(np.zeros(10))

    def test_zero_vector(self):
        hss, _ = _hss_and_dense(n=96, seed=7)
        np.testing.assert_allclose(hss.matvec(np.zeros(96)), np.zeros(96))

    def test_linearity(self):
        hss, _ = _hss_and_dense(n=128, seed=8)
        rng = np.random.default_rng(9)
        x, y = rng.standard_normal(128), rng.standard_normal(128)
        a, b = 2.5, -1.25
        np.testing.assert_allclose(hss.matvec(a * x + b * y),
                                   a * hss.matvec(x) + b * hss.matvec(y),
                                   atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100), nrhs=st.integers(1, 4))
    def test_property_matvec_matches_reconstruction(self, seed, nrhs):
        hss, _ = _hss_and_dense(n=96, seed=seed % 5, rel_tol=1e-6)
        dense = hss.to_dense()
        X = np.random.default_rng(seed).standard_normal((96, nrhs))
        np.testing.assert_allclose(hss.matvec(X), dense @ X, atol=1e-8)


class TestFullBases:
    def test_bases_orthonormal_columns_not_required_but_consistent(self):
        hss, K = _hss_and_dense(n=128, seed=10, rel_tol=1e-7)
        bases = hss.full_bases()
        tree = hss.tree
        scale = np.linalg.norm(K)
        # For every non-root node the off-diagonal block must be captured by
        # its full row basis: A(I_i, I_i^c) == U_i @ (U_i^+ A(I_i, I_i^c)).
        # The error is measured against the norm of the whole matrix because
        # blocks between far-apart clusters are (correctly) compressed to
        # near-zero rank even though their own norm is not exactly zero.
        for node_id in tree.postorder():
            if node_id == tree.root:
                continue
            nd = tree.node(node_id)
            rows = np.arange(nd.start, nd.stop)
            comp = np.setdiff1d(np.arange(tree.n), rows)
            block = K[np.ix_(rows, comp)]
            U = bases[node_id]["U"]
            if U.shape[1] == 0:
                assert np.linalg.norm(block) < 1e-5 * scale
                continue
            proj = U @ np.linalg.lstsq(U, block, rcond=None)[0]
            assert np.linalg.norm(proj - block) < 1e-5 * scale
