"""Tests for the KRR solvers, classifier, regressor and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HSSOptions
from repro.datasets import gaussian_mixture, load_dataset
from repro.kernels import GaussianKernel
from repro.krr import (CGSolver, DenseSolver, HSSSolver, KernelRidgeClassifier,
                       KernelRidgeRegressor, accuracy, confusion_matrix,
                       error_rate, make_solver)
from repro.clustering import cluster


def _binary_data(n=300, d=4, seed=0):
    return gaussian_mixture(n, d, n_components=4, separation=4.0, noise=0.7,
                            seed=seed)


class TestMetrics:
    def test_accuracy_and_error_rate(self):
        y = np.array([1, -1, 1, 1])
        p = np.array([1, 1, 1, -1])
        assert accuracy(y, p) == pytest.approx(0.5)
        assert error_rate(y, p) == pytest.approx(0.5)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(3), np.ones(4))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(0), np.zeros(0))

    def test_confusion_matrix(self):
        y = np.array([1, 1, -1, -1])
        p = np.array([1, -1, -1, -1])
        M, labels = confusion_matrix(y, p)
        assert M.sum() == 4
        assert labels.tolist() == [-1, 1]
        assert M[1, 1] == 1 and M[1, 0] == 1 and M[0, 0] == 2


class TestSolvers:
    def test_dense_hss_cg_agree(self):
        X, y = _binary_data(n=256, seed=1)
        result = cluster(X, method="two_means", leaf_size=16, seed=0)
        Xp = result.X
        yp = result.permute_labels(y)
        kernel = GaussianKernel(h=1.5)
        lam = 2.0
        K = kernel.matrix(Xp) + lam * np.eye(Xp.shape[0])
        w_ref = np.linalg.solve(K, yp)

        dense = DenseSolver().fit(Xp, result.tree, kernel, lam)
        w_dense = dense.solve(yp)
        np.testing.assert_allclose(w_dense, w_ref, atol=1e-8 * np.linalg.norm(w_ref))

        hss = HSSSolver(hss_options=HSSOptions(rel_tol=1e-6),
                        use_hmatrix_sampling=False, seed=0)
        hss.fit(Xp, result.tree, kernel, lam)
        w_hss = hss.solve(yp)
        rel = np.linalg.norm(w_hss - w_ref) / np.linalg.norm(w_ref)
        assert rel < 1e-3

        cg = CGSolver(tol=1e-10).fit(Xp, result.tree, kernel, lam)
        w_cg = cg.solve(yp)
        rel_cg = np.linalg.norm(w_cg - w_ref) / np.linalg.norm(w_ref)
        assert rel_cg < 1e-5
        assert cg.report.iterations > 0

    def test_hss_solver_requires_tree(self):
        X, _ = _binary_data(n=64, seed=2)
        with pytest.raises(ValueError, match="cluster tree"):
            HSSSolver(use_hmatrix_sampling=False).fit(X, None, GaussianKernel(), 1.0)

    def test_solver_reports(self):
        X, y = _binary_data(n=200, seed=3)
        result = cluster(X, method="two_means", leaf_size=16, seed=0)
        solver = HSSSolver(use_hmatrix_sampling=True, seed=0)
        solver.fit(result.X, result.tree, GaussianKernel(h=1.5), 2.0)
        solver.solve(result.permute_labels(y))
        rep = solver.report
        assert rep.solver == "hss"
        assert rep.memory_mb > 0
        assert rep.hss_memory_mb > 0
        assert rep.hmatrix_memory_mb > 0
        assert rep.max_rank > 0
        assert rep.phase("factorization") > 0
        assert rep.phase("solve") > 0
        assert rep.phase("h_construction") > 0
        assert rep.total_time > 0

    def test_make_solver(self):
        assert isinstance(make_solver("dense"), DenseSolver)
        assert isinstance(make_solver("hss"), HSSSolver)
        assert isinstance(make_solver("cg"), CGSolver)
        with pytest.raises(ValueError):
            make_solver("quantum")

    def test_solve_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DenseSolver().solve(np.ones(5))


class TestClassifier:
    def test_fit_predict_high_accuracy_on_separable_data(self):
        X, y = _binary_data(n=400, seed=4)
        clf = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense",
                                    clustering="two_means", seed=0)
        clf.fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_hss_classifier_matches_dense(self):
        X, y = _binary_data(n=300, seed=5)
        X_test, y_test = _binary_data(n=100, seed=6)
        dense = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense", seed=0).fit(X, y)
        hss = KernelRidgeClassifier(h=1.5, lam=1.0, solver="hss", seed=0,
                                    solver_options={"use_hmatrix_sampling": False}
                                    ).fit(X, y)
        agree = np.mean(dense.predict(X_test) == hss.predict(X_test))
        assert agree > 0.97

    def test_decision_function_sign_consistency(self):
        X, y = _binary_data(n=200, seed=7)
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
        scores = clf.decision_function(X[:50])
        preds = clf.predict(X[:50])
        np.testing.assert_array_equal(np.where(scores >= 0, 1.0, -1.0), preds)

    def test_invalid_labels_rejected(self):
        X, _ = _binary_data(n=50, seed=8)
        with pytest.raises(ValueError):
            KernelRidgeClassifier(solver="dense").fit(X, np.zeros(50))

    def test_mismatched_sizes_rejected(self):
        X, y = _binary_data(n=50, seed=9)
        with pytest.raises(ValueError):
            KernelRidgeClassifier(solver="dense").fit(X, y[:-1])

    def test_predict_before_fit_raises(self):
        clf = KernelRidgeClassifier()
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((3, 2)))

    def test_dimension_mismatch_at_predict(self):
        X, y = _binary_data(n=60, seed=10)
        clf = KernelRidgeClassifier(solver="dense").fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.zeros((5, X.shape[1] + 1)))

    def test_report_accessible_after_fit(self):
        X, y = _binary_data(n=100, seed=11)
        clf = KernelRidgeClassifier(solver="dense").fit(X, y)
        assert clf.report.solver == "dense"
        with pytest.raises(RuntimeError):
            KernelRidgeClassifier().report

    def test_clustering_choice_does_not_change_accuracy(self):
        # The paper's Table 2 claim: accuracy is independent of the ordering.
        data = load_dataset("pen", n_train=384, n_test=128, seed=3)
        accs = []
        for method in ("natural", "kd", "pca", "two_means"):
            clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                        clustering=method, seed=0,
                                        solver_options={"use_hmatrix_sampling": False})
            clf.fit(data.X_train, data.y_train)
            accs.append(clf.score(data.X_test, data.y_test))
        assert max(accs) - min(accs) < 0.05


class TestRegressor:
    def test_recovers_smooth_function(self):
        rng = np.random.default_rng(12)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0]) + 0.5 * np.cos(2 * X[:, 1])
        reg = KernelRidgeRegressor(h=0.8, lam=1e-3, solver="dense").fit(X, y)
        X_test = rng.uniform(-2, 2, size=(100, 2))
        y_test = np.sin(X_test[:, 0]) + 0.5 * np.cos(2 * X_test[:, 1])
        assert reg.score(X_test, y_test) > 0.95

    def test_hss_regressor_close_to_dense(self):
        rng = np.random.default_rng(13)
        X = rng.uniform(-2, 2, size=(256, 2))
        y = np.sin(2 * X[:, 0]) * np.cos(X[:, 1])
        dense = KernelRidgeRegressor(h=0.8, lam=1e-2, solver="dense").fit(X, y)
        # Regression needs more digits than classification (no sign
        # robustness), so tighten the compression tolerance below the paper's
        # classification setting of 0.1.
        hss = KernelRidgeRegressor(h=0.8, lam=1e-2, solver="hss", seed=0,
                                   solver_options={
                                       "use_hmatrix_sampling": False,
                                       "hss_options": HSSOptions(rel_tol=1e-8),
                                   }).fit(X, y)
        X_test = rng.uniform(-2, 2, size=(64, 2))
        np.testing.assert_allclose(hss.predict(X_test), dense.predict(X_test),
                                   atol=0.05)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelRidgeRegressor().predict(np.zeros((2, 2)))

    def test_report(self):
        rng = np.random.default_rng(14)
        X = rng.standard_normal((80, 3))
        y = X[:, 0]
        reg = KernelRidgeRegressor(h=1.0, lam=0.1, solver="dense").fit(X, y)
        assert reg.report.solver == "dense"
