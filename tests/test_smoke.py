"""End-to-end smoke tests: the public API does what the quickstart promises."""

from __future__ import annotations

import numpy as np

import repro
from repro.datasets import load_dataset
from repro.krr import KernelRidgeClassifier


def test_version_string():
    assert repro.__version__


def test_quickstart_hss_classifier():
    data = load_dataset("gas", n_train=384, n_test=96, seed=0)
    clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                clustering="two_means", seed=0)
    clf.fit(data.X_train, data.y_train)
    acc = clf.score(data.X_test, data.y_test)
    assert acc > 0.8


def test_dense_and_hss_agree_on_predictions():
    data = load_dataset("pen", n_train=256, n_test=64, seed=1)
    dense = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="dense",
                                  clustering="two_means", seed=0)
    hss = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                clustering="two_means", seed=0)
    dense.fit(data.X_train, data.y_train)
    hss.fit(data.X_train, data.y_train)
    pred_dense = dense.predict(data.X_test)
    pred_hss = hss.predict(data.X_test)
    # Compressed and exact solvers must agree on almost all test labels
    # (the paper's Table 2 claim: accuracy matches the full kernel matrix).
    agreement = np.mean(pred_dense == pred_hss)
    assert agreement > 0.95
