"""The (h, λ) tuning fabric: recompression, batched factorization, CV.

Pins the contracts of ``docs/tuning.md``:

* ``CompressedKernel.recompress(kernel)`` is **bitwise identical** to a
  cold ``compress_kernel`` on the same tree — serially, with
  ``shards = 2`` (the coordinator's ``recompress`` round), and through
  the cold-compress fallback after an artifact reload;
* ``ULVFactorization.factor_many`` is bitwise identical per shift to
  sequential ``factor`` calls, and ``HSSSolver.prefactor`` hands those
  factorizations to later refits unchanged;
* ``KRRObjective(cv=K)``'s fold-removal multi-RHS solves agree with
  per-fold cold fits;
* the searchers classify moves (``cold`` / ``h_move`` / ``lam_move``)
  without changing any objective value versus an all-cold evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.datasets import gaussian_mixture
from repro.hss import ULVFactorization, compress_kernel
from repro.kernels import GaussianKernel
from repro.krr import KernelRidgeClassifier
from repro.krr.solvers import HSSSolver
from repro.tuning import (GridSearch, KRRObjective, ParameterSpace,
                          RandomSearch)

_HSS_ARRAYS = ("D", "U", "V", "B12", "B21")
_FACTOR_ARRAYS = ("omega", "q", "lower", "d_hat1", "d_hat2", "u_hat",
                  "g1", "g2")


@pytest.fixture(scope="module")
def data():
    X, y = gaussian_mixture(n=260, d=3, n_components=4, separation=3.0,
                            noise=0.7, seed=0)
    return X, y


@pytest.fixture(scope="module")
def compressed_pair(data):
    """(clustering, cold compression at h=1) shared by the bitwise tests."""
    X, _ = data
    clustering = cluster(X, method="two_means", leaf_size=16, seed=0)
    compressed = compress_kernel(clustering.X, clustering.tree,
                                 GaussianKernel(h=1.0), seed=0)
    return clustering, compressed


def _assert_same_arrays(obj_a, obj_b, names):
    for name in names:
        a, b = getattr(obj_a, name, None), getattr(obj_b, name, None)
        if a is None or b is None:
            assert a is None and b is None, name
            continue
        assert np.array_equal(np.asarray(a), np.asarray(b)), name


def _assert_hss_equal(hss_a, hss_b):
    assert hss_a.n == hss_b.n
    for node_id in range(hss_a.tree.n_nodes):
        _assert_same_arrays(hss_a.node_data[node_id],
                            hss_b.node_data[node_id], _HSS_ARRAYS)


# ---------------------------------------------------------------------------
# recompress: bitwise identical to a cold compression on the same tree
# ---------------------------------------------------------------------------

class TestRecompressBitwise:
    def test_serial_recompress_equals_cold_compress(self, compressed_pair):
        clustering, compressed = compressed_pair
        new_kernel = GaussianKernel(h=2.3)
        warm = compressed.recompress(new_kernel)
        cold = compress_kernel(clustering.X, clustering.tree, new_kernel,
                               seed=0)
        _assert_hss_equal(warm.hss, cold.hss)
        rng = np.random.default_rng(7)
        b = rng.normal(size=clustering.X.shape[0])
        x_warm = ULVFactorization.factor(warm, lam=0.5).solve(b)
        x_cold = ULVFactorization.factor(cold, lam=0.5).solve(b)
        np.testing.assert_array_equal(x_warm, x_cold)
        # the structure survives the round-trip, so h-moves chain
        again = warm.recompress(GaussianKernel(h=1.0))
        _assert_hss_equal(again.hss, compressed.hss)

    def test_recompress_requires_structure(self, compressed_pair):
        _, compressed = compressed_pair
        stripped = type(compressed)(hss=compressed.hss,
                                    report=compressed.report,
                                    hmatrix=compressed.hmatrix,
                                    structure=None)
        with pytest.raises(RuntimeError, match="CompressionStructure"):
            stripped.recompress(GaussianKernel(h=2.0))

    def test_classifier_refit_kernel_bitwise_serial(self, data):
        X, y = data
        warm = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0)
        warm.fit(X, y)
        warm.refit_kernel(2.3, lam=0.5)
        cold = KernelRidgeClassifier(h=2.3, lam=0.5, solver="hss", seed=0)
        cold.fit(X, y)
        np.testing.assert_array_equal(warm.weights_, cold.weights_)
        assert warm.h == 2.3 and warm.lam == 0.5
        assert warm.solver_.compression_count == 2

    def test_refit_kernel_after_artifact_reload(self, tmp_path, data):
        X, y = data
        # shards=1 pins the single-process artifact format: a sharded
        # artifact reloads as the restored-only ShardedULVSolver, which
        # has no data pipeline to rebuild a new kernel from.
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0,
                                    shards=1)
        clf.fit(X, y)
        clf.save(str(tmp_path / "model.npz"))
        loaded = KernelRidgeClassifier.load(str(tmp_path / "model.npz"))
        # artifacts do not persist the CompressionStructure: this rides
        # the cold-compress fallback, still bitwise equal to a cold fit
        loaded.refit_kernel(2.3, lam=0.5)
        cold = KernelRidgeClassifier(h=2.3, lam=0.5, solver="hss", seed=0,
                                     shards=1)
        cold.fit(X, y)
        np.testing.assert_array_equal(loaded.weights_, cold.weights_)

    def test_distributed_recompress_bitwise_shards2(self, data):
        from repro.distributed import WorkerGrid

        X, y = data
        grid = WorkerGrid.from_data(X, shards=2, clustering="two_means",
                                    leaf_size=16, seed=0)
        try:
            warm = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss",
                                         shards=2,
                                         solver_options={"grid": grid})
            warm.fit(X, y)
            warm.refit_kernel(2.3, lam=0.5)
            info = warm.solver_.coordinator_.fit_info
            assert info.get("structure_reuses") == 2
            cold = KernelRidgeClassifier(h=2.3, lam=0.5, solver="hss",
                                         shards=2,
                                         solver_options={"grid": grid})
            cold.fit(X, y)
            np.testing.assert_array_equal(warm.weights_, cold.weights_)
        finally:
            grid.shutdown()


# ---------------------------------------------------------------------------
# factor_many: bitwise identical per shift to sequential factor
# ---------------------------------------------------------------------------

class TestFactorManyBitwise:
    LAMS = (0.25, 1.0, 4.0)

    def test_factor_many_equals_sequential(self, compressed_pair):
        clustering, compressed = compressed_pair
        batched = ULVFactorization.factor_many(compressed, self.LAMS)
        rng = np.random.default_rng(11)
        b = rng.normal(size=(clustering.X.shape[0], 2))
        for lam, fac in zip(self.LAMS, batched):
            ref = ULVFactorization.factor(compressed, lam=lam)
            for node_id, ref_factors in enumerate(ref._factors):
                if ref_factors is None:
                    assert fac._factors[node_id] is None
                    continue
                _assert_same_arrays(fac._factors[node_id], ref_factors,
                                    _FACTOR_ARRAYS)
            np.testing.assert_array_equal(fac.solve(b), ref.solve(b))

    def test_prefactor_feeds_refits_bitwise(self, data):
        X, y = data
        # prefactor/factor_many live on the in-process HSSSolver; shards=1
        # keeps the classifier off the process-sharded path under
        # REPRO_SHARDS overrides.
        warm = KernelRidgeClassifier(h=1.0, lam=self.LAMS[0], solver="hss",
                                     seed=0, shards=1)
        warm.fit(X, y)
        warm.solver_.prefactor(self.LAMS[1:])
        assert set(warm.solver_._prefactored) == set(self.LAMS[1:])
        for lam in self.LAMS[1:]:
            warm.refit(lam)
            # adoption, not re-factorization
            assert warm.solver_.report.timings["factorization"] == 0.0
            np.testing.assert_array_equal(
                warm.weights_, _cold_weights(X, y, h=1.0, lam=lam))
        assert warm.solver_.compression_count == 1


def _cold_weights(X, y, h, lam):
    clf = KernelRidgeClassifier(h=h, lam=lam, solver="hss", seed=0, shards=1)
    clf.fit(X, y)
    return clf.weights_


# ---------------------------------------------------------------------------
# k-fold CV as fold-removal multi-RHS solves
# ---------------------------------------------------------------------------

class TestCrossValidation:
    CV = 4

    def _reference_accuracy(self, X, y, h, lam, solver):
        """Pooled accuracy of per-fold cold fits (the semantic baseline)."""
        idx = np.arange(X.shape[0])
        preds = np.empty(X.shape[0])
        for fold in range(self.CV):
            mask = (idx % self.CV) == fold
            clf = KernelRidgeClassifier(h=h, lam=lam, solver=solver, seed=0)
            clf.fit(X[~mask], y[~mask])
            preds[mask] = clf.predict(X[mask])
        return float(np.mean(preds == y))

    def test_dense_cv_equals_per_fold_cold_fits(self, data):
        X, y = data
        objective = KRRObjective(X, y, X[:8], y[:8], solver="dense",
                                 cv=self.CV)
        acc = objective({"h": 1.0, "lam": 0.5})
        ref = self._reference_accuracy(X, y, 1.0, 0.5, "dense")
        assert acc == pytest.approx(ref, abs=1e-12)

    def test_hss_cv_close_to_per_fold_cold_fits(self, data):
        X, y = data
        with KRRObjective(X, y, X[:8], y[:8], solver="hss", leaf_size=16,
                          seed=0, cv=self.CV) as objective:
            acc = objective({"h": 1.0, "lam": 0.5})
            # λ-move on the shared factorization scores the same folds
            acc2 = objective({"h": 1.0, "lam": 2.0})
        ref = self._reference_accuracy(X, y, 1.0, 0.5, "dense")
        ref2 = self._reference_accuracy(X, y, 1.0, 2.0, "dense")
        assert acc == pytest.approx(ref, abs=0.05)
        assert acc2 == pytest.approx(ref2, abs=0.05)

    def test_cv_validation(self, data):
        X, y = data
        with pytest.raises(ValueError, match="cv"):
            KRRObjective(X, y, X[:8], y[:8], cv=0)
        with pytest.raises(ValueError, match="cv"):
            KRRObjective(X, y, X[:8], y[:8], cv=X.shape[0] + 1)


# ---------------------------------------------------------------------------
# move accounting: cheap paths never change the objective values
# ---------------------------------------------------------------------------

class TestMoveAccounting:
    def test_grid_moves_and_bitwise_values(self, data):
        X, y = data
        X_val, y_val = gaussian_mixture(n=60, d=3, n_components=4,
                                        separation=3.0, noise=0.7, seed=1)
        space = ParameterSpace.krr_default(h_bounds=(0.5, 3.0),
                                           lam_bounds=(0.1, 2.0))
        with KRRObjective(X, y, X_val, y_val, solver="hss", leaf_size=16,
                          seed=0) as fabric:
            res = GridSearch(space, points_per_dim=3).optimize(fabric)
            constructions = fabric.kernel_constructions
        # 3x3 grid, λ fastest: one cold build, two h-moves, six λ-moves
        assert res.moves == {"cold": 1, "h_move": 2, "lam_move": 6}
        assert constructions == 3  # one per distinct h (h-moves included)
        with KRRObjective(X, y, X_val, y_val, solver="hss", leaf_size=16,
                          seed=0, cache_kernels=False) as all_cold:
            ref = GridSearch(space, points_per_dim=3).optimize(all_cold)
        assert [e["objective"] for e in res.history] == \
            [e["objective"] for e in ref.history]
        assert res.best_config == ref.best_config
        assert ref.moves == {"cold": 9}

    def test_random_search_predrawn_groups_preserve_rng(self):
        space = ParameterSpace.krr_default()
        seen = []

        class Spy:
            def __call__(self, config):
                seen.append((config["h"], config["lam"]))
                return 0.0

        RandomSearch(space, budget=10, seed=3, lam_sweep=4).optimize(Spy())
        # same draws as the historical interleaved sampling order
        rng = np.random.default_rng(3)
        expected = []
        lam_param = next(p for p in space.parameters if p.name == "lam")
        drawn = 0
        while drawn < 10:
            config = space.sample(rng)
            expected.append((config["h"], config["lam"]))
            drawn += 1
            for _ in range(min(3, 10 - drawn)):
                expected.append((config["h"], lam_param.sample(rng)))
                drawn += 1
        assert seen == expected

    def test_move_counters_exported(self, data):
        from repro.obs import global_registry

        X, y = data
        objective = KRRObjective(X, y, X[:8], y[:8], solver="dense")
        objective({"h": 1.0, "lam": 0.5})
        objective({"h": 1.0, "lam": 1.5})
        reg = global_registry()
        moves = reg.counter("repro_tune_moves_total",
                            labelnames=("move",))
        assert moves.labels(move="cold").value >= 1
        assert moves.labels(move="lam_move").value >= 1
        assert reg.counter("repro_tune_cache_hits_total").value >= 1
        assert reg.counter("repro_tune_cache_misses_total").value >= 1
        assert objective.move_counts == {"cold": 1, "lam_move": 1}
