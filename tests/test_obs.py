"""Tests of the ``repro.obs`` telemetry subsystem.

Covers the satellite checklist of the observability issue: registry
thread-safety under concurrent increments, histogram bucket-merge
exactness across shard snapshots, span-tree nesting, Prometheus text
round-tripping through the minimal parser, and the distributed snapshot
merge at ``shards=2`` (real worker processes).
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry, NullRegistry, RequestTrail, Tracer,
                       merge_snapshots, parse_prometheus,
                       snapshot_to_prometheus)
from repro.obs.requests_log import RequestRecord


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "help text")
        c2 = reg.counter("x_total")
        assert c1 is c2

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("a",))

    def test_counter_monotonic(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_down(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_labeled_family(self):
        reg = MetricsRegistry()
        fam = reg.counter("req_total", labelnames=("model",))
        fam.labels(model="a").inc(2)
        fam.labels(model="b").inc(3)
        assert fam.labels(model="a").value == 2.0
        snap = reg.local_snapshot()
        assert snap["counters"]['req_total{model="a"}'] == 2.0
        assert snap["counters"]['req_total{model="b"}'] == 3.0
        with pytest.raises(ValueError):
            fam.labels(wrong="a")

    def test_thread_safety_under_concurrent_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer_total")
        h = reg.histogram("hammer_seconds")
        n_threads, per_thread = 8, 2000

        def hammer():
            for i in range(per_thread):
                c.inc()
                h.observe(1e-4 * (1 + i % 7))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread
        assert h.count == n_threads * per_thread
        snap = reg.local_snapshot()
        assert sum(snap["histograms"]["hammer_seconds"]["buckets"]) \
            == n_threads * per_thread

    def test_histogram_bucket_placement(self):
        h = Histogram("h")
        h.observe(0.0)            # below first bound -> bucket 0
        h.observe(1e9)            # above last bound -> +Inf bucket
        for bound in DEFAULT_BUCKETS:
            h.observe(bound)      # boundary values land at their own bound
        counts = h._sample()["buckets"]
        assert counts[0] == 2     # 0.0 plus the first bound itself
        assert counts[-1] == 1    # the 1e9 overflow
        assert sum(counts) == 2 + len(DEFAULT_BUCKETS)
        # every in-range observation v satisfies v <= its bucket bound
        assert h.percentile(50) in DEFAULT_BUCKETS

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.absorb("0", reg.local_snapshot())
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and reg.remote_keys() == []


# -------------------------------------------------------------------- merge
class TestSnapshotMerge:
    def _registry_with(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for v in values:
            h.observe(v)
        reg.counter("n_total").inc(len(values))
        return reg

    def test_histogram_merge_is_exact(self):
        """Merged bucket counts equal a single registry observing both."""
        a_vals = [1e-5, 3e-4, 0.02, 0.5, 7.0]
        b_vals = [2e-6, 3e-4, 0.02, 90.0, 5e4]
        snap_a = self._registry_with(a_vals).local_snapshot()
        snap_b = self._registry_with(b_vals).local_snapshot()
        both = self._registry_with(a_vals + b_vals).local_snapshot()
        merged = merge_snapshots(snap_a, snap_b)
        assert merged["histograms"]["lat_seconds"]["buckets"] \
            == both["histograms"]["lat_seconds"]["buckets"]
        assert merged["histograms"]["lat_seconds"]["count"] == 10
        assert merged["counters"]["n_total"] == 10.0
        assert math.isclose(merged["histograms"]["lat_seconds"]["sum"],
                            sum(a_vals) + sum(b_vals))

    def test_merge_with_shard_label_keeps_samples_distinct(self):
        snap = self._registry_with([0.1]).local_snapshot()
        merged = merge_snapshots(snap, snap, extra_labels={"shard": "1"})
        assert merged["counters"]["n_total"] == 1.0
        assert merged["counters"]['n_total{shard="1"}'] == 1.0
        assert 'lat_seconds{shard="1"}' in merged["histograms"]

    def test_absorb_replace_semantics(self):
        """Repeated cumulative snapshots from one shard never double-count."""
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("work_total").inc(5)
        reg.absorb("0", worker.local_snapshot())
        worker.counter("work_total").inc(5)   # cumulative: now 10
        reg.absorb("0", worker.local_snapshot())
        reg.absorb("0", worker.local_snapshot())
        assert reg.snapshot()["counters"]['work_total{shard="0"}'] == 10.0

    def test_json_round_trip(self):
        reg = self._registry_with([0.25])
        decoded = json.loads(reg.to_json())
        assert decoded["counters"]["n_total"] == 1.0


# ------------------------------------------------------------------ tracing
class TestTracing:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.recent_roots()[-1]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["mid", "sibling"]
        assert root.children[0].children[0].name == "inner"
        assert root.find("inner") is root.children[0].children[0]
        assert root.elapsed >= root.children[0].elapsed >= 0.0
        assert "inner" in root.format()

    def test_timing_log_phase_produces_nested_spans(self):
        from repro.utils.timing import TimingLog

        log = TimingLog()
        with log.phase("train_total"):
            with log.phase("factorization"):
                pass
        root = obs.trace.recent_roots()[-1]
        assert root.name == "train_total"
        assert root.children[0].name == "factorization"

    def test_timing_log_merge_does_not_double_report(self):
        from repro.utils.timing import TimingLog

        reg = obs.global_registry()
        fam = reg.counter("repro_phase_seconds_total", labelnames=("phase",))
        child = fam.labels(phase="merge_probe_phase")
        before = child.value
        other = TimingLog()
        other.add("merge_probe_phase", 1.0)   # recorded once here
        TimingLog().merge(other)              # must NOT record again
        assert math.isclose(child.value - before, 1.0)

    def test_thread_local_stacks(self):
        tracer = Tracer()
        seen = []

        def worker():
            with tracer.span("thread_root"):
                seen.append(tracer.current().name)

        with tracer.span("main_root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert tracer.current().name == "main_root"
        assert seen == ["thread_root"]
        names = {s.name for s in tracer.recent_roots()}
        assert names == {"thread_root", "main_root"}


# ----------------------------------------------------------------- requests
class TestRequestTrail:
    def test_ring_buffer_eviction(self):
        trail = RequestTrail(capacity=3)
        for i in range(5):
            trail.append(RequestRecord(request_id=i, status="completed"))
        assert len(trail) == 3
        assert [r.request_id for r in trail.recent()] == [2, 3, 4]
        assert [r.request_id for r in trail.recent(2)] == [3, 4]

    def test_record_as_dict(self):
        rec = RequestRecord(request_id=7, status="completed", t_enqueue=1.0,
                            t_batch=1.5, t_complete=2.0, batch_size=4)
        d = rec.as_dict()
        assert d["latency"] == 1.0 and d["queue_wait"] == 0.5
        json.dumps(d)  # JSON-serializable


# --------------------------------------------------------------- exporters
class TestPrometheus:
    def test_round_trip_through_parser(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests", labelnames=("model",)) \
            .labels(model="m-1").inc(3)
        reg.gauge("pool_size", "Pool").set(2)
        h = reg.histogram("lat_seconds", "Latency")
        h.observe(0.001)
        h.observe(0.2)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert "# HELP req_total Requests" in text
        samples = parse_prometheus(text)
        assert samples['req_total{model="m-1"}'] == 3.0
        assert samples["pool_size"] == 2.0
        assert samples["lat_seconds_count"] == 2.0
        # cumulative bucket counts: the +Inf bucket equals the total count
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 2.0
        assert math.isclose(samples["lat_seconds_sum"], 0.201)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not } a sample line {{{")
        with pytest.raises(ValueError):
            parse_prometheus("name_total not_a_number")

    def test_export_includes_absorbed_shards(self):
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("work_total").inc(4)
        reg.absorb("1", worker.local_snapshot())
        samples = parse_prometheus(snapshot_to_prometheus(reg.snapshot()))
        assert samples['work_total{shard="1"}'] == 4.0

    def test_dump_metrics_formats(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        prom = tmp_path / "metrics.prom"
        obs.dump_metrics(str(prom), registry=reg)
        assert parse_prometheus(prom.read_text())["x_total"] == 1.0
        js = tmp_path / "metrics.json"
        obs.dump_metrics(str(js), registry=reg)
        assert json.loads(js.read_text())["counters"]["x_total"] == 1.0

    def test_summarize_snapshot_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for _ in range(99):
            h.observe(0.01)
        h.observe(50.0)
        summary = obs.summarize_snapshot(reg.local_snapshot())
        hist = summary["histograms"]["lat_seconds"]
        assert hist["count"] == 100
        assert hist["p50"] <= 0.011
        assert hist["p95"] <= 0.011 < hist["p50"] * 10  # tail not in p95


# ------------------------------------------------------------------ disable
class TestDisable:
    def test_null_registry_discards(self):
        reg = NullRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.observe(1.0)
        c.labels(model="m").inc()
        assert c.value == 0.0

    def test_set_enabled_switches_global(self):
        real = obs.global_registry()
        try:
            obs.set_enabled(False)
            assert not obs.is_enabled()
            assert isinstance(obs.global_registry(), NullRegistry)
            obs.record_phase("disabled_probe", 1.0)  # discarded, no error
        finally:
            obs.set_enabled(True)
        assert obs.global_registry() is real
        snap = real.local_snapshot()
        assert ('repro_phase_seconds_total{phase="disabled_probe"}'
                not in snap["counters"])


# -------------------------------------------------------------- distributed
class TestDistributedTelemetry:
    def test_shards2_snapshot_merge(self):
        """A shards=2 fit lands per-shard phase timings in the registry."""
        from repro.config import HSSOptions
        from repro.datasets import load_dataset
        from repro.distributed import DistributedKRRPipeline

        reg = obs.global_registry()
        reg.reset()
        data = load_dataset("susy", n_train=256, n_test=64, seed=0)
        pipe = DistributedKRRPipeline(
            h=data.h, lam=data.lam, shards=2, seed=0,
            hss_options=HSSOptions(rel_tol=1e-6, initial_samples=48))
        pipe.run(data.X_train, data.y_train, data.X_test, data.y_test,
                 dataset_name="susy")
        assert sorted(reg.remote_keys()) == ["0", "1"]
        snap = reg.snapshot()
        for shard in ("0", "1"):
            for phase in ("factorization", "hss_sampling"):
                key = (f'repro_phase_seconds_total{{phase="{phase}",'
                       f'shard="{shard}"}}')
                assert snap["counters"][key] >= 0.0
            # each worker's transport counters rode back with its snapshot
            assert snap["counters"][
                f'repro_transport_messages_total{{shard="{shard}"}}'] >= 1
        # the coordinator's own transport counters are unlabeled
        assert snap["counters"]["repro_transport_messages_total"] >= 2
        assert snap["counters"]["repro_transport_bytes_total"] > 0
        # the whole cluster view exports and parses
        samples = parse_prometheus(reg.to_prometheus())
        assert any(k.startswith("repro_phase_seconds_total") for k in samples)
