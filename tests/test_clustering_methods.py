"""Tests for the individual clustering / ordering methods and the front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (BallTreeSplitter, ClusteringResult,
                              KDTreeSplitter, PCATreeSplitter, agglomerative_tree,
                              available_methods, cluster,
                              cluster_separation_ratio, natural_tree,
                              tree_balance, average_leaf_size, two_means_split)
from repro.clustering.kd_tree import kd_tree
from repro.clustering.pca_tree import pca_tree
from repro.clustering.ball_tree import ball_tree
from repro.clustering.two_means import two_means_tree
from repro.config import ClusteringOptions


def _two_blobs(n=100, d=4, separation=8.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    a = rng.standard_normal((half, d))
    b = rng.standard_normal((n - half, d)) + separation
    X = np.vstack([a, b])
    labels = np.array([0] * half + [1] * (n - half))
    shuffle = rng.permutation(n)
    return X[shuffle], labels[shuffle]


class TestNaturalOrdering:
    def test_identity_permutation(self):
        X, _ = _two_blobs(50)
        tree = natural_tree(X, leaf_size=8)
        np.testing.assert_array_equal(tree.perm, np.arange(50))

    def test_balanced_tree(self):
        X, _ = _two_blobs(64)
        tree = natural_tree(X, leaf_size=8)
        assert tree_balance(tree) <= 0.6


class TestTwoMeans:
    def test_split_separates_blobs(self):
        X, labels = _two_blobs(80, separation=10.0, seed=1)
        mask = two_means_split(X, rng=0)
        # All points of one blob must land on the same side.
        side_of_label0 = mask[labels == 0]
        side_of_label1 = mask[labels == 1]
        assert side_of_label0.all() or (~side_of_label0).all()
        assert side_of_label1.all() or (~side_of_label1).all()

    def test_split_handles_identical_points(self):
        X = np.ones((10, 3))
        mask = two_means_split(X, rng=0)
        assert mask.shape == (10,)
        # Identical points cannot be clustered meaningfully, but the split
        # must still make progress (neither side may be empty).
        assert 0 < mask.sum() < 10

    def test_split_tiny_inputs(self):
        assert two_means_split(np.zeros((1, 2)), rng=0).shape == (1,)

    def test_tree_reorders_blobs_contiguously(self):
        X, labels = _two_blobs(96, separation=10.0, seed=2)
        tree = two_means_tree(X, leaf_size=8, seed=0)
        reordered_labels = labels[tree.perm]
        # After the first split, each half should be pure.
        root = tree.node(tree.root)
        left = tree.node(root.left)
        first_half = reordered_labels[left.start:left.stop]
        assert len(np.unique(first_half)) == 1

    def test_seed_reproducibility(self):
        X, _ = _two_blobs(60, seed=3)
        t1 = two_means_tree(X, leaf_size=8, seed=42)
        t2 = two_means_tree(X, leaf_size=8, seed=42)
        np.testing.assert_array_equal(t1.perm, t2.perm)


class TestKDTree:
    def test_splits_along_max_spread(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.uniform(0, 100, 50), rng.uniform(0, 1, 50)])
        mask = KDTreeSplitter()(X, rng)
        # Split must be along the first (wide) coordinate.
        threshold_low = X[mask][:, 0].max()
        threshold_high = X[~mask][:, 0].min()
        assert threshold_low <= threshold_high + 1e-9

    def test_median_split_is_balanced(self):
        X, _ = _two_blobs(101, seed=4)
        tree = kd_tree(X, leaf_size=8, use_median=True)
        assert tree_balance(tree) <= 0.6

    def test_mean_split_with_outlier_falls_back(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((200, 2))
        X[0] = [1e6, 0.0]  # extreme outlier pulls the mean
        tree = kd_tree(X, leaf_size=8, balance_threshold=100.0)
        # The fallback keeps the tree from having size-1 / size-199 splits
        # at the root.
        root = tree.node(tree.root)
        left = tree.node(root.left)
        assert min(left.size, root.size - left.size) > 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            KDTreeSplitter(balance_threshold=0.1)


class TestPCATree:
    def test_splits_along_principal_direction(self):
        rng = np.random.default_rng(2)
        # Anisotropic cloud rotated 45 degrees: neither axis is the right
        # split direction, but PCA finds it.
        t = rng.standard_normal(100) * 10
        X = np.column_stack([t, t]) + rng.standard_normal((100, 2)) * 0.1
        mask = PCATreeSplitter()(X, rng)
        left_mean = X[mask].mean(axis=0)
        right_mean = X[~mask].mean(axis=0)
        assert np.linalg.norm(left_mean - right_mean) > 5.0

    def test_tree_builds(self):
        X, _ = _two_blobs(70, seed=5)
        tree = pca_tree(X, leaf_size=8)
        assert tree.leaf_sizes().max() <= 8

    def test_degenerate_constant_data(self):
        X = np.ones((20, 3))
        tree = pca_tree(X, leaf_size=4)
        assert tree.leaf_sizes().sum() == 20


class TestBallTree:
    def test_tree_builds_and_separates(self):
        X, labels = _two_blobs(80, separation=12.0, seed=6)
        tree = ball_tree(X, leaf_size=8, seed=0)
        reordered = labels[tree.perm]
        root = tree.node(tree.root)
        left = tree.node(root.left)
        assert len(np.unique(reordered[left.start:left.stop])) == 1

    def test_splitter_small_input(self):
        assert BallTreeSplitter()(np.zeros((1, 2)), np.random.default_rng(0)).all()


class TestAgglomerative:
    def test_tree_structure_valid(self):
        X, _ = _two_blobs(60, seed=7)
        tree = agglomerative_tree(X, leaf_size=8)
        assert tree.leaf_sizes().sum() == 60
        assert tree.leaf_sizes().max() <= 8 or tree.leaf_sizes().max() <= 60

    def test_separates_blobs(self):
        X, labels = _two_blobs(50, separation=15.0, seed=8)
        tree = agglomerative_tree(X, leaf_size=16)
        reordered = labels[tree.perm]
        root = tree.node(tree.root)
        left = tree.node(root.left)
        assert len(np.unique(reordered[left.start:left.stop])) == 1

    def test_single_point(self):
        tree = agglomerative_tree(np.zeros((1, 2)), leaf_size=4)
        assert tree.n == 1


class TestClusterFrontend:
    def test_available_methods(self):
        methods = available_methods()
        assert "two_means" in methods and "natural" in methods

    @pytest.mark.parametrize("alias,canonical", [
        ("2MN", "two_means"), ("NP", "natural"), ("KD", "kd"), ("PCA", "pca"),
        ("kd_tree", "kd"), ("none", "natural"),
    ])
    def test_aliases(self, alias, canonical):
        X, _ = _two_blobs(40, seed=9)
        result = cluster(X, method=alias, leaf_size=8, seed=0)
        assert result.method == canonical

    def test_unknown_method_raises(self):
        X, _ = _two_blobs(20)
        with pytest.raises(ValueError, match="unknown clustering method"):
            cluster(X, method="quantum")

    def test_result_consistency(self):
        X, y = _two_blobs(50, seed=10)
        result = cluster(X, method="pca", leaf_size=8)
        assert isinstance(result, ClusteringResult)
        np.testing.assert_allclose(result.X, X[result.perm])
        np.testing.assert_allclose(result.permute_labels(y), y[result.perm])

    def test_options_object(self):
        X, _ = _two_blobs(40, seed=11)
        opts = ClusteringOptions(method="kd", leaf_size=4, seed=1)
        result = cluster(X, options=opts)
        assert result.method == "kd"
        assert result.tree.leaf_sizes().max() <= 4


class TestQualityMetrics:
    def test_separation_ratio_larger_for_clustered_ordering(self):
        X, _ = _two_blobs(100, separation=10.0, seed=12)
        natural = cluster(X, method="natural", leaf_size=8)
        clustered = cluster(X, method="two_means", leaf_size=8, seed=0)
        r_nat = cluster_separation_ratio(X, natural.tree)
        r_clu = cluster_separation_ratio(X, clustered.tree)
        assert r_clu > r_nat

    def test_separation_requires_internal_node(self):
        X, _ = _two_blobs(10, seed=13)
        result = cluster(X, method="natural", leaf_size=16)
        with pytest.raises(ValueError):
            cluster_separation_ratio(X, result.tree, node=result.tree.root)

    def test_average_leaf_size(self):
        X, _ = _two_blobs(64, seed=14)
        result = cluster(X, method="natural", leaf_size=8)
        assert 0 < average_leaf_size(result.tree) <= 8
