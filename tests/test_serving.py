"""Tests for the batched prediction engine and the serving front-end."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets import gaussian_mixture
from repro.krr import KernelRidgeClassifier, OneVsAllClassifier
from repro.serving import (KernelRowCache, PredictionEngine, PredictionService)


@pytest.fixture(scope="module")
def binary_model():
    X, y = gaussian_mixture(n=256, d=6, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0).fit(X, y)
    X_test, _ = gaussian_mixture(n=100, d=6, seed=1)
    return clf, X_test


@pytest.fixture(scope="module")
def multiclass_model():
    rng = np.random.default_rng(2)
    X = rng.standard_normal((200, 4))
    y = rng.integers(0, 3, size=200)
    ova = OneVsAllClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
    X_test = rng.standard_normal((60, 4))
    return ova, X_test


class TestKernelRowCache:
    def test_lru_eviction(self):
        cache = KernelRowCache(capacity=2)
        cache.put(b"a", np.float64(0.0))
        cache.put(b"b", np.float64(1.0), row=np.full(3, 1.0))
        assert cache.get(b"a") is not None  # refresh "a"; "b" is now LRU
        cache.put(b"c", np.float64(2.0))
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None and cache.get(b"c") is not None
        assert len(cache) == 2

    def test_key_is_value_based(self):
        x = np.array([1.0, 2.0, 3.0])
        assert KernelRowCache.key_for(x) == KernelRowCache.key_for(x.copy())
        assert KernelRowCache.key_for(x) != KernelRowCache.key_for(x + 1e-12)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KernelRowCache(0)


class TestPredictionEngine:
    def test_matches_classifier_exactly(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        assert np.array_equal(engine.predict_many(X_test), clf.predict(X_test))
        assert np.array_equal(engine.decision_many(X_test),
                              clf.decision_function(X_test))

    @pytest.mark.parametrize("batch_size", [1, 7, 32, 1024])
    def test_micro_batch_sizes_give_same_labels(self, binary_model, batch_size):
        clf, X_test = binary_model
        engine = PredictionEngine(clf, batch_size=batch_size)
        assert np.array_equal(engine.predict_many(X_test), clf.predict(X_test))

    def test_parallel_workers_match_serial(self, binary_model):
        clf, X_test = binary_model
        serial = PredictionEngine(clf, batch_size=16, workers=1)
        parallel = PredictionEngine(clf, batch_size=16, workers=4)
        assert np.array_equal(parallel.decision_many(X_test),
                              serial.decision_many(X_test))

    def test_multiclass_matches_classifier(self, multiclass_model):
        ova, X_test = multiclass_model
        engine = PredictionEngine(ova, batch_size=1024)
        assert np.array_equal(engine.predict_many(X_test), ova.predict(X_test))
        assert np.array_equal(engine.decision_many(X_test),
                              ova.decision_function(X_test))

    def test_cache_stores_scores_only_by_default(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf, batch_size=32, cache_size=256)
        engine.predict_many(X_test)
        assert len(engine.cache) == X_test.shape[0]
        for entry in engine.cache._data.values():
            assert entry[0] is None  # no kernel rows retained

    def test_cached_rows_do_not_pin_chunk_arrays(self, binary_model):
        """With cache_rows=True the entries must be copies, not views into
        the per-batch (batch_size, n_train) chunk matrices."""
        clf, X_test = binary_model
        engine = PredictionEngine(clf, batch_size=32, cache_size=256,
                                  cache_rows=True)
        engine.predict_many(X_test)
        for entry in engine.cache._data.values():
            assert entry[0].shape == (clf.X_train_.shape[0],)
            assert entry[0].base is None
            assert np.isscalar(entry[1]) or getattr(entry[1], "base", None) is None

    def test_cached_row_accessor(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf, cache_size=256, cache_rows=True)
        engine.predict_many(X_test[:5])
        row = engine.cached_row(X_test[0])
        expected = clf.kernel.row(X_test[0], clf.X_train_)
        np.testing.assert_allclose(row, expected, rtol=1e-12)
        assert engine.cached_row(X_test[50]) is None  # never served
        # Without cache_rows the accessor reports nothing.
        lean = PredictionEngine(clf, cache_size=256)
        lean.predict_many(X_test[:5])
        assert lean.cached_row(X_test[0]) is None

    def test_cache_replays_exact_scores(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf, cache_size=256)
        first = engine.decision_many(X_test)
        again = engine.decision_many(X_test)
        assert np.array_equal(first, again)
        assert engine.stats.cache_hits == X_test.shape[0]
        assert engine.stats.cache_misses == X_test.shape[0]
        assert engine.stats.hit_rate == pytest.approx(0.5)
        # Only the first pass computed kernel rows.
        assert engine.stats.rows_computed == X_test.shape[0]

    def test_intra_batch_duplicates_deduplicated(self, binary_model):
        """Repeated points inside one call are computed once and replayed."""
        clf, X_test = binary_model
        engine = PredictionEngine(clf, cache_size=256)
        traffic = np.vstack([X_test[:20], X_test[:20], X_test[5:10]])
        scores = engine.decision_many(traffic)
        assert engine.stats.rows_computed == 20
        assert engine.stats.cache_hits == 25
        assert np.array_equal(scores[20:40], scores[:20])
        assert np.array_equal(scores[40:], scores[5:10])
        assert np.array_equal(np.where(scores >= 0.0, 1.0, -1.0),
                              clf.predict(traffic))

    def test_cache_mixed_hit_miss_batch(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf, cache_size=256)
        engine.predict_many(X_test[:40])
        mixed = np.vstack([X_test[20:60], X_test[:10]])
        assert np.array_equal(engine.predict_many(mixed), clf.predict(mixed))
        assert engine.stats.cache_hits == 30

    def test_single_point_predict(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        assert engine.predict(X_test[0]) == clf.predict(X_test[:1])[0]
        assert engine.predict(X_test[3][None, :]) == clf.predict(X_test[3:4])[0]

    def test_empty_batch(self, binary_model):
        clf, _ = binary_model
        engine = PredictionEngine(clf)
        out = engine.decision_many(np.empty((0, clf.X_train_.shape[1])))
        assert out.shape == (0,)

    def test_stats_reset(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        engine.predict_many(X_test)
        assert engine.stats.queries > 0
        engine.reset_stats()
        assert engine.stats.queries == 0

    def test_stats_reset_mutates_in_place(self, binary_model):
        """Regression: reset must not rebind ``engine.stats``.

        A dashboard (or the sharded service) holding the stats object must
        observe the reset — the old behaviour replaced the object and left
        external references frozen at the pre-reset counts.
        """
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        held = engine.stats
        engine.predict_many(X_test)
        assert held.queries == X_test.shape[0]
        engine.reset_stats()
        assert engine.stats is held
        assert held.queries == 0 and held.eval_seconds == 0.0
        engine.predict_many(X_test)
        assert held.queries == X_test.shape[0]

    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            PredictionEngine(KernelRidgeClassifier())

    def test_dimension_mismatch(self, binary_model):
        clf, _ = binary_model
        engine = PredictionEngine(clf)
        with pytest.raises(ValueError):
            engine.predict_many(np.zeros((4, 3)))


class TestPredictionService:
    def test_predict_many_matches_direct(self, binary_model):
        clf, X_test = binary_model
        with PredictionService(clf, max_batch=16) as svc:
            labels = svc.predict_many(X_test)
        assert np.array_equal(labels, clf.predict(X_test))

    def test_submit_futures(self, binary_model):
        clf, X_test = binary_model
        expected = clf.predict(X_test)
        with PredictionService(PredictionEngine(clf), max_batch=8) as svc:
            futures = [svc.submit(X_test[i]) for i in range(X_test.shape[0])]
            got = np.asarray([f.result(timeout=30) for f in futures])
        assert np.array_equal(got, expected)

    def test_concurrent_submitters(self, binary_model):
        clf, X_test = binary_model
        expected = clf.predict(X_test)
        results = {}
        errors = []

        def client(lo, hi, svc):
            try:
                futs = [(i, svc.submit(X_test[i])) for i in range(lo, hi)]
                for i, f in futs:
                    results[i] = f.result(timeout=30)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with PredictionService(clf, max_batch=32) as svc:
            threads = [threading.Thread(target=client,
                                        args=(lo, lo + 25, svc))
                       for lo in range(0, 100, 25)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors
        got = np.asarray([results[i] for i in range(100)])
        assert np.array_equal(got, expected)

    def test_stats(self, binary_model):
        clf, X_test = binary_model
        with PredictionService(clf, max_batch=16) as svc:
            svc.predict_many(X_test)
            stats = svc.stats()
        assert stats.completed == X_test.shape[0]
        assert stats.failed == 0
        assert stats.batches >= 1
        assert stats.mean_batch_size >= 1.0
        assert stats.p95_latency_ms >= stats.p50_latency_ms >= 0.0
        assert stats.qps > 0.0
        assert "qps" in stats.summary()

    def test_recent_requests_trail(self, binary_model):
        clf, X_test = binary_model
        with PredictionService(clf, max_batch=16, trail_size=64) as svc:
            svc.predict_many(X_test[:20])
            trail = svc.recent_requests()
        assert len(trail) == 20
        ids = [r.request_id for r in trail]
        assert ids == sorted(ids)  # oldest first, ids monotone
        for rec in trail:
            assert rec.status == "completed"
            assert rec.t_enqueue <= rec.t_batch <= rec.t_complete
            assert rec.batch_size >= 1
            assert rec.latency >= rec.queue_wait >= 0.0
        assert len(svc.recent_requests(5)) == 5

    def test_trail_records_failures(self, binary_model):
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        with PredictionService(engine, max_batch=4) as svc:
            fut = svc.submit(X_test[0])
            fut.result(timeout=30)
            # Sabotage the engine so the next batch fails.
            engine.weights = np.zeros((3,))
            bad = svc.submit(X_test[1])
            with pytest.raises(Exception):
                bad.result(timeout=30)
            trail = svc.recent_requests()
        failed = [r for r in trail if r.status == "failed"]
        assert failed and failed[-1].error

    def test_stop_drains_queue(self, binary_model):
        clf, X_test = binary_model
        svc = PredictionService(clf, max_batch=4).start()
        futures = [svc.submit(X_test[i]) for i in range(20)]
        svc.stop()
        got = np.asarray([f.result(timeout=30) for f in futures])
        assert np.array_equal(got, clf.predict(X_test[:20]))
        assert not svc.is_running

    def test_submit_copies_caller_buffer(self, binary_model):
        """A caller reusing one buffer across submits must not corrupt
        queued requests."""
        clf, X_test = binary_model
        expected = clf.predict(X_test[:16])
        buf = np.empty(X_test.shape[1])
        with PredictionService(clf, max_batch=4) as svc:
            futures = []
            for i in range(16):
                buf[:] = X_test[i]
                futures.append(svc.submit(buf))
            got = np.asarray([f.result(timeout=30) for f in futures])
        assert np.array_equal(got, expected)

    def test_submit_requires_running(self, binary_model):
        clf, X_test = binary_model
        svc = PredictionService(clf)
        with pytest.raises(RuntimeError):
            svc.submit(X_test[0])

    def test_wrong_dimension_rejected_at_submit(self, binary_model):
        """A malformed request fails synchronously instead of poisoning the
        micro-batch it would have been coalesced into."""
        clf, X_test = binary_model
        with PredictionService(clf) as svc:
            with pytest.raises(ValueError):
                svc.submit(np.zeros(3))
            # The service stays healthy for well-formed requests.
            good = svc.submit(X_test[0]).result(timeout=30)
        assert good == clf.predict(X_test[:1])[0]

    def test_engine_error_propagates_to_futures(self, binary_model):
        """Failures inside the engine resolve the waiting futures with the
        exception instead of killing the dispatcher thread."""
        clf, X_test = binary_model
        engine = PredictionEngine(clf)
        original = engine.predict_many

        def flaky(X):
            raise RuntimeError("injected engine failure")

        with PredictionService(engine, max_batch=4) as svc:
            engine.predict_many = flaky
            fut = svc.submit(X_test[0])
            with pytest.raises(RuntimeError, match="injected"):
                fut.result(timeout=30)
            assert svc.is_running  # dispatcher survived
            engine.predict_many = original
            ok = svc.submit(X_test[1]).result(timeout=30)
        assert ok == clf.predict(X_test[1:2])[0]
        assert svc.stats().failed == 1

    def test_restartable(self, binary_model):
        clf, X_test = binary_model
        svc = PredictionService(clf)
        svc.start()
        svc.stop()
        svc.start()
        try:
            assert svc.submit(X_test[0]).result(timeout=30) == clf.predict(X_test[:1])[0]
        finally:
            svc.stop()
