"""Tests for the parallel substrate: executor, machine model, cost model."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.clustering import cluster
from repro.config import HSSOptions
from repro.hss import build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator
from repro.parallel import (CORI_HASWELL, BlockExecutor, DistributedCostModel,
                            MachineModel, default_worker_count,
                            estimate_hmatrix_work, estimate_hss_work,
                            estimate_sampling_work, parallel_map,
                            resolve_workers, simulate_strong_scaling)
from repro.parallel import executor as executor_module
from repro.hmatrix import build_hmatrix


@pytest.fixture(scope="module")
def built_hss():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((5, 4)) * 5
    X = centers[rng.integers(5, size=384)] + 0.4 * rng.standard_normal((384, 4))
    result = cluster(X, method="two_means", leaf_size=16, seed=0)
    op = ShiftedKernelOperator(result.X, GaussianKernel(h=1.0), 2.0)
    hss, stats = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=0.1), rng=0)
    hmatrix = build_hmatrix(op, result.X, result.tree)
    return hss, stats, hmatrix


class TestMachineModel:
    def test_compute_time_scales_with_cores(self):
        m = MachineModel()
        assert m.compute_time(1e12, cores=1) == pytest.approx(
            2 * m.compute_time(1e12, cores=2))

    def test_message_time_components(self):
        m = MachineModel(network_latency=1e-6, network_inverse_bandwidth=1e-9)
        assert m.message_time(0) == pytest.approx(1e-6)
        assert m.message_time(1e6) == pytest.approx(1e-6 + 1e-3)
        assert m.message_time(1e6, intra_node=True) < m.message_time(1e6)

    def test_allreduce_grows_with_cores(self):
        m = CORI_HASWELL
        assert m.allreduce_time(1024, 256) > m.allreduce_time(1024, 2)
        assert m.allreduce_time(1024, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(flops_per_second_per_core=0)
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)
        with pytest.raises(ValueError):
            CORI_HASWELL.compute_time(-1.0)
        with pytest.raises(ValueError):
            CORI_HASWELL.message_time(-1.0)

    def test_with_replaces(self):
        m = CORI_HASWELL.with_(cores_per_node=64)
        assert m.cores_per_node == 64
        assert CORI_HASWELL.cores_per_node == 32


class TestWorkModel:
    def test_estimates_positive_and_consistent(self, built_hss):
        hss, stats, hmatrix = built_hss
        work = estimate_hss_work(hss, n_random=stats.random_vectors)
        assert work.compression_flops > 0
        assert work.factorization_flops > 0
        assert work.solve_flops > 0
        assert work.dense_sampling_flops == pytest.approx(
            2.0 * hss.n * hss.n * stats.random_vectors)
        assert sum(work.factorization_flops_per_level.values()) == pytest.approx(
            work.factorization_flops)
        assert sum(work.nodes_per_level.values()) == hss.tree.n_nodes

    def test_sampling_work_hmatrix_cheaper(self, built_hss):
        hss, stats, hmatrix = built_hss
        flops = estimate_sampling_work(hss.n, stats.random_vectors, hmatrix)
        assert flops["hmatrix"] < flops["dense"]
        no_h = estimate_sampling_work(hss.n, stats.random_vectors, None)
        assert no_h["hmatrix"] == no_h["dense"]

    def test_hmatrix_work_positive(self, built_hss):
        *_, hmatrix = built_hss
        assert estimate_hmatrix_work(hmatrix) > 0


class TestCostModel:
    def test_phase_times_positive_and_decreasing_with_cores(self, built_hss):
        hss, stats, hmatrix = built_hss
        work = estimate_hss_work(hss, n_random=stats.random_vectors)
        model = DistributedCostModel(work, hmatrix_flops=estimate_hmatrix_work(hmatrix))
        t32 = model.phase_times(32)
        t512 = model.phase_times(512)
        for phase in ("sampling", "factorization", "solve"):
            assert t32.as_dict()[phase] > 0
            assert t512.as_dict()[phase] <= t32.as_dict()[phase]
        assert t32.hss_construction == pytest.approx(t32.sampling + t32.hss_other)
        assert t32.total > 0

    def test_sampling_dominates_construction(self, built_hss):
        # The paper's Table 4: sampling is the dominant part of the HSS
        # construction.
        hss, stats, hmatrix = built_hss
        work = estimate_hss_work(hss, n_random=stats.random_vectors)
        model = DistributedCostModel(work, n_sampling_sweeps=stats.rounds)
        times = model.phase_times(32)
        assert times.sampling > times.hss_other

    def test_invalid_cores(self, built_hss):
        hss, stats, _ = built_hss
        work = estimate_hss_work(hss)
        with pytest.raises(ValueError):
            DistributedCostModel(work).phase_times(0)

    def test_hmatrix_sampling_reduces_modelled_time(self, built_hss):
        hss, stats, hmatrix = built_hss
        work = estimate_hss_work(hss, n_random=stats.random_vectors)
        sampling = estimate_sampling_work(hss.n, stats.random_vectors, hmatrix)
        dense_model = DistributedCostModel(work)
        h_model = DistributedCostModel(work,
                                       hmatrix_sampling_flops=sampling["hmatrix"])
        assert h_model.phase_times(32).sampling < dense_model.phase_times(32).sampling


class TestStrongScaling:
    def test_speedup_monotone_then_saturating(self, built_hss):
        hss, stats, _ = built_hss
        work = estimate_hss_work(hss, n_random=stats.random_vectors)
        points = simulate_strong_scaling(work, core_counts=(32, 64, 128, 256, 512, 1024))
        times = [pt.factorization_time for pt in points]
        # times must be non-increasing with cores
        assert all(t1 >= t2 * 0.999 for t1, t2 in zip(times, times[1:]))
        # efficiency degrades at scale (communication / serial tree top)
        assert points[-1].parallel_efficiency < points[0].parallel_efficiency + 1e-9
        assert points[-1].parallel_efficiency < 1.0

    def test_invalid_core_counts(self, built_hss):
        hss, stats, _ = built_hss
        work = estimate_hss_work(hss)
        with pytest.raises(ValueError):
            simulate_strong_scaling(work, core_counts=[])


class TestBlockExecutor:
    def test_map_preserves_order(self):
        executor = BlockExecutor(workers=4, serial_threshold=0)
        results = executor.map(lambda x: x * x, list(range(50)))
        assert results == [x * x for x in range(50)]

    def test_serial_fallback(self):
        executor = BlockExecutor(workers=1)
        assert executor.map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]

    def test_starmap(self):
        executor = BlockExecutor(workers=2, serial_threshold=0)
        assert executor.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_exceptions_propagate(self):
        executor = BlockExecutor(workers=2, serial_threshold=0)

        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            executor.map(boom, [1, 2, 3, 4])

    def test_parallel_map_helper_matches_serial(self):
        tasks = list(range(20))
        assert parallel_map(lambda x: x + 1, tasks, workers=3) == \
            [x + 1 for x in tasks]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            BlockExecutor(workers=0)

    def test_numpy_tasks(self):
        rng = np.random.default_rng(0)
        blocks = [rng.standard_normal((30, 30)) for _ in range(8)]
        executor = BlockExecutor(workers=4, serial_threshold=0)
        sums = executor.map(lambda b: float(np.trace(b @ b.T)), blocks)
        expected = [float(np.trace(b @ b.T)) for b in blocks]
        np.testing.assert_allclose(sums, expected)

    def test_pool_is_persistent_across_maps(self):
        with BlockExecutor(workers=2, serial_threshold=0) as executor:
            assert not executor.active
            executor.map(lambda x: x, [1, 2, 3])
            pool = executor._pool
            assert pool is not None
            executor.map(lambda x: x, [4, 5, 6])
            assert executor._pool is pool
        assert not executor.active

    def test_shutdown_is_idempotent_and_recoverable(self):
        executor = BlockExecutor(workers=2, serial_threshold=0)
        executor.map(lambda x: x, [1, 2, 3])
        executor.shutdown()
        executor.shutdown()
        assert not executor.active
        # A later map transparently re-creates the pool.
        assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        executor.shutdown()

    def test_failing_task_cancels_pending_work(self):
        executor = BlockExecutor(workers=2, serial_threshold=0)
        started = []
        lock = threading.Lock()

        def task(i):
            with lock:
                started.append(i)
            if i == 0:
                raise RuntimeError("poisoned")
            time.sleep(0.02)
            return i

        with pytest.raises(RuntimeError, match="poisoned"):
            executor.map(task, list(range(64)))
        # The poisoned first task must have cancelled (not run) the bulk of
        # the queue: with 2 workers only a handful of tasks can have
        # started before the failure was observed.
        assert len(started) < 64
        executor.shutdown()

    def test_exception_survives_mixed_successes(self):
        executor = BlockExecutor(workers=4, serial_threshold=0)

        def task(i):
            if i % 2 == 0:
                raise ValueError(f"task {i}")
            return i

        # Whichever failing task is observed first, its original exception
        # object (not a pool wrapper) must surface.
        with pytest.raises(ValueError, match=r"task \d+"):
            executor.map(task, list(range(16)))
        executor.shutdown()


class TestWorkerResolution:
    def test_default_worker_count_prefers_affinity(self, monkeypatch):
        monkeypatch.setattr(executor_module.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 64)
        assert default_worker_count() == 3

    def test_default_worker_count_falls_back_to_cpu_count(self, monkeypatch):
        def no_affinity(pid):
            raise AttributeError("not available on this platform")

        monkeypatch.setattr(executor_module.os, "sched_getaffinity",
                            no_affinity, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 6)
        assert default_worker_count() == 6

    def test_resolve_workers_explicit(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == default_worker_count()
        with pytest.raises(ValueError):
            resolve_workers(-4)
        with pytest.raises(ValueError):
            BlockExecutor(workers=-1)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    @pytest.mark.parametrize("garbage", ["not-a-number", "0", "-2", "2.5"])
    def test_resolve_workers_env_garbage_raises(self, monkeypatch, garbage):
        """Invalid/zero/negative REPRO_WORKERS must fail loudly, naming
        the variable, instead of being silently ignored."""
        monkeypatch.setenv("REPRO_WORKERS", garbage)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)
        # Explicit arguments bypass the environment entirely.
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == default_worker_count()
