"""Cross-cutting property-based tests of the library's core invariants.

These complement the per-module tests with invariants that tie several
components together: kernel matrices are symmetric positive semi-definite
for any point cloud, symmetric permutations never change the spectrum,
compressed representations agree with the operators they compress, and the
end-to-end classifier is invariant to shuffling the training rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.hmatrix import build_hmatrix
from repro.hss import ULVFactorization, build_hss_from_dense
from repro.kernels import (GaussianKernel, LaplacianKernel, Matern32Kernel,
                           ShiftedKernelOperator, get_kernel)
from repro.krr import KernelRidgeClassifier
from repro.datasets import gaussian_mixture


def _points(n, d, seed):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((max(2, n // 20), d)) * 3.0
    return centers[rng.integers(centers.shape[0], size=n)] \
        + 0.5 * rng.standard_normal((n, d))


class TestKernelProperties:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(5, 60), d=st.integers(1, 8),
           h=st.floats(0.2, 8.0), seed=st.integers(0, 10**6),
           name=st.sampled_from(["gaussian", "laplacian", "matern32", "matern52"]))
    def test_radial_kernels_symmetric_psd_unit_diagonal(self, n, d, h, seed, name):
        X = _points(n, d, seed)
        K = get_kernel(name, h=h).matrix(X)
        assert np.allclose(K, K.T, atol=1e-12)
        assert np.allclose(np.diag(K), 1.0)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-7 * max(eigs.max(), 1.0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(8, 50), seed=st.integers(0, 10**6),
           h=st.floats(0.3, 4.0))
    def test_symmetric_permutation_preserves_spectrum(self, n, seed, h):
        X = _points(n, 3, seed)
        K = GaussianKernel(h=h).matrix(X)
        perm = np.random.default_rng(seed).permutation(n)
        K_perm = K[np.ix_(perm, perm)]
        s1 = np.linalg.svd(K, compute_uv=False)
        s2 = np.linalg.svd(K_perm, compute_uv=False)
        np.testing.assert_allclose(s1, s2, rtol=1e-9, atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(10, 60), seed=st.integers(0, 10**6),
           lam=st.floats(0.0, 5.0))
    def test_shifted_operator_consistent_with_dense(self, n, seed, lam):
        X = _points(n, 4, seed)
        op = ShiftedKernelOperator(X, GaussianKernel(h=1.0), lam)
        K = GaussianKernel(h=1.0).matrix(X) + lam * np.eye(n)
        v = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(op.matvec(v), K @ v, atol=1e-9)
        idx = np.random.default_rng(seed + 1).integers(0, n, size=min(5, n))
        np.testing.assert_allclose(op.block(idx, idx), K[np.ix_(idx, idx)],
                                   atol=1e-12)


class TestCompressionProperties:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), h=st.floats(0.5, 3.0),
           method=st.sampled_from(["two_means", "kd", "pca", "natural"]))
    def test_hss_approximation_error_within_tolerance_budget(self, seed, h, method):
        X = _points(128, 4, seed)
        result = cluster(X, method=method, leaf_size=16, seed=seed)
        K = GaussianKernel(h=h).matrix(result.X) + 1.0 * np.eye(128)
        tol = 1e-4
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=tol))
        err = np.linalg.norm(hss.to_dense() - K) / np.linalg.norm(K)
        # Per-block relative tolerance; allow a generous accumulation factor
        # across the O(log n) levels of the hierarchy.
        assert err < 100 * tol

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), lam=st.floats(0.5, 5.0))
    def test_ulv_solves_its_own_compression_exactly(self, seed, lam):
        X = _points(96, 3, seed)
        result = cluster(X, method="two_means", leaf_size=16, seed=seed)
        K = GaussianKernel(h=1.0).matrix(result.X) + lam * np.eye(96)
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=1e-2))
        fac = ULVFactorization(hss)
        b = np.random.default_rng(seed).standard_normal(96)
        x = fac.solve(b)
        A = hss.to_dense()
        # Whatever matrix the compression produced, ULV solves it accurately.
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-8

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_hmatrix_and_hss_agree_with_operator(self, seed):
        X = _points(160, 4, seed)
        result = cluster(X, method="two_means", leaf_size=16, seed=seed)
        op = ShiftedKernelOperator(result.X, GaussianKernel(h=1.5), 1.0)
        A = op.to_dense()
        hm = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-6))
        hss = build_hss_from_dense(A, result.tree, HSSOptions(rel_tol=1e-6))
        v = np.random.default_rng(seed).standard_normal(160)
        ref = A @ v
        scale = np.linalg.norm(ref)
        assert np.linalg.norm(hm.matvec(v) - ref) < 1e-3 * scale
        assert np.linalg.norm(hss.matvec(v) - ref) < 1e-3 * scale


class TestPipelineProperties:
    def test_classifier_invariant_to_row_shuffling(self):
        X, y = gaussian_mixture(250, 4, n_components=4, separation=4.0,
                                noise=0.6, seed=0)
        X_test, _ = gaussian_mixture(80, 4, n_components=4, separation=4.0,
                                     noise=0.6, seed=1)
        clf_a = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense",
                                      clustering="kd").fit(X, y)
        shuffle = np.random.default_rng(2).permutation(X.shape[0])
        clf_b = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense",
                                      clustering="kd").fit(X[shuffle], y[shuffle])
        np.testing.assert_allclose(clf_a.decision_function(X_test),
                                   clf_b.decision_function(X_test), atol=1e-6)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_predictions_are_deterministic_given_seed(self, seed):
        X, y = gaussian_mixture(200, 3, n_components=4, separation=4.0,
                                noise=0.6, seed=seed)
        X_test, _ = gaussian_mixture(50, 3, n_components=4, separation=4.0,
                                     noise=0.6, seed=seed + 1)
        preds = []
        for _ in range(2):
            clf = KernelRidgeClassifier(h=1.2, lam=1.0, solver="hss", seed=7,
                                        solver_options={"use_hmatrix_sampling": False})
            clf.fit(X, y)
            preds.append(clf.predict(X_test))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_label_flip_symmetry(self):
        # Flipping every training label flips every decision value.
        X, y = gaussian_mixture(180, 3, n_components=2, separation=4.0,
                                noise=0.5, seed=5)
        X_test, _ = gaussian_mixture(40, 3, n_components=2, separation=4.0,
                                     noise=0.5, seed=6)
        a = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense").fit(X, y)
        b = KernelRidgeClassifier(h=1.5, lam=1.0, solver="dense").fit(X, -y)
        np.testing.assert_allclose(a.decision_function(X_test),
                                   -b.decision_function(X_test), atol=1e-8)
