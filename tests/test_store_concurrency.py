"""Regression test: concurrent writers to one `ModelStore` entry.

Two processes repeatedly save (``overwrite=True``) under the same model
name.  The per-model write lock must serialize them so the archive and the
catalog record are always a consistent pair: after the dust settles the
record's checksum matches the artifact header next to it and the model
loads cleanly.  Without the lock, one writer's archive rename can land
between another writer's archive and record renames, leaving a catalog
entry that describes a different archive.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.datasets import gaussian_mixture
from repro.krr import KernelRidgeClassifier
from repro.serving import ModelStore, read_artifact
from repro.serving.store import LOCK_FILENAME, _exclusive_lock

MODEL_NAME = "contended"
SAVES_PER_WRITER = 4


def _writer(root: str, writer_id: int, barrier, errors,
            revisions=None) -> None:
    """Train a tiny model and save it repeatedly under the shared name."""
    try:
        X, y = gaussian_mixture(n=48, d=3, seed=writer_id)
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
        store = ModelStore(root)
        barrier.wait(timeout=60)
        for i in range(SAVES_PER_WRITER):
            record = store.save(clf, MODEL_NAME, overwrite=True,
                                metadata={"writer": writer_id,
                                          "iteration": i})
            if revisions is not None:
                revisions.put(record.revision)
    except Exception as exc:  # pragma: no cover - surfaced via assert below
        errors.put(f"writer {writer_id}: {type(exc).__name__}: {exc}")


def test_two_processes_saving_same_name(tmp_path):
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(2)
    errors = ctx.Queue()
    procs = [ctx.Process(target=_writer,
                         args=(str(tmp_path), i, barrier, errors))
             for i in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=180)
        assert not p.is_alive(), "writer process hung"
        assert p.exitcode == 0
    assert errors.empty(), errors.get()

    # The surviving catalog entry and archive are a consistent pair.
    store = ModelStore(str(tmp_path))
    record = store.record(MODEL_NAME)
    artifact = read_artifact(record.archive_path)
    assert record.checksum == artifact.checksum
    assert record.metadata == artifact.metadata
    model = store.load(MODEL_NAME)  # checksum-verified load succeeds
    winner = int(record.metadata["writer"])
    X, y = gaussian_mixture(n=48, d=3, seed=winner)
    reference = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    assert np.array_equal(model.predict(X), reference.predict(X))


def test_two_processes_stamp_distinct_monotonic_revisions(tmp_path):
    """Revision stamping under contention: two processes re-saving the
    same name never publish the same revision, and after ``2 * k`` saves
    the surviving record carries exactly revision ``2 * k``."""
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(2)
    errors = ctx.Queue()
    revisions = ctx.Queue()
    procs = [ctx.Process(target=_writer,
                         args=(str(tmp_path), i, barrier, errors, revisions))
             for i in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=180)
        assert not p.is_alive(), "writer process hung"
        assert p.exitcode == 0
    assert errors.empty(), errors.get()

    seen = sorted(revisions.get(timeout=5)
                  for _ in range(2 * SAVES_PER_WRITER))
    # Each save got a unique revision and nothing was skipped: the lock
    # serializes read-increment-publish, so the 2k saves stamped 1..2k.
    assert seen == list(range(1, 2 * SAVES_PER_WRITER + 1))

    store = ModelStore(str(tmp_path))
    assert store.record(MODEL_NAME).revision == 2 * SAVES_PER_WRITER
    history = [entry["revision"] for entry in store.versions(MODEL_NAME)]
    assert history == sorted(history)  # history never rolls backwards
    assert history[-1] == 2 * SAVES_PER_WRITER


def test_versions_and_latest_helpers(tmp_path):
    """`versions()` keeps an oldest-first history; `latest()` tracks it."""
    X, y = gaussian_mixture(n=48, d=3, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    store = ModelStore(str(tmp_path))
    first = store.save(clf, "versioned")
    assert first.revision == 1
    assert store.latest("versioned").revision == 1
    second = store.save(clf, "versioned", overwrite=True)
    assert second.revision == 2
    entries = store.versions("versioned")
    assert [e["revision"] for e in entries] == [1, 2]
    assert entries[-1]["checksum"] == store.latest("versioned").checksum
    with pytest.raises(Exception):
        store.versions("no-such-model")


def test_lock_serializes_in_process(tmp_path):
    """The lock context blocks a second acquirer until released."""
    fcntl = pytest.importorskip("fcntl")
    del fcntl
    import threading

    lock_path = str(tmp_path / LOCK_FILENAME)
    order = []
    acquired = threading.Event()
    release = threading.Event()

    def hold_then_release():
        with _exclusive_lock(lock_path):
            order.append("first-acquired")
            acquired.set()
            assert release.wait(10.0), "release signal never arrived"
            order.append("first-released")

    def second_acquirer():
        with _exclusive_lock(lock_path):
            order.append("second-acquired")

    holder = threading.Thread(target=hold_then_release)
    holder.start()
    assert acquired.wait(10.0), "first thread never took the lock"
    second = threading.Thread(target=second_acquirer)
    second.start()
    # The lock is released only after "first-released" is recorded, so
    # the ordering assertion below is deterministic — no timing window.
    release.set()
    holder.join(10.0)
    second.join(10.0)
    assert not holder.is_alive() and not second.is_alive()
    assert order == ["first-acquired", "first-released", "second-acquired"]


def test_non_overwrite_save_still_raises(tmp_path):
    """The lock does not change the overwrite=False contract."""
    X, y = gaussian_mixture(n=48, d=3, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    store = ModelStore(str(tmp_path))
    store.save(clf, "once")
    with pytest.raises(FileExistsError):
        store.save(clf, "once")
    store.save(clf, "once", overwrite=True)  # explicit overwrite still works
