"""Integration tests of the experiment harness (tiny problem sizes).

Each experiment module is run at a deliberately small size so the whole file
stays fast; what is checked is (a) the experiments run end to end, (b) they
produce the tables the benchmarks print, and (c) the headline qualitative
findings of the paper hold (clustering reduces memory, accuracy is
preserved, quasi-linear scaling, tuner competitive with grid search).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (run_ablation_kd_split, run_ablation_leafsize,
                               run_ablation_normalization, run_ablation_sampling,
                               run_ablation_solvers, run_ablation_tolerance,
                               run_fig1_singular_values, run_fig5_memory_vs_h,
                               run_fig6_tuning, run_fig7_asymptotic,
                               run_fig8_strong_scaling, run_table1_effective_rank,
                               run_table2_preprocessing, run_table3_large_scale,
                               run_table4_timing_breakdown)


class TestFig1AndTable1:
    def test_fig1_decay_faster_with_clustering(self):
        result = run_fig1_singular_values(n=256, h_values=(1.0,), seed=0)
        natural = result.decay_index("natural", 1.0)
        clustered = result.decay_index("two_means", 1.0)
        assert clustered <= natural
        assert "ordering" in result.table().render()

    def test_table1_shape(self):
        result = run_table1_effective_rank(n=256, h_values=(0.01, 1.0, 100.0), seed=0)
        assert result.ranks["natural"][0.01] <= 3
        assert result.improvement(1.0) >= 1.0
        rendered = result.table().render()
        assert "h=1.0" in rendered


class TestTable2:
    def test_two_datasets_small(self):
        result = run_table2_preprocessing(datasets=("gas", "pen"), n_train=384,
                                          n_test=96, two_means_repeats=1,
                                          orderings=("natural", "two_means"),
                                          seed=0)
        assert len(result.rows) == 2
        for row in result.rows:
            # clustering must not increase memory (Table 2's central finding)
            assert row.memory_mb["two_means"] <= row.memory_mb["natural"] * 1.1
            # accuracy independent of the ordering
            accs = list(row.accuracy.values())
            assert max(accs) - min(accs) < 0.08
        assert result.memory_improvement("gas") >= 1.0
        assert "mem two_means" in result.table().render()


class TestFig5:
    def test_memory_vs_h_structure(self):
        result = run_fig5_memory_vs_h(n=384, h_values=(0.6, 2.0, 8.0),
                                      orderings=("natural", "two_means"), seed=0)
        assert set(result.memory_mb) == {"natural", "two_means"}
        for ordering in result.memory_mb:
            assert all(v > 0 for v in result.memory_mb[ordering].values())
        # two-means <= natural for every h (paper's Figure 5)
        for h in (0.6, 2.0, 8.0):
            assert result.memory_mb["two_means"][h] <= \
                result.memory_mb["natural"][h] * 1.1
        assert "h=2.0" in result.table().render()


class TestFig6:
    def test_tuner_competitive_with_grid(self):
        result = run_fig6_tuning(n_train=160, n_val=64, grid_points_per_dim=5,
                                 tuner_budget=30, include_random_search=False,
                                 seed=0)
        assert result.grid.evaluations == 25
        assert result.bandit.evaluations == 30
        # The black-box tuner should be at least competitive with the grid.
        assert result.bandit.best_value >= result.grid.best_value - 0.05
        assert "strategy" in result.table().render()


class TestTable3:
    def test_large_scale_rows(self):
        result = run_table3_large_scale(datasets=("gas",) if False else ("susy",),
                                        n_train=512, n_test=128, seed=0)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.accuracy > 0.6
        assert row.compression_ratio > 1.0
        assert "compression" in result.table().render()


class TestFig7:
    def test_quasi_linear_growth(self):
        result = run_fig7_asymptotic(sizes=(256, 512, 1024), seed=0)
        assert len(result.points) == 3
        exponent = result.growth_exponent("hss_memory_mb")
        # quasi-linear: far below the dense exponent of 2
        assert exponent < 1.7
        times = [pt.factorization_time for pt in result.points]
        assert all(t > 0 for t in times)
        assert "hss_memory_mb" in result.table().render()


class TestTable4:
    def test_phase_breakdown(self):
        result = run_table4_timing_breakdown(datasets=("susy",), n_train=512,
                                             core_counts=(32, 512), seed=0)
        entry = result.entries[0]
        assert entry.measured_seconds["sampling"] >= 0
        assert entry.measured_seconds["factorization"] > 0
        t32 = entry.modelled[32]
        t512 = entry.modelled[512]
        # more cores -> not slower, for the scalable phases
        assert t512.factorization <= t32.factorization
        assert t512.sampling <= t32.sampling
        # sampling dominates hss construction (paper's Table 4)
        assert t32.sampling > t32.hss_other
        assert "phase" in result.table().render()


class TestFig8:
    def test_strong_scaling_curves(self):
        result = run_fig8_strong_scaling(datasets=("susy", "gas") if False
                                         else ("susy",),
                                         n_train=512,
                                         core_counts=(32, 128, 512), seed=0)
        curve = result.curves[0]
        times = curve.factorization_times()
        assert times[512] <= times[32]
        speedups = curve.speedup()
        assert speedups[512] >= speedups[128] * 0.99
        assert "32 cores" in result.table().render()


class TestAblations:
    def test_sampling_ablation(self):
        result = run_ablation_sampling(dataset="gas", n_train=384, seed=0)
        strategies = {row["strategy"] for row in result.rows}
        assert strategies == {"dense sampling", "hmatrix sampling"}
        table = result.table().render()
        assert "sampling_s" in table

    def test_leafsize_ablation(self):
        result = run_ablation_leafsize(dataset="gas", n_train=256,
                                       leaf_sizes=(16, 64), seed=0)
        assert len(result.rows) == 2
        assert all(row["memory_mb"] > 0 for row in result.rows)

    def test_tolerance_ablation_accuracy_saturates(self):
        result = run_ablation_tolerance(dataset="pen", n_train=256,
                                        tolerances=(0.5, 0.1, 1e-3), seed=0)
        accs = [row["accuracy_percent"] for row in result.rows]
        mems = [row["memory_mb"] for row in result.rows]
        # tighter tolerance -> larger memory
        assert mems[-1] >= mems[0]
        # accuracy at the paper's tolerance (0.1) close to the tightest one
        assert abs(accs[1] - accs[-1]) < 6.0

    def test_solver_ablation(self):
        result = run_ablation_solvers(dataset="letter", n_train=256,
                                      solvers=("dense", "hss"), seed=0)
        accs = {row["solver"]: row["accuracy_percent"] for row in result.rows}
        assert abs(accs["dense"] - accs["hss"]) < 5.0

    def test_kd_split_ablation(self):
        result = run_ablation_kd_split(dataset="covtype", n_train=256, seed=0)
        splits = {row["split"] for row in result.rows}
        assert splits == {"mean split", "median split"}
        for row in result.rows:
            assert row["max_leaf"] >= row["min_leaf"] >= 1

    def test_normalization_ablation(self):
        result = run_ablation_normalization(dataset="gas", n_train=384, seed=0)
        accs = {row["normalization"]: row["accuracy_percent"] for row in result.rows}
        assert set(accs) == {"zscore", "maxabs", "none"}
        assert accs["zscore"] >= 70.0
