"""Tests for the cluster tree structure and the generic splitter driver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import ClusterNode, ClusterTree, tree_from_splitter
from repro.clustering.two_means import TwoMeansSplitter


def _random_points(n, d=3, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


def _build(n, leaf_size=8, seed=0):
    X = _random_points(n, seed=seed)
    return X, tree_from_splitter(X, TwoMeansSplitter(), leaf_size=leaf_size,
                                 rng=np.random.default_rng(seed))


class TestClusterNode:
    def test_size_and_leaf(self):
        node = ClusterNode(start=3, stop=10)
        assert node.size == 7
        assert node.is_leaf
        node.left, node.right = 1, 2
        assert not node.is_leaf


class TestClusterTreeInvariants:
    def test_root_covers_everything(self):
        _, tree = _build(100)
        root = tree.node(tree.root)
        assert root.start == 0 and root.stop == 100

    def test_perm_is_permutation(self):
        _, tree = _build(73)
        assert np.array_equal(np.sort(tree.perm), np.arange(73))

    def test_children_partition_parent(self):
        _, tree = _build(64)
        for node in tree.nodes:
            if not node.is_leaf:
                left, right = tree.node(node.left), tree.node(node.right)
                assert left.start == node.start
                assert left.stop == right.start
                assert right.stop == node.stop

    def test_leaf_sizes_bounded(self):
        _, tree = _build(200, leaf_size=16)
        assert tree.leaf_sizes().max() <= 16
        assert tree.leaf_sizes().sum() == 200

    def test_leaves_cover_in_order(self):
        _, tree = _build(50, leaf_size=4)
        leaves = tree.leaves()
        positions = [tree.node(i).start for i in leaves]
        assert positions == sorted(positions)
        assert tree.node(leaves[0]).start == 0
        assert tree.node(leaves[-1]).stop == 50

    def test_postorder_children_before_parents(self):
        _, tree = _build(60, leaf_size=8)
        seen = set()
        for node_id in tree.postorder():
            node = tree.node(node_id)
            if not node.is_leaf:
                assert node.left in seen and node.right in seen
            seen.add(node_id)
        assert len(seen) == tree.n_nodes

    def test_levels_structure(self):
        _, tree = _build(64, leaf_size=8)
        levels = tree.levels()
        assert levels[0] == [tree.root]
        assert sum(len(level) for level in levels) == tree.n_nodes

    def test_inverse_perm(self):
        _, tree = _build(40)
        inv = tree.inverse_perm
        assert np.array_equal(inv[tree.perm], np.arange(40))

    def test_indices_and_original_indices(self):
        X, tree = _build(30, leaf_size=5)
        for leaf in tree.leaves():
            pos = tree.indices(leaf)
            orig = tree.original_indices(leaf)
            np.testing.assert_array_equal(tree.perm[pos], orig)


class TestPermutationHelpers:
    def test_apply_permutation_roundtrip(self):
        X, tree = _build(37)
        Xp = tree.apply_permutation(X)
        assert Xp.shape == X.shape
        np.testing.assert_allclose(Xp, X[tree.perm])

    def test_permute_and_unpermute_vector(self):
        _, tree = _build(29)
        y = np.arange(29, dtype=float)
        yp = tree.permute_vector(y)
        np.testing.assert_allclose(tree.unpermute_vector(yp), y)

    def test_wrong_length_raises(self):
        _, tree = _build(20)
        with pytest.raises(ValueError):
            tree.apply_permutation(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            tree.permute_vector(np.zeros(5))


class TestTreeValidation:
    def test_invalid_perm_rejected(self):
        nodes = [ClusterNode(0, 3)]
        with pytest.raises(ValueError, match="not a permutation"):
            ClusterTree(np.array([0, 0, 2]), nodes)

    def test_root_range_must_cover(self):
        nodes = [ClusterNode(0, 2)]
        with pytest.raises(ValueError, match="root must cover"):
            ClusterTree(np.array([0, 1, 2]), nodes)

    def test_children_must_partition(self):
        nodes = [ClusterNode(0, 4, left=1, right=2),
                 ClusterNode(0, 3), ClusterNode(2, 4)]
        with pytest.raises(ValueError, match="partition"):
            ClusterTree(np.arange(4), nodes)

    def test_single_child_rejected(self):
        nodes = [ClusterNode(0, 4, left=1, right=-1), ClusterNode(0, 4)]
        with pytest.raises(ValueError, match="zero or two children"):
            ClusterTree(np.arange(4), nodes)


class TestSplitterDriver:
    def test_degenerate_splitter_falls_back(self):
        # A splitter that puts everything in one side must still terminate.
        X = _random_points(64, seed=4)
        tree = tree_from_splitter(X, lambda pts, rng: np.ones(len(pts), dtype=bool),
                                  leaf_size=8)
        assert tree.leaf_sizes().max() <= 8

    def test_bad_mask_length_raises(self):
        X = _random_points(32, seed=5)
        with pytest.raises(ValueError, match="mask of length"):
            tree_from_splitter(X, lambda pts, rng: np.ones(3, dtype=bool),
                               leaf_size=4)

    def test_leaf_size_one(self):
        X = _random_points(17, seed=6)
        tree = tree_from_splitter(X, TwoMeansSplitter(), leaf_size=1)
        assert tree.leaf_sizes().max() == 1
        assert len(tree.leaves()) == 17

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            tree_from_splitter(_random_points(10), TwoMeansSplitter(), leaf_size=0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=120),
           leaf=st.integers(min_value=1, max_value=32),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_property_tree_always_valid(self, n, leaf, seed):
        X = _random_points(n, d=2, seed=seed)
        tree = tree_from_splitter(X, TwoMeansSplitter(), leaf_size=leaf,
                                  rng=np.random.default_rng(seed))
        # The ClusterTree constructor validates all structural invariants.
        assert tree.n == n
        assert tree.leaf_sizes().sum() == n
        assert tree.leaf_sizes().max() <= max(leaf, 1)
