"""Tests for adaptive cross approximation (partial and full pivoting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import GaussianKernel
from repro.lowrank import aca, aca_full


def _lowrank_matrix(m, n, r, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, r)) @ rng.standard_normal((r, n))


def _kernel_block(seed=0, m=60, n=50, separation=5.0, h=4.0):
    """A kernel block between two well separated clusters (genuinely low rank)."""
    rng = np.random.default_rng(seed)
    A_pts = rng.standard_normal((m, 3))
    B_pts = rng.standard_normal((n, 3)) + separation
    return GaussianKernel(h=h).matrix(A_pts, B_pts)


def _fns(A):
    return (lambda i: A[i, :], lambda j: A[:, j])


class TestPartialACA:
    def test_exact_on_lowrank(self):
        A = _lowrank_matrix(30, 40, 4)
        row_fn, col_fn = _fns(A)
        result = aca(30, 40, row_fn, col_fn, rel_tol=1e-10)
        assert result.converged
        assert result.rank >= 4
        np.testing.assert_allclose(result.lowrank.to_dense(), A,
                                   atol=1e-6 * np.abs(A).max())

    def test_kernel_block_compression(self):
        A = _kernel_block()
        row_fn, col_fn = _fns(A)
        result = aca(*A.shape, row_fn, col_fn, rel_tol=1e-4)
        err = np.linalg.norm(result.lowrank.to_dense() - A) / np.linalg.norm(A)
        assert err < 1e-3
        assert result.rank < min(A.shape) // 2  # genuinely compressed

    def test_rank_cap(self):
        A = _lowrank_matrix(20, 20, 10)
        row_fn, col_fn = _fns(A)
        result = aca(20, 20, row_fn, col_fn, rel_tol=1e-12, max_rank=3)
        assert result.rank == 3

    def test_zero_block(self):
        A = np.zeros((10, 12))
        row_fn, col_fn = _fns(A)
        result = aca(10, 12, row_fn, col_fn, rel_tol=1e-6)
        assert result.rank == 0
        np.testing.assert_allclose(result.lowrank.to_dense(), A)

    def test_empty_block(self):
        result = aca(0, 5, lambda i: np.zeros(5), lambda j: np.zeros(0))
        assert result.rank == 0
        assert result.lowrank.shape == (0, 5)

    def test_sampled_rows_and_cols_counted(self):
        A = _kernel_block(seed=1)
        row_fn, col_fn = _fns(A)
        result = aca(*A.shape, row_fn, col_fn, rel_tol=1e-6)
        assert result.rows_sampled >= result.rank
        assert result.cols_sampled >= result.rank
        # The whole point of ACA: the number of sampled rows/columns is much
        # smaller than the block dimensions.
        assert result.rows_sampled < A.shape[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            aca(-1, 5, lambda i: None, lambda j: None)
        with pytest.raises(ValueError):
            aca(5, 5, lambda i: None, lambda j: None, rel_tol=0.0)


class TestFullACA:
    def test_exact_on_lowrank(self):
        A = _lowrank_matrix(25, 18, 5, seed=3)
        result = aca_full(A, rel_tol=1e-12)
        np.testing.assert_allclose(result.lowrank.to_dense(), A,
                                   atol=1e-8 * np.abs(A).max())

    def test_rank_detection(self):
        A = _lowrank_matrix(30, 30, 7, seed=4)
        result = aca_full(A, rel_tol=1e-10)
        assert result.rank == 7

    def test_agrees_with_partial_on_kernel_block(self):
        A = _kernel_block(seed=5)
        partial = aca(*A.shape, *_fns(A), rel_tol=1e-8)
        full = aca_full(A, rel_tol=1e-8)
        err_p = np.linalg.norm(partial.lowrank.to_dense() - A)
        err_f = np.linalg.norm(full.lowrank.to_dense() - A)
        assert err_p <= 10 * max(err_f, 1e-8 * np.linalg.norm(A))

    def test_zero_matrix(self):
        result = aca_full(np.zeros((5, 5)))
        assert result.rank == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            aca_full(np.zeros(5))
