"""Tests for the layered runtime configuration spine (repro.runtime).

Pins the resolution contract the CLI and the `from_config` constructors
rely on: precedence (defaults < repro.toml < REPRO_* env < flags) with
per-value provenance, the TOML round trip (including the minimal-parser
fallback), strict validation of unknown keys and garbage env values, and
— the backward-compatibility guarantee — that a config-built pipeline
produces bitwise-identical predictions to the legacy constructor path.
"""

import os

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.krr import KRRPipeline
from repro.runtime import (RuntimeConfig, SCHEMA, TomlError, known_keys,
                           loads_toml, resolve_runtime_config)
from repro.runtime.toml_io import _parse_minimal


# --------------------------------------------------------------- precedence
class TestPrecedence:
    def test_defaults_only(self):
        cfg = resolve_runtime_config()
        assert cfg.dataset.name == "gas"
        assert cfg.kernel.h == 1.0
        assert cfg.distributed.workers is None
        assert all(cfg.source(k) == "default" for k in known_keys())

    def test_file_beats_default(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[kernel]\nh = 2.5\n")
        cfg = resolve_runtime_config(path=str(path))
        assert cfg.kernel.h == 2.5
        assert cfg.source("kernel.h") == "file"
        assert cfg.source("kernel.lam") == "default"
        assert cfg.config_path == str(path)

    def test_env_beats_file(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[kernel]\nh = 2.5\n")
        cfg = resolve_runtime_config(path=str(path),
                                     env={"REPRO_KERNEL_H": "3.5"})
        assert cfg.kernel.h == 3.5
        assert cfg.source("kernel.h") == "env"

    def test_flag_beats_env_and_file(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[kernel]\nh = 2.5\n")
        cfg = resolve_runtime_config(path=str(path),
                                     env={"REPRO_KERNEL_H": "3.5"},
                                     flags={"kernel.h": 4.5})
        assert cfg.kernel.h == 4.5
        assert cfg.source("kernel.h") == "flag"

    def test_one_value_from_each_layer(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[dataset]\nn_train = 300\n")
        cfg = resolve_runtime_config(path=str(path),
                                     env={"REPRO_SHARDS": "2"},
                                     flags={"kernel.lam": 7.0})
        sources = {row["key"]: row["source"] for row in cfg.describe()}
        assert sources["dataset.n_train"] == "file"
        assert sources["distributed.shards"] == "env"
        assert sources["kernel.lam"] == "flag"
        assert sources["kernel.h"] == "default"

    def test_search_cwd(self, tmp_path, monkeypatch):
        (tmp_path / "repro.toml").write_text("[dataset]\nseed = 9\n")
        monkeypatch.chdir(tmp_path)
        assert resolve_runtime_config(search_cwd=True).dataset.seed == 9
        # Not searched unless asked.
        assert resolve_runtime_config().dataset.seed == 0

    def test_legacy_env_aliases(self):
        cfg = resolve_runtime_config(env={"REPRO_WORKERS": "3",
                                          "REPRO_SHARDS": "2",
                                          "REPRO_OBS_DISABLED": "1",
                                          "REPRO_METRICS_DUMP": "m.json"})
        assert cfg.distributed.workers == 3
        assert cfg.distributed.shards == 2
        assert cfg.obs.enabled is False  # inverted alias
        assert cfg.obs.dump_path == "m.json"

    def test_alias_beats_generic_env_name(self):
        cfg = resolve_runtime_config(
            env={"REPRO_WORKERS": "3", "REPRO_DISTRIBUTED_WORKERS": "5"})
        assert cfg.distributed.workers == 3

    def test_flag_values_coerced_from_strings(self):
        cfg = resolve_runtime_config(flags={"dataset.n_train": "128",
                                            "kernel.h": "0.5",
                                            "dataset.normalize": "false",
                                            "distributed.workers": "none"})
        assert cfg.dataset.n_train == 128
        assert cfg.kernel.h == 0.5
        assert cfg.dataset.normalize is False
        assert cfg.distributed.workers is None


# ---------------------------------------------------------------- validation
class TestValidation:
    def test_unknown_file_key_rejected(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("[kernel]\nbandwidth = 2.0\n")
        with pytest.raises(TomlError, match="kernel.bandwidth"):
            resolve_runtime_config(path=str(path))

    def test_unknown_flag_key_rejected(self):
        with pytest.raises(KeyError, match="kernel.bandwidth"):
            resolve_runtime_config(flags={"kernel.bandwidth": 2.0})

    @pytest.mark.parametrize("var", ["REPRO_WORKERS", "REPRO_SHARDS"])
    @pytest.mark.parametrize("value", ["junk", "0", "-2", "2.5"])
    def test_env_garbage_raises_naming_variable(self, var, value):
        with pytest.raises(ValueError, match=var):
            resolve_runtime_config(env={var: value})

    def test_invalid_enum_rejected(self):
        with pytest.raises(ValueError, match="solver.name"):
            resolve_runtime_config(flags={"solver.name": "magic"})

    def test_invalid_val_fraction_rejected(self):
        with pytest.raises(ValueError, match="val_fraction"):
            resolve_runtime_config(flags={"tuning.val_fraction": 1.5})

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            resolve_runtime_config(path="/nonexistent/repro.toml")


# ---------------------------------------------------------------- round trip
class TestTomlRoundTrip:
    def test_to_toml_round_trips(self, tmp_path):
        cfg = resolve_runtime_config(flags={"kernel.h": 2.25,
                                            "dataset.n_train": 640,
                                            "distributed.shards": 2})
        path = tmp_path / "saved.toml"
        cfg.save(str(path))
        reloaded = resolve_runtime_config(path=str(path))
        # Value equality: provenance differs (flag vs file) but compares
        # out via the dataclass field(compare=False).
        assert reloaded == cfg
        assert reloaded.source("kernel.h") == "file"

    def test_minimal_parser_agrees_with_tomllib(self):
        text = ('# comment\n[kernel]\nname = "gaussian"  # trailing\n'
                'h = 1.5\nlam = 1e-2\n\n[dataset]\nnormalize = false\n'
                'n_train = 1024\n')
        assert _parse_minimal(text) == loads_toml(text)

    def test_minimal_parser_rejects_bad_lines(self):
        with pytest.raises(TomlError):
            _parse_minimal("[kernel\nh = 1.0\n")
        with pytest.raises(TomlError):
            _parse_minimal("just some words\n")

    def test_unset_optionals_survive_round_trip(self, tmp_path):
        cfg = resolve_runtime_config()
        path = tmp_path / "defaults.toml"
        cfg.save(str(path))
        text = path.read_text()
        assert "# workers = <unset>" in text
        assert resolve_runtime_config(path=str(path)) == cfg


# --------------------------------------------------------------- provenance
class TestAccessors:
    def test_get_and_source(self):
        cfg = resolve_runtime_config(flags={"serving.max_batch": 64})
        assert cfg.get("serving.max_batch") == 64
        assert cfg.source("serving.max_batch") == "flag"
        with pytest.raises(KeyError):
            cfg.get("serving.nope")

    def test_describe_covers_every_knob(self):
        rows = resolve_runtime_config().describe()
        assert sorted(r["key"] for r in rows) == sorted(known_keys())
        assert {r["source"] for r in rows} == {"default"}

    def test_schema_env_names_unique(self):
        seen = {}
        for knob in SCHEMA:
            for var, _inv in knob.env_vars:
                assert seen.setdefault(var, knob.key) == knob.key, (
                    f"{var} claimed by {seen[var]} and {knob.key}")


# ----------------------------------------------------- backward compatibility
class TestBackwardCompatibility:
    def test_from_config_matches_legacy_constructor_bitwise(self):
        """The config path must not change numerics: same pipeline args,
        bitwise-identical predictions and weights."""
        data = load_dataset("gas", n_train=192, n_test=64, seed=0)

        legacy = KRRPipeline(h=data.h, lam=data.lam, solver="hss",
                             clustering="two_means", leaf_size=16, seed=0)
        legacy_report = legacy.run(data.X_train, data.y_train,
                                   data.X_test, data.y_test)

        cfg = resolve_runtime_config(flags={"kernel.h": data.h,
                                            "kernel.lam": data.lam})
        configured = KRRPipeline.from_config(cfg)
        config_report = configured.run(data.X_train, data.y_train,
                                       data.X_test, data.y_test)

        assert config_report.accuracy == legacy_report.accuracy
        np.testing.assert_array_equal(
            configured.classifier_.predict(data.X_test),
            legacy.classifier_.predict(data.X_test))
        np.testing.assert_array_equal(configured.classifier_.weights_,
                                      legacy.classifier_.weights_)

    def test_constructor_args_win_unchanged(self):
        """Legacy call sites that never see a RuntimeConfig keep their
        exact constructor defaults."""
        pipeline = KRRPipeline(h=0.7, lam=0.3)
        assert pipeline.h == 0.7 and pipeline.lam == 0.3
        assert pipeline.solver_name == "hss"
        assert pipeline.kernel_name == "gaussian"

    def test_make_pipeline_overrides(self):
        cfg = resolve_runtime_config(flags={"kernel.h": 2.0})
        pipeline = cfg.make_pipeline(lam=0.125)
        assert pipeline.h == 2.0      # from config
        assert pipeline.lam == 0.125  # explicit override wins


# -------------------------------------------------------------- env snapshot
def test_resolution_ignores_unrelated_env(monkeypatch):
    monkeypatch.setenv("REPRO_SOMETHING_ELSE", "whatever")
    cfg = resolve_runtime_config()
    assert all(cfg.source(k) == "default" for k in known_keys())


def test_obs_env_alias_round_trip(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_DISABLED", "0")
    cfg = resolve_runtime_config(env=dict(os.environ))
    assert cfg.obs.enabled is True
    assert cfg.source("obs.enabled") == "env"
