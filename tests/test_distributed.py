"""Tests of the process-sharded training path (`repro.distributed`).

Covers the acceptance contract of the subsystem:

* :class:`ShardPlan` is a bitwise-deterministic, validity-checked cut of
  the cluster tree for any shard count, and round-trips through
  ``repro.serving.serialize``;
* the shared-memory transport moves numpy blocks between processes
  without pickling payloads;
* the sharded pipeline reproduces the serial pipeline's predictions
  within the documented tolerance (label-exact at tight compression
  tolerances) for 2 and 4 shards, deterministically across runs;
* a crashed worker fails the coordinator promptly and leaves no orphaned
  processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest
from conftest import wait_until

from repro.clustering import cluster
from repro.config import HSSOptions
from repro.datasets import load_dataset, standardize, susy_like
from repro.distributed import (Coordinator, DistributedError,
                               DistributedKRRPipeline, DistributedSolver,
                               ShardPlan, ShardedPredictionService,
                               WorkerGrid, resolve_shards)
from repro.distributed.comm import ArraySpec, BlockChannel, SharedArray
from repro.kernels import GaussianKernel
from repro.krr import KernelRidgeClassifier, KRRPipeline
from repro.krr.solvers import HSSSolver
from repro.serving import shard_plan_from_arrays, shard_plan_to_arrays

#: compression tolerance pinned tight so sharded-vs-serial deviations stay
#: far below the decision margins (documented contract: the coupling ACA
#: tolerance bounds the deviation of the sharded solve).
TIGHT = HSSOptions(rel_tol=1e-6, initial_samples=48)


@pytest.fixture(scope="module")
def small_problem():
    data = load_dataset("susy", n_train=384, n_test=96, seed=0)
    return data


@pytest.fixture(scope="module")
def clustered_tree():
    X, _ = susy_like(256, seed=3)
    X = standardize(X)
    return cluster(X, method="two_means", leaf_size=16, seed=3)


@pytest.fixture(scope="module")
def serial_run(small_problem):
    data = small_problem
    # shards=1 pinned explicitly: under the CI REPRO_SHARDS=2 leg the
    # baseline must stay the in-process serial solver, or the equivalence
    # test would compare sharded against sharded.
    pipeline = KRRPipeline(h=data.h, lam=data.lam, solver="hss",
                           hss_options=TIGHT, seed=0, shards=1)
    report = pipeline.run(data.X_train, data.y_train, data.X_test,
                          data.y_test, dataset_name="susy")
    return pipeline, report


# ---------------------------------------------------------------------------
# ShardPlan
# ---------------------------------------------------------------------------

class TestShardPlan:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 5, 8])
    def test_partition_and_determinism(self, clustered_tree, n_shards):
        tree = clustered_tree.tree
        plan = ShardPlan.from_tree(tree, n_shards)
        assert plan.n_shards == n_shards
        # Boundaries partition [0, n) and every shard is non-empty.
        assert plan.boundaries[0] == 0 and plan.boundaries[-1] == tree.n
        assert (plan.shard_sizes() > 0).all()
        # Subtrees are valid ClusterTrees of exactly the shard sizes.
        for s in range(n_shards):
            sub = plan.subtree(s)
            assert sub.n == plan.shard_size(s)
            assert sub.node(sub.root).start == 0
        # Bitwise deterministic: a rebuild yields the identical plan.
        assert plan == ShardPlan.from_tree(tree, n_shards)

    def test_pair_ownership(self, clustered_tree):
        plan = ShardPlan.from_tree(clustered_tree.tree, 4)
        pairs = plan.pairs()
        assert len(pairs) == 6
        # Every pair is owned by exactly one of its members, and every
        # shard's owned set is consistent with the global rule.
        owned = [p for s in range(4) for p in plan.owned_pairs(s)]
        assert sorted(owned) == sorted(pairs)
        for (s, t) in pairs:
            assert plan.pair_owner(s, t) in (s, t)

    def test_too_many_shards_raises(self, clustered_tree):
        n_leaves = len(clustered_tree.tree.leaves())
        with pytest.raises(ValueError, match="leaves"):
            ShardPlan.from_tree(clustered_tree.tree, n_leaves + 1)

    def test_roundtrip_through_serving_serialize(self, clustered_tree, tmp_path):
        plan = ShardPlan.from_tree(clustered_tree.tree, 3)
        arrays = shard_plan_to_arrays(plan)
        # Through an actual archive, like any other persisted payload.
        path = os.path.join(tmp_path, "plan.npz")
        np.savez(path, **arrays)
        with np.load(path) as npz:
            loaded = {k: npz[k] for k in npz.files}
        restored = shard_plan_from_arrays(loaded, clustered_tree.tree)
        assert restored == plan
        assert np.array_equal(restored.boundaries, plan.boundaries)
        assert [t.n for t in restored.subtrees()] == \
            [t.n for t in plan.subtrees()]


def test_sharded_only_options_ignored_on_serial_path(monkeypatch,
                                                     small_problem):
    """solver_options documented for the sharded path must not crash a
    single-process fit (they are ignored, like KRRPipeline's knobs)."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    data = small_problem
    clf = KernelRidgeClassifier(
        h=data.h, lam=data.lam, solver="hss", seed=0,
        solver_options={"hss_options": TIGHT, "collect_factors": False,
                        "coupling_rel_tol": 1e-5, "grid": None})
    clf.fit(data.X_train[:128], data.y_train[:128])
    assert clf.solver_.report.shards == 1


def test_resolve_shards(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert resolve_shards(None) == 1
    assert resolve_shards(3) == 3
    assert resolve_shards(0) >= 1
    monkeypatch.setenv("REPRO_SHARDS", "2")
    assert resolve_shards(None) == 2
    with pytest.raises(ValueError):
        resolve_shards(-1)


@pytest.mark.parametrize("garbage", ["junk", "0", "-1", "1.5"])
def test_resolve_shards_env_garbage_raises(monkeypatch, garbage):
    """Invalid/zero/negative REPRO_SHARDS must fail loudly, naming the
    variable, instead of being silently ignored."""
    monkeypatch.setenv("REPRO_SHARDS", garbage)
    with pytest.raises(ValueError, match="REPRO_SHARDS"):
        resolve_shards(None)
    # Explicit arguments bypass the environment entirely.
    assert resolve_shards(2) == 2


# ---------------------------------------------------------------------------
# Shared-memory transport
# ---------------------------------------------------------------------------

class TestComm:
    def test_shared_array_roundtrip(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6) * np.pi
        sa = SharedArray.from_array(a)
        try:
            spec = sa.spec
            assert isinstance(spec, ArraySpec)
            attached = SharedArray.attach(spec)
            assert np.array_equal(attached.array, a)
            attached.close()
            with pytest.raises(RuntimeError):
                _ = attached.array
        finally:
            sa.unlink()

    def test_block_channel_moves_arrays(self):
        queue = multiprocessing.get_context("spawn").Queue()
        sender, receiver = BlockChannel(queue), BlockChannel(queue)
        payload = {"k": 3}
        a = np.random.default_rng(0).standard_normal((8, 3))
        sender.send("data", payload, arrays={"a": a, "empty": np.zeros((0, 2))})
        tag, got_payload, arrays = receiver.recv(timeout=10.0)
        assert tag == "data" and got_payload == payload
        assert np.array_equal(arrays["a"], a)
        assert arrays["empty"].shape == (0, 2)
        # The received arrays are private copies, not shared views.
        arrays["a"][0, 0] = -1.0
        sender.drain()
        queue.close()


# ---------------------------------------------------------------------------
# Sharded-vs-serial equivalence (acceptance criterion)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_matches_serial_predictions(small_problem, serial_run, shards):
    data = small_problem
    serial_pipeline, serial_report = serial_run
    dist = DistributedKRRPipeline(h=data.h, lam=data.lam, hss_options=TIGHT,
                                  seed=0, shards=shards)
    report = dist.run(data.X_train, data.y_train, data.X_test, data.y_test,
                      dataset_name="susy")
    assert report.shards == shards
    assert "shards" in report.row()

    s_serial = serial_pipeline.classifier_.decision_function(data.X_test)
    s_dist = dist.classifier_.decision_function(data.X_test)
    # Documented tolerance: both solves approximate the same system at the
    # pinned compression tolerance; the decision values track each other
    # to a small multiple of it and the predicted labels coincide.
    rel_dev = np.max(np.abs(s_serial - s_dist)) / np.max(np.abs(s_serial))
    assert rel_dev < 5e-3, f"decision values deviate by {rel_dev:.2e}"
    assert np.array_equal(serial_pipeline.classifier_.predict(data.X_test),
                          dist.classifier_.predict(data.X_test))
    assert report.accuracy == pytest.approx(serial_report.accuracy, abs=1e-12)

    # The sharded serving front-end reproduces the sharded classifier.
    with dist.sharded_service(batch_size=64, cache_size=32) as svc:
        assert svc.n_shards == shards
        labels = svc.predict_many(data.X_test)
        scores = svc.decision_many(data.X_test)
    assert np.array_equal(labels, dist.classifier_.predict(data.X_test))
    assert np.allclose(scores, s_dist, rtol=1e-9, atol=1e-11)


def test_sharded_training_is_deterministic(small_problem):
    data = small_problem
    weights = []
    for _ in range(2):
        clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                    shards=2, seed=0,
                                    solver_options={"hss_options": TIGHT})
        clf.fit(data.X_train, data.y_train)
        weights.append(clf.weights_.copy())
        assert clf.solver_.report.shards == 2
    assert np.array_equal(weights[0], weights[1])


def test_sharded_service_on_plain_model(small_problem):
    """Prediction sharding works on any fitted model, no plan needed."""
    data = small_problem
    clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="dense")
    clf.fit(data.X_train, data.y_train)
    with ShardedPredictionService(clf, shards=3, batch_size=64) as svc:
        labels = svc.predict_many(data.X_test)
        scores = svc.decision_many(data.X_test)
    assert np.array_equal(labels, clf.predict(data.X_test))
    assert np.allclose(scores, clf.decision_function(data.X_test),
                       rtol=1e-9, atol=1e-11)
    # Counters are summed over the per-shard engines, each of which saw
    # every query of both calls.
    assert svc.stats().queries == 3 * 2 * data.X_test.shape[0]


# ---------------------------------------------------------------------------
# Fail-fast on worker crashes
# ---------------------------------------------------------------------------

def test_worker_crash_fails_fast_without_orphans(clustered_tree):
    result = clustered_tree
    plan = ShardPlan.from_tree(result.tree, 2)
    coordinator = Coordinator(plan, result.X, GaussianKernel(h=1.0), 1.0,
                              hss_options=HSSOptions(rel_tol=1e-2),
                              response_timeout=120.0)
    try:
        coordinator.start()
        coordinator.fit()
        grid = coordinator.grid
        processes = [w.process for w in grid._workers]
        assert all(p.is_alive() for p in processes)
        # Kill one worker mid-protocol, then ask for work: the coordinator
        # must raise promptly instead of hanging on the dead queue.
        grid._workers[0].request.send("_crash")
        t0 = time.monotonic()
        with pytest.raises(DistributedError):
            coordinator.solve(np.ones(result.tree.n))
        elapsed = time.monotonic() - t0
        assert elapsed < 60.0, f"fail-fast took {elapsed:.1f}s"
        # No orphaned processes: the failed session tears everything down.
        wait_until(lambda: not any(p.is_alive() for p in processes),
                   timeout=10.0, interval=0.05,
                   message="worker processes were orphaned")
        assert not any(p.is_alive() for p in processes)
        assert grid._workers == []
        assert not grid.running
    finally:
        coordinator.shutdown()


def test_solve_after_close_uses_collected_factors(small_problem):
    data = small_problem
    clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                shards=2, seed=0,
                                solver_options={"hss_options": TIGHT})
    clf.fit(data.X_train, data.y_train)  # fit() closes the solver afterwards
    assert not clf.solver_.coordinator_.running
    # The per-shard ULV factors were shipped back during fit, so the closed
    # solver still answers new right-hand sides — in-process, no workers.
    rhs = np.random.default_rng(5).standard_normal(data.X_train.shape[0])
    w = clf.solver_.solve(rhs)
    serial = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
                                   seed=0,
                                   solver_options={"hss_options": TIGHT})
    serial.fit(data.X_train, data.y_train)
    w_ref = serial.solver_.solve(rhs)
    rel = np.linalg.norm(w - w_ref) / np.linalg.norm(w_ref)
    assert rel < 5e-3, f"post-close solve deviates by {rel:.2e}"
    assert clf.predict(data.X_test).shape == (data.X_test.shape[0],)


def test_solve_after_close_raises_without_collected_factors(small_problem):
    data = small_problem
    clf = KernelRidgeClassifier(
        h=data.h, lam=data.lam, solver="hss", shards=2, seed=0,
        solver_options={"hss_options": TIGHT, "collect_factors": False})
    clf.fit(data.X_train, data.y_train)  # fit() closes the solver afterwards
    with pytest.raises(RuntimeError, match="refit"):
        clf.solver_.solve(np.ones(data.X_train.shape[0]))
    # Predictions still work: the weights live in this process.
    assert clf.predict(data.X_test).shape == (data.X_test.shape[0],)


# ---------------------------------------------------------------------------
# Warm worker grids
# ---------------------------------------------------------------------------

class TestWarmGrid:
    def test_second_fit_spawns_zero_processes(self, small_problem):
        data = small_problem
        solver = None
        try:
            solver = _make_distributed_solver()
            problem = _cluster_problem(data)
            solver.fit(*problem)
            grid = solver._owned_grid
            assert grid is not None and grid.running
            assert grid.spawn_count == 2
            assert not solver.warm_start_
            pids = [w.process.pid for w in grid._workers]
            solver.fit(*problem)
            assert solver.warm_start_
            assert solver._owned_grid is grid
            assert grid.spawn_count == 2, "warm fit must spawn zero processes"
            assert [w.process.pid for w in grid._workers] == pids
        finally:
            if solver is not None:
                solver.close()

    def test_warm_fits_bitwise_equal_cold_fits(self, small_problem):
        data = small_problem
        problem = _cluster_problem(data)
        rhs = np.random.default_rng(11).standard_normal(problem[0].shape[0])

        def cold_weights():
            solver = _make_distributed_solver()
            try:
                solver.fit(*problem)
                return solver.solve(rhs).copy()
            finally:
                solver.close()

        cold = [cold_weights(), cold_weights()]
        warm_solver = _make_distributed_solver()
        try:
            warm = []
            for _ in range(2):
                warm_solver.fit(*problem)
                warm.append(warm_solver.solve(rhs).copy())
        finally:
            warm_solver.close()
        for w, c in zip(warm, cold):
            assert np.array_equal(w, c), \
                "warm fits must be bitwise equal to cold fits"

    def test_explicit_grid_reused_and_left_running(self, small_problem):
        data = small_problem
        X_perm, tree, kernel, lam = _cluster_problem(data)
        plan = ShardPlan.from_tree(tree, 2)
        with WorkerGrid(plan, X_perm) as grid:
            for lam_sweep in (lam, 2.0 * lam):
                solver = DistributedSolver(shards=2, hss_options=TIGHT,
                                           seed=0, grid=grid)
                solver.fit(X_perm, tree, kernel, lam_sweep)
                w = solver.solve(np.ones(tree.n))
                assert w.shape == (tree.n,)
                solver.close()           # must NOT stop the external grid
                assert grid.running
            assert grid.spawn_count == 2
            # An incompatible fit on an explicit grid is an error, not a
            # silent respawn.
            bad_X = X_perm + 1.0
            solver = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                       grid=grid)
            with pytest.raises(ValueError, match="incompatible"):
                solver.fit(bad_X, tree, kernel, lam)
        assert not grid.running

    def test_stale_coordinator_never_mixes_fits(self, small_problem):
        """Two solvers on one shared grid: a later fit must not corrupt
        the earlier solver's solves (the workers' resident factors belong
        to the newest fit only)."""
        data = small_problem
        X_perm, tree, kernel, lam = _cluster_problem(data)
        plan = ShardPlan.from_tree(tree, 2)
        rhs = np.random.default_rng(13).standard_normal(tree.n)
        with WorkerGrid(plan, X_perm) as grid:
            s1 = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                   grid=grid)
            s1.fit(X_perm, tree, kernel, lam)
            w1_live = s1.solve(rhs)
            assert s1.coordinator_.current
            s2 = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                   grid=grid)
            s2.fit(X_perm, tree, kernel, 100.0 * lam)
            # s1's coordinator is now stale; its solve must fall back to
            # the factors collected at fit time and stay correct.
            assert not s1.coordinator_.current
            with pytest.raises(RuntimeError, match="stale"):
                s1.coordinator_.solve(rhs)
            w1_again = s1.solve(rhs)
            assert np.allclose(w1_again, w1_live, rtol=1e-10, atol=1e-12)
            # Without collected factors the stale solver fails loudly
            # instead of returning silently wrong results.
            s3 = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                   grid=grid, collect_factors=False)
            s3.fit(X_perm, tree, kernel, lam)
            s2.fit(X_perm, tree, kernel, lam)   # steals the grid again
            with pytest.raises(RuntimeError, match="refit"):
                s3.solve(rhs)

    def test_lambda_refit_zero_spawns_zero_recompressions(self, small_problem):
        """A λ-only refit on a warm grid keeps every process and every
        local compression: the workers only redo their ULV and the
        coordinator only remerges the capacitance system."""
        data = small_problem
        problem = _cluster_problem(data)
        X_perm, tree, kernel, lam = problem
        rhs = np.random.default_rng(17).standard_normal(tree.n)
        solver = _make_distributed_solver()
        try:
            solver.fit(*problem)
            grid = solver._owned_grid
            pids = [w.process.pid for w in grid._workers]
            assert solver.compression_count == 1
            solver.refit(2.0 * lam)
            assert grid.spawn_count == 2, "refit must spawn zero processes"
            assert [w.process.pid for w in grid._workers] == pids
            assert solver.compression_count == 1, \
                "refit must perform zero recompressions"
            assert solver.report.refits == 1
            assert solver.coordinator_.fit_info["recompressions"] == 0
            w_refit = solver.solve(rhs).copy()
        finally:
            solver.close()

        # The refit refreshed the collected factors (ULV payload +
        # capacitance only): post-close in-process solves must reproduce
        # the live refitted solve to roundoff (same contract as the
        # collected factors of a full fit).
        w_closed = solver.solve(rhs)
        assert np.allclose(w_closed, w_refit, rtol=1e-10, atol=1e-12), \
            "refreshed factors must reproduce the live refitted solve"

        # The refit solution is bitwise equal to a cold distributed fit at
        # the same λ (identical λ-free compressions + identical shift).
        cold = _make_distributed_solver()
        try:
            cold.fit(X_perm, tree, kernel, 2.0 * lam)
            w_cold = cold.solve(rhs).copy()
        finally:
            cold.close()
        assert np.array_equal(w_refit, w_cold)

        # And matches the serial solver within the sharded tolerance (both
        # systems live in the same permuted ordering, as does ``rhs``).
        serial = HSSSolver(hss_options=TIGHT, seed=0)
        try:
            serial.fit(X_perm, tree, kernel, 2.0 * lam)
            serial_w = serial.solve(rhs)
        finally:
            serial.close()
        rel_dev = (np.linalg.norm(w_refit - serial_w)
                   / np.linalg.norm(serial_w))
        assert rel_dev < 1e-3

    def test_refit_respects_fit_generation_guard(self, small_problem):
        """A stale coordinator must not refit a grid a newer fit owns."""
        data = small_problem
        X_perm, tree, kernel, lam = _cluster_problem(data)
        plan = ShardPlan.from_tree(tree, 2)
        with WorkerGrid(plan, X_perm) as grid:
            s1 = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                   grid=grid)
            s1.fit(X_perm, tree, kernel, lam)
            s2 = DistributedSolver(shards=2, hss_options=TIGHT, seed=0,
                                   grid=grid)
            s2.fit(X_perm, tree, kernel, 2.0 * lam)
            # s1's coordinator is stale: its live refit path must refuse,
            # and the solver falls back to its collected factors instead.
            with pytest.raises(RuntimeError, match="stale"):
                s1.coordinator_.refit(lam)
            s1.refit(3.0 * lam)  # offline refit over collected factors
            # ... and s1's refit must not have disturbed s2's live state.
            assert s2.coordinator_.current
            # A refit through s2 advances the generation, flipping any
            # other coordinator to stale — same guard as a full fit.
            gen_before = grid.fit_generation
            s2.refit(4.0 * lam)
            assert grid.fit_generation == gen_before + 1
            assert s2.coordinator_.current

    def test_offline_refit_after_close_matches_cold_fit(self, small_problem):
        """refit() on a closed solver re-factors the collected λ-free
        factors in-process and still equals a cold distributed fit."""
        data = small_problem
        problem = _cluster_problem(data)
        X_perm, tree, kernel, lam = problem
        rhs = np.random.default_rng(19).standard_normal(tree.n)
        solver = _make_distributed_solver()
        try:
            solver.fit(*problem)
        finally:
            solver.close()
        solver.refit(2.0 * lam)
        w_offline = solver.solve(rhs).copy()

        cold = _make_distributed_solver()
        try:
            cold.fit(X_perm, tree, kernel, 2.0 * lam)
            w_cold = cold.solve(rhs).copy()
        finally:
            cold.close()
        assert np.array_equal(w_offline, w_cold)

    def test_restarted_grid_reads_as_stale(self, clustered_tree):
        """shutdown()+start() respawns factor-less workers; a coordinator
        fitted before the restart must hit the stale guard, not drive
        solves against the fresh processes."""
        result = clustered_tree
        plan = ShardPlan.from_tree(result.tree, 2)
        grid = WorkerGrid(plan, result.X)
        try:
            coordinator = Coordinator.on_grid(
                grid, GaussianKernel(h=1.0), 1.0,
                hss_options=HSSOptions(rel_tol=1e-2))
            coordinator.fit()
            assert coordinator.current
            grid.shutdown()
            grid.start()
            assert not coordinator.current
            with pytest.raises(RuntimeError, match="stale"):
                coordinator.solve(np.ones(result.tree.n))
        finally:
            grid.shutdown()


def _cluster_problem(data):
    """Cluster the bundle's training half once; return (X_perm, tree, k, lam)."""
    result = cluster(data.X_train, method="two_means", leaf_size=16, seed=0)
    return result.X, result.tree, GaussianKernel(h=data.h), data.lam


def _make_distributed_solver():
    return DistributedSolver(shards=2, hss_options=TIGHT, seed=0)
