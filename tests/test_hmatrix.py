"""Tests for the H-matrix format: geometry, admissibility, build, matvec, sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.config import HMatrixOptions, HSSOptions
from repro.hmatrix import (BlockClusterTree, BoundingBox, ClusterGeometry,
                           HMatrixSampler, build_hmatrix,
                           centroid_admissibility, cluster_bounding_boxes,
                           cluster_geometries, strong_admissibility)
from repro.hss import build_hss_randomized
from repro.kernels import GaussianKernel, ShiftedKernelOperator


def _clustered_points(n=300, d=4, n_clusters=6, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_clusters, d)) * 6.0
    X = centers[rng.integers(n_clusters, size=n)] + 0.4 * rng.standard_normal((n, d))
    return X


@pytest.fixture()
def hmatrix_setup():
    X = _clustered_points()
    result = cluster(X, method="two_means", leaf_size=16, seed=0)
    op = ShiftedKernelOperator(result.X, GaussianKernel(h=1.5), 1.0)
    return result, op


class TestBoundingBox:
    def test_of_points_and_diameter(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        box = BoundingBox.of_points(pts)
        np.testing.assert_allclose(box.lower, [0, 0])
        np.testing.assert_allclose(box.upper, [3, 4])
        assert box.diameter == pytest.approx(5.0)
        np.testing.assert_allclose(box.center, [1.5, 2.0])

    def test_distance_disjoint_and_overlapping(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = BoundingBox(np.array([4.0, 0.0]), np.array([5.0, 1.0]))
        c = BoundingBox(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        assert a.distance(b) == pytest.approx(3.0)
        assert a.distance(c) == 0.0

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            BoundingBox(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            BoundingBox.of_points(np.zeros((0, 2)))


class TestClusterGeometry:
    def test_of_points(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        g = ClusterGeometry.of_points(pts)
        np.testing.assert_allclose(g.centroid, [1.0, 0.0])
        assert g.radius == pytest.approx(1.0)
        assert g.size == 2

    def test_merge_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        a_pts = rng.standard_normal((30, 3))
        b_pts = rng.standard_normal((20, 3)) + 5.0
        merged = ClusterGeometry.merge(ClusterGeometry.of_points(a_pts),
                                       ClusterGeometry.of_points(b_pts))
        direct = ClusterGeometry.of_points(np.vstack([a_pts, b_pts]))
        np.testing.assert_allclose(merged.centroid, direct.centroid, atol=1e-10)
        assert merged.radius == pytest.approx(direct.radius, rel=1e-10)
        assert merged.size == 50

    def test_geometries_cover_all_nodes(self, hmatrix_setup):
        result, _ = hmatrix_setup
        geoms = cluster_geometries(result.X, result.tree)
        assert set(geoms) == set(range(result.tree.n_nodes))
        boxes = cluster_bounding_boxes(result.X, result.tree)
        root_geom = geoms[result.tree.root]
        np.testing.assert_allclose(root_geom.box.lower,
                                   boxes[result.tree.root].lower)


class TestAdmissibility:
    def test_strong_admissibility_far_boxes(self):
        a = BoundingBox(np.zeros(2), np.ones(2))
        b = BoundingBox(np.array([10.0, 10.0]), np.array([11.0, 11.0]))
        assert strong_admissibility(a, b, eta=1.5)
        assert not strong_admissibility(a, a, eta=1.5)

    def test_centroid_admissibility(self):
        g1 = ClusterGeometry.of_points(np.random.default_rng(0).standard_normal((50, 3)))
        g2 = ClusterGeometry.of_points(
            np.random.default_rng(1).standard_normal((50, 3)) + 20.0)
        assert centroid_admissibility(g1, g2, eta=1.0)
        assert not centroid_admissibility(g1, g1, eta=1.0)

    def test_invalid_eta(self):
        g = ClusterGeometry.of_points(np.zeros((2, 2)) + np.arange(2)[:, None])
        with pytest.raises(ValueError):
            centroid_admissibility(g, g, eta=0.0)


class TestBlockClusterTree:
    def test_leaves_tile_matrix(self, hmatrix_setup):
        result, _ = hmatrix_setup
        geoms = cluster_geometries(result.X, result.tree)
        btree = BlockClusterTree(result.tree, geoms, eta=1.0, leaf_size=32)
        assert btree.coverage_check()
        assert len(btree.admissible_leaves()) + len(btree.dense_leaves()) == \
            len(btree.leaves())

    def test_box_criterion_also_valid(self, hmatrix_setup):
        result, _ = hmatrix_setup
        geoms = cluster_geometries(result.X, result.tree)
        btree = BlockClusterTree(result.tree, geoms, eta=1.5, leaf_size=32,
                                 criterion="box")
        assert btree.coverage_check()

    def test_invalid_arguments(self, hmatrix_setup):
        result, _ = hmatrix_setup
        geoms = cluster_geometries(result.X, result.tree)
        with pytest.raises(ValueError):
            BlockClusterTree(result.tree, geoms, eta=0.0)
        with pytest.raises(ValueError):
            BlockClusterTree(result.tree, geoms, criterion="nope")


class TestHMatrixBuild:
    def test_accuracy_and_compression(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree,
                           HMatrixOptions(rel_tol=1e-6))
        A = op.to_dense()
        err = np.linalg.norm(hm.to_dense() - A) / np.linalg.norm(A)
        assert err < 1e-4
        assert hm.nbytes < A.nbytes  # compressed
        stats = hm.statistics()
        assert stats.admissible_blocks > 0
        assert stats.total_bytes == hm.nbytes

    def test_matvec_matches_dense(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-7))
        A = op.to_dense()
        rng = np.random.default_rng(2)
        v = rng.standard_normal(hm.n)
        V = rng.standard_normal((hm.n, 3))
        np.testing.assert_allclose(hm.matvec(v), A @ v, atol=1e-5 * np.linalg.norm(A @ v))
        np.testing.assert_allclose(hm.rmatvec(v), A.T @ v,
                                   atol=1e-5 * np.linalg.norm(A @ v))
        np.testing.assert_allclose(hm.matmat(V), A @ V,
                                   atol=1e-5 * np.linalg.norm(A @ V))

    def test_matvec_shape_check(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree)
        with pytest.raises(ValueError):
            hm.matvec(np.zeros(3))

    def test_tolerance_controls_memory(self, hmatrix_setup):
        result, op = hmatrix_setup
        loose = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-1))
        tight = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-8))
        assert loose.nbytes <= tight.nbytes


class TestHMatrixSampler:
    def test_sampler_products_and_elements(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-7))
        sampler = HMatrixSampler(hm, op)
        A = op.to_dense()
        V = np.random.default_rng(3).standard_normal((hm.n, 4))
        np.testing.assert_allclose(sampler.matmat(V), A @ V,
                                   atol=1e-5 * np.linalg.norm(A @ V))
        rows = np.array([0, 5, 10])
        cols = np.array([1, 2])
        # Element extraction must be exact (it goes to the exact operator).
        np.testing.assert_allclose(sampler.block(rows, cols),
                                   A[np.ix_(rows, cols)], atol=1e-12)
        assert sampler.n == hm.n
        assert sampler.matvec_sweeps >= 1

    def test_hss_built_through_sampler_matches_exact(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree, HMatrixOptions(rel_tol=1e-7))
        sampler = HMatrixSampler(hm, op)
        opts = HSSOptions(rel_tol=1e-5)
        hss_exact, _ = build_hss_randomized(op, result.tree, opts, rng=0)
        hss_sampled, _ = build_hss_randomized(sampler, result.tree, opts, rng=0)
        A = op.to_dense()
        err_exact = np.linalg.norm(hss_exact.to_dense() - A) / np.linalg.norm(A)
        err_sampled = np.linalg.norm(hss_sampled.to_dense() - A) / np.linalg.norm(A)
        assert err_sampled < 50 * max(err_exact, 1e-6)

    def test_dimension_mismatch(self, hmatrix_setup):
        result, op = hmatrix_setup
        hm = build_hmatrix(op, result.X, result.tree)
        other = ShiftedKernelOperator(result.X[:-10], GaussianKernel(h=1.0), 1.0)
        with pytest.raises(ValueError):
            HMatrixSampler(hm, other)
