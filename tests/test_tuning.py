"""Tests for the hyper-parameter tuning package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import gaussian_mixture
from repro.tuning import (BanditTuner, ContinuousParameter, GridSearch,
                          KRRObjective, LogUniformParameter, ParameterSpace,
                          RandomSearch, TuningResult)


def _quadratic_objective(optimum=(1.0, 2.0)):
    """A smooth objective with a unique maximum at ``optimum``."""

    def objective(config):
        h, lam = config["h"], config["lam"]
        return -((np.log(h) - np.log(optimum[0])) ** 2
                 + (np.log(lam) - np.log(optimum[1])) ** 2)

    return objective


@pytest.fixture(scope="module")
def krr_objective():
    X_train, y_train = gaussian_mixture(200, 4, n_components=4, separation=3.0,
                                        noise=0.8, seed=0)
    X_val, y_val = gaussian_mixture(80, 4, n_components=4, separation=3.0,
                                    noise=0.8, seed=1)
    return KRRObjective(X_train, y_train, X_val, y_val)


class TestParameterSpace:
    def test_sampling_within_bounds(self):
        space = ParameterSpace.krr_default(h_bounds=(0.1, 10), lam_bounds=(0.5, 5))
        rng = np.random.default_rng(0)
        for _ in range(50):
            cfg = space.sample(rng)
            assert 0.1 <= cfg["h"] <= 10
            assert 0.5 <= cfg["lam"] <= 5

    def test_grid_size(self):
        space = ParameterSpace.krr_default()
        grid = space.grid(5)
        assert len(grid) == 25
        hs = sorted({cfg["h"] for cfg in grid})
        assert len(hs) == 5

    def test_round_trip_array(self):
        space = ParameterSpace([ContinuousParameter("a", 0, 1),
                                LogUniformParameter("b", 0.1, 10)])
        cfg = {"a": 0.5, "b": 2.0}
        arr = space.to_array(cfg)
        back = space.from_array(arr)
        assert back == pytest.approx(cfg)

    def test_clip(self):
        space = ParameterSpace([ContinuousParameter("a", 0.0, 1.0)])
        assert space.clip({"a": 5.0})["a"] == 1.0
        assert space.clip({"a": -2.0})["a"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpace([])
        with pytest.raises(ValueError):
            ContinuousParameter("x", 1.0, 0.0)
        with pytest.raises(ValueError):
            LogUniformParameter("x", -1.0, 1.0)
        with pytest.raises(ValueError):
            ParameterSpace([ContinuousParameter("x", 0, 1),
                            ContinuousParameter("x", 0, 2)])


class TestTuningResult:
    def test_record_and_best(self):
        result = TuningResult()
        result.record({"h": 1.0}, 0.5)
        result.record({"h": 2.0}, 0.8)
        result.record({"h": 3.0}, 0.3)
        assert result.best_value == 0.8
        assert result.best_config == {"h": 2.0}
        assert result.evaluations == 3
        assert result.best_so_far() == [0.5, 0.8, 0.8]


class TestGridSearch:
    def test_finds_optimum_on_grid(self):
        space = ParameterSpace.krr_default(h_bounds=(0.5, 2.0), lam_bounds=(1.0, 4.0))
        search = GridSearch(space, points_per_dim=9)
        result = search.optimize(_quadratic_objective())
        assert result.evaluations == 81
        assert result.best_config["h"] == pytest.approx(1.0, rel=0.2)
        assert result.best_config["lam"] == pytest.approx(2.0, rel=0.2)

    def test_max_evaluations_cap(self):
        space = ParameterSpace.krr_default()
        search = GridSearch(space, points_per_dim=10, max_evaluations=17)
        result = search.optimize(_quadratic_objective())
        assert result.evaluations == 17
        assert search.total_grid_size == 100


class TestRandomSearch:
    def test_respects_budget(self):
        space = ParameterSpace.krr_default()
        result = RandomSearch(space, budget=23, seed=0).optimize(_quadratic_objective())
        assert result.evaluations == 23

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RandomSearch(ParameterSpace.krr_default(), budget=0)


class TestBanditTuner:
    def test_beats_or_matches_random_on_smooth_objective(self):
        space = ParameterSpace.krr_default(h_bounds=(0.1, 10), lam_bounds=(0.1, 10))
        objective = _quadratic_objective()
        bandit = BanditTuner(space, budget=60, seed=1).optimize(objective)
        random = RandomSearch(space, budget=60, seed=1).optimize(objective)
        assert bandit.best_value >= random.best_value - 0.05

    def test_uses_all_techniques(self):
        space = ParameterSpace.krr_default()
        tuner = BanditTuner(space, budget=40, seed=2)
        tuner.optimize(_quadratic_objective())
        assert sum(tuner.technique_usage_.values()) == 40
        assert all(count >= 1 for count in tuner.technique_usage_.values())

    def test_respects_bounds(self):
        space = ParameterSpace.krr_default(h_bounds=(0.5, 2.0), lam_bounds=(0.5, 2.0))
        tuner = BanditTuner(space, budget=30, seed=3)
        result = tuner.optimize(_quadratic_objective())
        for entry in result.history:
            assert 0.5 <= entry["h"] <= 2.0
            assert 0.5 <= entry["lam"] <= 2.0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BanditTuner(ParameterSpace.krr_default(), budget=0)


class TestKRRObjective:
    def test_returns_accuracy_in_unit_interval(self, krr_objective):
        acc = krr_objective({"h": 1.0, "lam": 1.0})
        assert 0.0 <= acc <= 1.0

    def test_kernel_cache_reused_for_same_h(self, krr_objective):
        before = krr_objective.kernel_constructions
        krr_objective({"h": 2.0, "lam": 0.5})
        krr_objective({"h": 2.0, "lam": 5.0})
        after = krr_objective.kernel_constructions
        assert after - before == 1  # second call reused the cached kernel

    def test_best_tracking(self, krr_objective):
        config, value = krr_objective.best()
        assert "h" in config and "lam" in config
        assert 0.0 <= value <= 1.0

    def test_invalid_config(self, krr_objective):
        with pytest.raises(ValueError):
            krr_objective({"h": -1.0, "lam": 1.0})

    def test_reasonable_h_beats_extreme_h(self):
        X_train, y_train = gaussian_mixture(150, 3, n_components=4,
                                            separation=4.0, noise=0.5, seed=3)
        X_val, y_val = gaussian_mixture(60, 3, n_components=4, separation=4.0,
                                        noise=0.5, seed=4)
        obj = KRRObjective(X_train, y_train, X_val, y_val)
        good = obj({"h": 1.0, "lam": 0.5})
        terrible = obj({"h": 1e-3, "lam": 0.5})
        assert good >= terrible
