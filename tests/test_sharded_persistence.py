"""Persistence of ``shards > 1`` models (version-2 sharded artifacts).

The acceptance contract of the sharded-artifact schema:

* a model trained with ``shards=2`` round-trips through
  :class:`repro.serving.ModelStore` with its per-shard ULV factors and
  coupling state (``dist.*`` section, schema version 2);
* loaded **in a genuinely fresh process**, it predicts identically and
  ``solve()`` with a *new* right-hand side matches the serial HSS solver
  within the compression tolerance;
* the restored :class:`repro.distributed.ShardedULVSolver` reproduces the
  live distributed solves, re-saves losslessly, and feeds its shard plan
  to :class:`repro.distributed.ShardedPredictionService`;
* multi-class models (one multi-RHS distributed solve for all classes)
  persist the same way.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.config import HSSOptions
from repro.datasets import load_dataset
from repro.distributed import ShardedPredictionService, ShardedULVSolver
from repro.krr import KernelRidgeClassifier, OneVsAllClassifier
from repro.krr.solvers import HSSSolver
from repro.serving import ModelStore, read_artifact

#: tight compression tolerance, as in tests/test_distributed.py: keeps the
#: sharded-vs-serial deviation far below the decision margins
TIGHT = HSSOptions(rel_tol=1e-6, initial_samples=48)

_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture(scope="module")
def problem():
    return load_dataset("susy", n_train=384, n_test=96, seed=0)


@pytest.fixture(scope="module")
def sharded_model(problem):
    clf = KernelRidgeClassifier(h=problem.h, lam=problem.lam, solver="hss",
                                shards=2, seed=0,
                                solver_options={"hss_options": TIGHT})
    clf.fit(problem.X_train, problem.y_train)
    return clf


@pytest.fixture(scope="module")
def serial_reference(problem, sharded_model):
    """Serial HSS solve of the same permuted system, for tolerance checks."""
    solver = HSSSolver(hss_options=TIGHT, seed=0)
    solver.fit(sharded_model.X_train_, sharded_model.clustering_.tree,
               sharded_model.kernel, sharded_model.lam)
    yield solver
    solver.close()


def test_sharded_artifact_schema_v2(tmp_path, sharded_model):
    store = ModelStore(tmp_path)
    record = store.save(sharded_model, "susy-sharded")
    assert record.version == 2
    artifact = read_artifact(record.archive_path)
    assert artifact.version == 2
    assert artifact.config["solver_state"] == "sharded"
    assert artifact.config["shards"] == 2


def test_unsharded_artifacts_stay_version_1(tmp_path, problem):
    """Writers stamp the lowest expressible version: models without a
    ``dist.*`` section remain readable by version-1 libraries."""
    # shards=1 pinned explicitly so the CI REPRO_SHARDS=2 leg still
    # exercises the single-process save path here.
    clf = KernelRidgeClassifier(h=problem.h, lam=problem.lam, solver="hss",
                                seed=0, shards=1,
                                solver_options={"hss_options": TIGHT})
    clf.fit(problem.X_train, problem.y_train)
    record = ModelStore(tmp_path).save(clf, "plain-hss")
    assert record.version == 1
    assert read_artifact(record.archive_path).version == 1


def test_fresh_process_load_and_resolve(tmp_path, problem, sharded_model,
                                        serial_reference):
    """Save, load in a *fresh* interpreter, solve a brand-new RHS there."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "susy-sharded")
    rhs = np.random.default_rng(42).standard_normal(
        problem.X_train.shape[0])
    np.save(tmp_path / "rhs.npy", rhs)
    np.save(tmp_path / "queries.npy", problem.X_test)

    script = textwrap.dedent("""
        import sys
        import numpy as np
        from repro.serving import ModelStore

        root, out = sys.argv[1], sys.argv[2]
        store = ModelStore(root)
        model = store.load("susy-sharded")
        rhs = np.load(f"{root}/rhs.npy")
        np.savez(out,
                 w=model.solver_.solve(rhs),
                 labels=model.predict(np.load(f"{root}/queries.npy")),
                 solver=type(model.solver_).__name__)
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    out_path = tmp_path / "fresh.npz"
    result = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path), str(out_path)],
        env=env, capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"fresh-process load failed:\n{result.stderr}")

    with np.load(out_path) as npz:
        assert str(npz["solver"]) == "ShardedULVSolver"
        w_fresh = npz["w"]
        labels_fresh = npz["labels"]
    # Predictions are bitwise identical across the process boundary.
    assert np.array_equal(labels_fresh,
                          sharded_model.predict(problem.X_test))
    # A new RHS solved in the fresh process matches the serial solver
    # within the (tight) compression tolerance.
    w_serial = serial_reference.solve(rhs)
    rel = np.linalg.norm(w_fresh - w_serial) / np.linalg.norm(w_serial)
    assert rel < 5e-3, f"fresh-process re-solve deviates by {rel:.2e}"
    # ... and reproduces the training session's own in-process factors.
    assert np.allclose(w_fresh, sharded_model.solver_.solve(rhs),
                       rtol=1e-12, atol=1e-12)


def test_loaded_solver_roundtrips_again(tmp_path, problem, sharded_model):
    """load -> re-save -> load keeps the sharded solver fully functional."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "gen0")
    gen1 = store.load("gen0")
    assert isinstance(gen1.solver_, ShardedULVSolver)
    store.save(gen1, "gen1")
    gen2 = store.load("gen1")
    assert isinstance(gen2.solver_, ShardedULVSolver)
    rhs = np.random.default_rng(3).standard_normal(problem.X_train.shape[0])
    assert np.array_equal(gen1.solver_.solve(rhs), gen2.solver_.solve(rhs))
    assert np.array_equal(gen1.predict(problem.X_test),
                          gen2.predict(problem.X_test))


def test_loaded_model_drives_sharded_service(tmp_path, problem, sharded_model):
    """The restored plan cuts the serving engines at training boundaries."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "served")
    loaded = store.load("served")
    assert loaded.solver_.plan_.n_shards == 2
    with ShardedPredictionService(loaded, batch_size=64) as svc:
        assert svc.n_shards == 2
        labels = svc.predict_many(problem.X_test)
    assert np.array_equal(labels, sharded_model.predict(problem.X_test))


def test_restored_solver_rejects_refit(tmp_path, problem, sharded_model):
    store = ModelStore(tmp_path)
    store.save(sharded_model, "frozen")
    loaded = store.load("frozen")
    with pytest.raises(RuntimeError, match="cannot.*refit"):
        loaded.solver_.fit(loaded.X_train_, loaded.clustering_.tree,
                           loaded.kernel, loaded.lam)


def test_sharded_artifact_reload_then_refit(tmp_path, problem, sharded_model):
    """A reloaded ``shards=2`` model re-factors at a new λ offline: the
    persisted λ-free per-shard compressions are ULV-refactored in-process
    and the result equals a cold sharded fit at that λ (bitwise — the
    collected factors are the cold fit's factors)."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "refit-me")
    loaded = store.load("refit-me")
    assert isinstance(loaded.solver_, ShardedULVSolver)
    assert loaded.solver_.factors.hss_lam_free
    new_lam = 2.0 * problem.lam
    loaded.refit(new_lam)
    assert loaded.lam == new_lam

    cold = KernelRidgeClassifier(h=problem.h, lam=new_lam, solver="hss",
                                 shards=2, seed=0,
                                 solver_options={"hss_options": TIGHT})
    cold.fit(problem.X_train, problem.y_train)
    np.testing.assert_array_equal(loaded.weights_, cold.weights_)

    # The refitted model re-saves consistently (refit keeps the persisted
    # ULV payload and capacitance matrix in sync).
    store.save(loaded, "refit-me-2")
    again = store.load("refit-me-2")
    np.testing.assert_array_equal(again.weights_, loaded.weights_)
    rhs = np.random.default_rng(23).standard_normal(
        problem.X_train.shape[0])
    np.testing.assert_array_equal(again.solver_.solve(rhs),
                                  loaded.solver_.solve(rhs))


def test_legacy_sharded_artifact_refuses_refit(tmp_path, sharded_model):
    """Artifacts without the λ-free marker (older writers) load and solve
    fine but refuse λ-only refits instead of double-shifting."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "legacy")
    loaded = store.load("legacy")
    loaded.solver_.factors.hss_lam_free = False  # simulate an old artifact
    with pytest.raises(RuntimeError, match="predates"):
        loaded.refit(1.0)


def test_failed_refit_state_is_never_persisted(tmp_path, sharded_model):
    """A ShardedULVSolver whose refit failed mid-way (_fitted=False, shards
    potentially at mixed λ) must refuse solves and must not ship its
    factors into an artifact."""
    store = ModelStore(tmp_path)
    store.save(sharded_model, "pre-fail")
    loaded = store.load("pre-fail")
    loaded.solver_._fitted = False  # what a mid-refit failure leaves behind
    with pytest.raises(RuntimeError, match="fitted"):
        loaded.solver_.solve(np.ones(loaded.X_train_.shape[0]))
    store.save(loaded, "post-fail")
    reloaded = store.load("post-fail")
    # Predictions (weights) survive; the inconsistent factorization does not.
    assert reloaded.solver_ is None
    np.testing.assert_array_equal(reloaded.weights_, loaded.weights_)


def test_multiclass_sharded_persistence(tmp_path, problem):
    """One-vs-all (multi-RHS distributed solve) persists and re-solves."""
    y_mc = ((problem.y_train > 0).astype(int)
            + (problem.X_train[:, 0] > 0).astype(int))
    ova = OneVsAllClassifier(h=problem.h, lam=problem.lam, solver="hss",
                             shards=2, seed=0,
                             solver_options={"hss_options": TIGHT})
    ova.fit(problem.X_train, y_mc)
    assert ova.weights_.shape == (problem.X_train.shape[0], ova.classes_.size)
    store = ModelStore(tmp_path)
    record = store.save(ova, "ova-sharded")
    assert record.version == 2
    loaded = store.load("ova-sharded")
    assert isinstance(loaded.solver_, ShardedULVSolver)
    assert np.array_equal(loaded.predict(problem.X_test),
                          ova.predict(problem.X_test))
    Y = np.random.default_rng(9).standard_normal(
        (problem.X_train.shape[0], 3))
    W = loaded.solver_.solve(Y)
    assert W.shape == Y.shape
    # The multi-RHS solve decomposes column-wise like the live solver's.
    assert np.allclose(W[:, 0], loaded.solver_.solve(Y[:, 0]),
                       rtol=1e-10, atol=1e-12)
