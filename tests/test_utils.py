"""Tests for repro.utils (validation, RNG, timing, byte accounting)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (Timer, TimingLog, as_generator, check_array_2d,
                         check_index_array, check_labels_binary,
                         check_non_negative, check_positive, check_square,
                         check_vector, format_bytes, megabytes,
                         nbytes_of_arrays, spawn_generators)
from repro.utils.bytes import dense_matrix_bytes
from repro.utils.validation import check_permutation, check_same_dimension


class TestValidation:
    def test_check_array_2d_accepts_lists(self):
        arr = check_array_2d([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_check_array_2d_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array_2d([1.0, 2.0])

    def test_check_array_2d_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array_2d([[1.0, np.nan]])

    def test_check_array_2d_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_array_2d(np.zeros((0, 3)))

    def test_check_vector_length(self):
        v = check_vector([1.0, 2.0, 3.0], length=3)
        assert v.shape == (3,)
        with pytest.raises(ValueError, match="length"):
            check_vector([1.0, 2.0], length=3)

    def test_check_square(self):
        check_square(np.eye(4))
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((3, 4)))

    def test_check_index_array_bounds(self):
        check_index_array([0, 1, 2], 3)
        with pytest.raises(ValueError):
            check_index_array([0, 5], 3)

    def test_check_permutation(self):
        check_permutation([2, 0, 1], 3)
        with pytest.raises(ValueError, match="permutation"):
            check_permutation([0, 0, 2], 3)

    def test_check_labels_binary(self):
        check_labels_binary([1, -1, 1])
        with pytest.raises(ValueError, match="-1/\\+1"):
            check_labels_binary([0, 1, 1])

    def test_check_positive_and_non_negative(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1.0, "x")

    def test_check_same_dimension(self):
        check_same_dimension(np.zeros((2, 3)), np.zeros((5, 3)))
        with pytest.raises(ValueError, match="same number of columns"):
            check_same_dimension(np.zeros((2, 3)), np.zeros((5, 4)))


class TestRandom:
    def test_as_generator_accepts_int_and_generator(self):
        g1 = as_generator(0)
        g2 = as_generator(0)
        assert g1.integers(1000) == g2.integers(1000)
        g3 = as_generator(g1)
        assert g3 is g1

    def test_spawn_generators_independent(self):
        gens = spawn_generators(7, 3)
        assert len(gens) == 3
        draws = [g.integers(10**9) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_generators_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer().start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert elapsed > 0
        assert t.elapsed >= elapsed

    def test_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timing_log_phase_and_merge(self):
        log = TimingLog()
        with log.phase("a"):
            time.sleep(0.005)
        log.add("b", 1.0)
        other = TimingLog()
        other.add("a", 2.0)
        log.merge(other)
        assert log.get("a") > 2.0
        assert log.get("b") == 1.0
        assert log.total() == pytest.approx(log.get("a") + 1.0)
        assert set(log.as_dict()) == {"a", "b"}


class TestBytes:
    def test_nbytes_of_arrays_ignores_none(self):
        arrays = [np.zeros(10), None, np.zeros((2, 2))]
        assert nbytes_of_arrays(arrays) == 10 * 8 + 4 * 8

    def test_megabytes(self):
        assert megabytes(2**20) == pytest.approx(1.0)

    def test_format_bytes_units(self):
        assert format_bytes(512).endswith("B")
        assert "KB" in format_bytes(2048)
        assert "MB" in format_bytes(5 * 2**20)

    def test_dense_matrix_bytes(self):
        assert dense_matrix_bytes(1000) == 1000 * 1000 * 8
        assert dense_matrix_bytes(10, 5, itemsize=4) == 200
        with pytest.raises(ValueError):
            dense_matrix_bytes(-1)
