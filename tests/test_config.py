"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (ClusteringOptions, HMatrixOptions, HSSOptions,
                          KRROptions)


class TestHSSOptions:
    def test_defaults_match_paper(self):
        opts = HSSOptions()
        assert opts.leaf_size == 16          # Section 4.3
        assert opts.rel_tol == pytest.approx(0.1)  # Section 5.2
        assert opts.symmetric is True

    def test_with_replaces_fields(self):
        opts = HSSOptions().with_(rel_tol=1e-4, leaf_size=32)
        assert opts.rel_tol == 1e-4
        assert opts.leaf_size == 32
        # original untouched (frozen dataclass)
        assert HSSOptions().rel_tol == pytest.approx(0.1)

    @pytest.mark.parametrize("kwargs", [
        {"leaf_size": 0},
        {"rel_tol": 0.0},
        {"rel_tol": -1.0},
        {"abs_tol": -1e-3},
        {"initial_samples": 0},
        {"sample_increment": 0},
        {"max_rank": 0},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            HSSOptions(**kwargs)


class TestHMatrixOptions:
    def test_defaults(self):
        opts = HMatrixOptions()
        assert opts.leaf_size >= 1
        assert opts.admissibility in ("centroid", "box")

    @pytest.mark.parametrize("kwargs", [
        {"leaf_size": 0},
        {"admissibility_eta": 0.0},
        {"admissibility": "bogus"},
        {"rel_tol": 0.0},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            HMatrixOptions(**kwargs)


class TestClusteringOptions:
    def test_defaults(self):
        opts = ClusteringOptions()
        assert opts.method == "two_means"
        assert opts.leaf_size == 16

    @pytest.mark.parametrize("kwargs", [
        {"leaf_size": 0},
        {"max_iter": 0},
        {"balance_threshold": 0.5},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            ClusteringOptions(**kwargs)


class TestKRROptions:
    def test_defaults(self):
        opts = KRROptions()
        assert opts.solver == "hss"
        assert opts.kernel == "gaussian"

    @pytest.mark.parametrize("kwargs", [
        {"h": 0.0},
        {"lam": -1.0},
        {"solver": "unknown"},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            KRROptions(**kwargs)
