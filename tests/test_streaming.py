"""Randomized equivalence tests of the streaming (Woodbury) update path.

The core claim of ``partial_fit``: after *any* interleaving of
``add_rows`` / ``remove_rows`` / ``refit(lam)``, the streamed model is
mathematically the model a cold ``fit`` would produce on the final
effective dataset — the Woodbury corrections are exact, so the only
daylight is compression tolerance.  The suite drives random op sequences
through three paths and checks them against a cold-fit oracle:

* **serial** — ops applied directly to a fitted classifier;
* **sharded** — the same ops against the process-sharded distributed
  solver (``shards=2``);
* **reloaded** — the model is saved/loaded mid-sequence and the
  remaining ops continue on the reloaded artifact (state round-trips
  bitwise, so this path must match the serial one exactly).

Plus the drift-budget contract: a forced breach flags ``stream_info_``
and ``recompress()`` is **bitwise** identical to a cold build on the
effective data in its current row order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HSSOptions
from repro.datasets import susy_like
from repro.hss import DriftBudget
from repro.krr import KernelRidgeClassifier, OneVsAllClassifier

#: tight compression so the cold-fit comparison tolerance is meaningful
TIGHT = {"hss_options": HSSOptions(rel_tol=1e-6, leaf_size=16)}

#: (solver name, solver_options, decision-function tolerance vs cold fit)
SOLVERS = [("dense", None, 1e-8), ("hss", TIGHT, 1e-3)]

N_BASE = 220
N_POOL = 64


def _data(seed=1):
    X, y = susy_like(N_BASE, seed=seed)
    pool_X, pool_y = susy_like(N_POOL, seed=seed + 100)
    X_test, _ = susy_like(50, seed=seed + 200)
    return X, y, pool_X, pool_y, X_test


def _random_ops(rng, n_start, pool_size, n_ops=6):
    """A random op sequence valid against a model of ``n_start`` rows.

    Each op is ``("add", k)``, ``("remove", indices)`` or
    ``("refit", lam)``; sizes are tracked so removals always index into
    the current effective ordering and never drain the training set.
    """
    ops = []
    n_eff, used = n_start, 0
    for _ in range(n_ops):
        kind = rng.choice(["add", "remove", "refit"])
        if kind == "add" and used < pool_size:
            k = int(rng.integers(1, min(8, pool_size - used) + 1))
            ops.append(("add", k))
            used += k
            n_eff += k
        elif kind == "remove" and n_eff > 20:
            k = int(rng.integers(1, 5))
            idx = rng.choice(n_eff, size=k, replace=False)
            ops.append(("remove", sorted(int(i) for i in idx)))
            n_eff -= k
        else:
            ops.append(("refit", float(rng.uniform(0.5, 2.0))))
    return ops


def _apply(clf, oracle_X, oracle_y, op, pool_X, pool_y, cursor):
    """Apply one op to the classifier and the oracle arrays in lockstep.

    ``oracle_X=None`` applies the op to the classifier only (used when a
    second classifier replays the same sequence).
    """
    kind, arg = op
    if kind == "add":
        rows = pool_X[cursor:cursor + arg]
        labels = pool_y[cursor:cursor + arg]
        clf.partial_fit(X_new=rows, y_new=labels)
        if oracle_X is not None:
            oracle_X = np.vstack([oracle_X, rows])
            oracle_y = np.concatenate([oracle_y, labels])
        cursor += arg
    elif kind == "remove":
        clf.partial_fit(remove=arg)
        if oracle_X is not None:
            oracle_X = np.delete(oracle_X, arg, axis=0)
            oracle_y = np.delete(oracle_y, arg)
    else:
        clf.refit(arg)
    return oracle_X, oracle_y, cursor


@pytest.mark.parametrize("solver,options,tol", SOLVERS,
                         ids=[s[0] for s in SOLVERS])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_interleaving_matches_cold_fit(solver, options, tol, seed):
    X, y, pool_X, pool_y, X_test = _data()
    rng = np.random.default_rng(seed)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver,
                                solver_options=options).fit(X, y)
    # the oracle tracks the model's own (permuted) training ordering
    oracle_X, oracle_y = clf.X_train_.copy(), clf._y_perm.copy()
    cursor = 0
    for op in _random_ops(rng, N_BASE, N_POOL):
        oracle_X, oracle_y, cursor = _apply(
            clf, oracle_X, oracle_y, op, pool_X, pool_y, cursor)

    # bookkeeping: the streamed training set is exactly the oracle's
    assert np.array_equal(clf.X_train_, oracle_X)
    assert np.array_equal(clf._y_perm, oracle_y)

    # equivalence: streamed decisions match a cold fit on the final data
    cold = KernelRidgeClassifier(h=1.0, lam=clf.lam, solver=solver,
                                 solver_options=options).fit(oracle_X,
                                                             oracle_y)
    diff = np.abs(clf.decision_function(X_test)
                  - cold.decision_function(X_test)).max()
    assert diff < tol, f"streamed vs cold-fit decision diff {diff:.3e}"


def test_sharded_interleaving_matches_serial_and_cold():
    X, y, pool_X, pool_y, X_test = _data()
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    sharded = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", shards=2,
                                    solver_options=TIGHT).fit(X, y)
    serial = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss",
                                   solver_options=TIGHT).fit(X, y)
    oracle_X, oracle_y = sharded.X_train_.copy(), sharded._y_perm.copy()
    cursor_a = cursor_b = 0
    dummy = (None, None)
    for op in _random_ops(rng_a, N_BASE, N_POOL, n_ops=5):
        oracle_X, oracle_y, cursor_a = _apply(
            sharded, oracle_X, oracle_y, op, pool_X, pool_y, cursor_a)
        _, _, cursor_b = _apply(serial, *dummy, op, pool_X, pool_y,
                                cursor_b)
    del rng_b

    assert np.array_equal(sharded.X_train_, oracle_X)
    d_serial = np.abs(sharded.decision_function(X_test)
                      - serial.decision_function(X_test)).max()
    assert d_serial < 1e-3, f"sharded vs serial diff {d_serial:.3e}"
    cold = KernelRidgeClassifier(h=1.0, lam=sharded.lam, solver="hss",
                                 shards=2, solver_options=TIGHT
                                 ).fit(oracle_X, oracle_y)
    d_cold = np.abs(sharded.decision_function(X_test)
                    - cold.decision_function(X_test)).max()
    assert d_cold < 1e-3, f"sharded streamed vs cold diff {d_cold:.3e}"


@pytest.mark.parametrize("solver,options,tol", SOLVERS,
                         ids=[s[0] for s in SOLVERS])
def test_reloaded_artifact_continues_stream_bitwise(solver, options, tol,
                                                    tmp_path):
    """Save/load mid-sequence: the reloaded path equals the serial path
    bitwise (streamed state round-trips exactly through the artifact)."""
    X, y, pool_X, pool_y, X_test = _data()
    rng = np.random.default_rng(3)
    ops = _random_ops(rng, N_BASE, N_POOL, n_ops=6)
    half = len(ops) // 2

    serial = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver,
                                   solver_options=options).fit(X, y)
    streamed = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver,
                                     solver_options=options).fit(X, y)
    dummy = (None, None)
    cursor_a = cursor_b = 0
    for op in ops[:half]:
        _, _, cursor_a = _apply(serial, *dummy, op, pool_X, pool_y,
                                cursor_a)
        _, _, cursor_b = _apply(streamed, *dummy, op, pool_X, pool_y,
                                cursor_b)

    path = str(tmp_path / "mid-stream.npz")
    streamed.save(path)
    reloaded = KernelRidgeClassifier.load(path)
    assert np.array_equal(reloaded.X_train_, streamed.X_train_)

    for op in ops[half:]:
        _, _, cursor_a = _apply(serial, *dummy, op, pool_X, pool_y,
                                cursor_a)
        _, _, cursor_b = _apply(reloaded, *dummy, op, pool_X, pool_y,
                                cursor_b)

    assert np.array_equal(reloaded.X_train_, serial.X_train_)
    diff = np.abs(reloaded.decision_function(X_test)
                  - serial.decision_function(X_test)).max()
    assert diff == 0.0, f"reloaded path diverged from serial: {diff:.3e}"


# ------------------------------------------------------------ drift budget
def test_forced_breach_and_bitwise_recompression():
    X, y, pool_X, pool_y, _ = _data()
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss",
                                solver_options=TIGHT).fit(X, y)
    budget = DriftBudget(max_updates=2)
    clf.partial_fit(X_new=pool_X[:5], y_new=pool_y[:5], remove=[3, 8],
                    budget=budget)
    info = clf.stream_info_
    assert info["breached"]
    assert "max_updates" in info["breach_reason"]
    assert info["correction_rank"] == 7

    eff_X, eff_y = clf.X_train_.copy(), clf._y_perm.copy()
    clf.recompress()
    cold = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss",
                                 solver_options=TIGHT).fit(eff_X, eff_y)
    # recompression == cold build on the effective data, bitwise
    assert np.array_equal(clf.weights_, cold.weights_)
    assert np.array_equal(clf.X_train_, cold.X_train_)
    assert clf.stream_info_ is None  # recompress goes through fit()
    assert clf.solver_.stream is None or not clf.solver_.stream.active


def test_budget_fraction_and_residual_rules():
    X, y, pool_X, pool_y, _ = _data()
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    # fraction rule: 10% of 220 rows breaches max_fraction=0.02
    clf.partial_fit(X_new=pool_X[:22], y_new=pool_y[:22],
                    budget=DriftBudget(max_updates=1000, max_fraction=0.02))
    assert clf.stream_info_["breached"]
    assert "max_fraction" in clf.stream_info_["breach_reason"]
    # residual rule: exact Woodbury keeps the residual tiny, so an
    # absurdly small tolerance must still pass a sanity threshold check
    clf2 = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    clf2.partial_fit(X_new=pool_X[:3], y_new=pool_y[:3],
                     budget=DriftBudget(residual_tol=1e-3))
    assert clf2.stream_info_["residual"] is not None
    assert clf2.stream_info_["residual"] < 1e-3
    assert not clf2.stream_info_["breached"]


# ------------------------------------------------------------- multiclass
def test_multiclass_interleaving_matches_cold_fit():
    rng = np.random.default_rng(5)
    X = rng.standard_normal((180, 6))
    centers = rng.standard_normal((3, 6)) * 3.0
    labels = rng.integers(0, 3, size=180)
    X += centers[labels]
    pool = rng.standard_normal((20, 6)) + centers[rng.integers(0, 3, 20)]
    pool_labels = np.argmin(
        ((pool[:, None, :] - centers[None]) ** 2).sum(-1), axis=1)
    X_test = rng.standard_normal((40, 6)) + centers[rng.integers(0, 3, 40)]

    clf = OneVsAllClassifier(h=2.0, lam=1.0, solver="dense").fit(X, labels)
    clf.partial_fit(X_new=pool[:8], y_new=pool_labels[:8], remove=[1, 40])
    clf.partial_fit(remove=[0, 2, 5])
    clf.refit(1.5)
    clf.partial_fit(X_new=pool[8:], y_new=pool_labels[8:])

    eff_X = clf.X_train_.copy()
    eff_labels = clf.classes_[np.argmax(clf._targets_perm, axis=1)]
    cold = OneVsAllClassifier(h=2.0, lam=1.5, solver="dense").fit(
        eff_X, eff_labels)
    diff = np.abs(clf.decision_function(X_test)
                  - cold.decision_function(X_test)).max()
    assert diff < 1e-8, f"multiclass streamed vs cold diff {diff:.3e}"

    # recompress is bitwise against the cold build in the same row order
    clf.recompress()
    assert np.array_equal(clf.weights_, cold.weights_)

    # labels unseen at fit time are rejected (new class ⇒ full fit)
    with pytest.raises(ValueError, match="not present at fit"):
        clf.partial_fit(X_new=pool[:1], y_new=np.asarray([99]))


# ------------------------------------------------------------ error paths
def test_streaming_error_paths():
    X, y, pool_X, pool_y, _ = _data()
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense")
    with pytest.raises(RuntimeError, match="fitted"):
        clf.partial_fit(X_new=pool_X[:1], y_new=pool_y[:1])
    clf.fit(X, y)
    with pytest.raises(ValueError):
        clf.partial_fit()  # nothing to do
    with pytest.raises(ValueError):
        clf.partial_fit(X_new=pool_X[:2], y_new=pool_y[:3])  # mismatch
    with pytest.raises(ValueError):
        clf.partial_fit(remove=[0, 0])  # duplicate indices
    with pytest.raises(ValueError):
        clf.partial_fit(remove=[N_BASE + 5])  # out of range
    # failed updates must not corrupt the model (state is rolled back)
    before = clf.decision_function(X[:5]).copy()
    with pytest.raises(ValueError):
        clf.partial_fit(X_new=pool_X[:2, :3], y_new=pool_y[:2])  # bad dim
    assert np.array_equal(clf.decision_function(X[:5]), before)
    # the CG solver retains no training state and cannot stream
    cg = KernelRidgeClassifier(h=1.0, lam=1.0, solver="cg").fit(X, y)
    with pytest.raises(RuntimeError, match="does not support streaming"):
        cg.partial_fit(X_new=pool_X[:1], y_new=pool_y[:1])
