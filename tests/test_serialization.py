"""Round-trip tests for the model persistence layer (repro.serving)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.clustering import cluster
from repro.datasets import gaussian_mixture
from repro.hss import ULVFactorization, build_hss_from_dense
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.krr import KernelRidgeClassifier, KRRPipeline, OneVsAllClassifier
from repro.serving import (ArtifactError, ModelStore, hss_from_arrays,
                           hss_to_arrays, kernel_from_spec, kernel_to_spec,
                           load_model, read_artifact, save_model,
                           tree_from_arrays, tree_to_arrays, ulv_from_arrays,
                           ulv_to_arrays)


@pytest.fixture(scope="module")
def binary_data():
    X, y = gaussian_mixture(n=256, d=6, seed=0)
    X_test, y_test = gaussian_mixture(n=64, d=6, seed=1)
    return X, y, X_test, y_test


@pytest.fixture(scope="module")
def multiclass_data():
    rng = np.random.default_rng(5)
    X = rng.standard_normal((220, 5))
    y = rng.integers(0, 4, size=220)
    X_test = rng.standard_normal((48, 5))
    return X, y, X_test


def _npz_round_trip(tmp_path, arrays):
    """Write an array dict to .npz and read it back (like the artifact does)."""
    path = os.path.join(tmp_path, "payload.npz")
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    with np.load(path) as npz:
        return {k: npz[k] for k in npz.files}


class TestArrayRoundTrips:
    def test_cluster_tree(self, tmp_path, binary_data):
        X, _, _, _ = binary_data
        tree = cluster(X, method="two_means", leaf_size=16, seed=0).tree
        restored = tree_from_arrays(_npz_round_trip(tmp_path, tree_to_arrays(tree)))
        assert np.array_equal(restored.perm, tree.perm)
        assert restored.root == tree.root
        assert restored.n_nodes == tree.n_nodes
        for a, b in zip(restored.nodes, tree.nodes):
            assert (a.start, a.stop, a.left, a.right, a.parent, a.level) == \
                (b.start, b.stop, b.left, b.right, b.parent, b.level)

    def test_hss_matrix(self, tmp_path, clustered_kernel_matrix):
        K, clustering = clustered_kernel_matrix
        hss = build_hss_from_dense(K, clustering.tree)
        arrays = _npz_round_trip(tmp_path, hss_to_arrays(hss))
        restored = hss_from_arrays(arrays, clustering.tree)
        assert np.array_equal(restored.to_dense(), hss.to_dense())
        assert restored.max_rank == hss.max_rank

    def test_ulv_factorization(self, tmp_path, clustered_kernel_matrix):
        K, clustering = clustered_kernel_matrix
        hss = build_hss_from_dense(K, clustering.tree)
        ulv = ULVFactorization(hss)
        arrays = _npz_round_trip(
            tmp_path, {**hss_to_arrays(hss), **ulv_to_arrays(ulv)})
        restored = ulv_from_arrays(arrays, hss_from_arrays(arrays, clustering.tree))
        rng = np.random.default_rng(0)
        b = rng.standard_normal(hss.n)
        B = rng.standard_normal((hss.n, 3))
        assert np.array_equal(restored.solve(b), ulv.solve(b))
        assert np.array_equal(restored.solve(B), ulv.solve(B))

    def test_missing_payload_raises(self, clustered_kernel_matrix):
        _, clustering = clustered_kernel_matrix
        with pytest.raises(ArtifactError):
            hss_from_arrays({}, clustering.tree)


class TestKernelSpec:
    @pytest.mark.parametrize("kernel", [GaussianKernel(h=1.7),
                                        LaplacianKernel(h=0.4)])
    def test_radial_round_trip(self, kernel):
        restored = kernel_from_spec(kernel_to_spec(kernel))
        assert type(restored) is type(kernel)
        assert restored.h == kernel.h

    def test_linear_round_trip(self):
        from repro.kernels import LinearKernel
        restored = kernel_from_spec(kernel_to_spec(LinearKernel()))
        assert type(restored) is LinearKernel

    def test_unreconstructable_kernel_fails_at_save_time(self):
        """A kernel caching derived attributes must be rejected when the
        spec is built, not discovered as unloadable later."""
        from repro.kernels.base import KERNEL_REGISTRY, Kernel, register_kernel

        @register_kernel("_test_cauchy")
        class _CauchyKernel(Kernel):
            def __init__(self, h=1.0):
                self.h = float(h)
                self._inv2 = 1.0 / (h * h)  # derived, not a constructor arg

            def _evaluate_sq(self, sq):
                return 1.0 / (1.0 + self._inv2 * np.asarray(sq))

        try:
            with pytest.raises(ArtifactError, match="reconstructed"):
                kernel_to_spec(_CauchyKernel(h=2.0))
        finally:
            KERNEL_REGISTRY.pop("_test_cauchy", None)


class TestClassifierRoundTrip:
    """save -> load must reproduce predictions bitwise (acceptance criterion)."""

    @pytest.mark.parametrize("solver", ["dense", "hss", "cg"])
    def test_binary_predictions_identical(self, tmp_path, binary_data, solver):
        X, y, X_test, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver,
                                    clustering="two_means", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        artifact = clf.save(path)
        assert artifact.checksum
        reloaded = KernelRidgeClassifier.load(path)
        assert np.array_equal(reloaded.predict(X_test), clf.predict(X_test))
        assert np.array_equal(reloaded.decision_function(X_test),
                              clf.decision_function(X_test))

    @pytest.mark.parametrize("solver", ["dense", "hss"])
    def test_reloaded_solver_solves_new_rhs(self, tmp_path, binary_data, solver):
        X, y, _, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver=solver, seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path)
        reloaded = KernelRidgeClassifier.load(path)
        rhs = np.linspace(-1.0, 1.0, X.shape[0])
        assert np.array_equal(reloaded.solver_.solve(rhs), clf.solver_.solve(rhs))

    @pytest.mark.parametrize("solver", ["dense", "hss", "cg"])
    def test_multiclass_predictions_identical(self, tmp_path, multiclass_data,
                                              solver):
        X, y, X_test = multiclass_data
        ova = OneVsAllClassifier(h=1.2, lam=0.5, solver=solver, seed=0).fit(X, y)
        path = os.path.join(tmp_path, "ova.npz")
        ova.save(path)
        reloaded = OneVsAllClassifier.load(path)
        assert np.array_equal(reloaded.classes_, ova.classes_)
        assert np.array_equal(reloaded.predict(X_test), ova.predict(X_test))
        assert np.array_equal(reloaded.decision_function(X_test),
                              ova.decision_function(X_test))

    def test_predict_only_artifact(self, tmp_path, binary_data):
        X, y, X_test, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0).fit(X, y)
        full = os.path.join(tmp_path, "full.npz")
        lean = os.path.join(tmp_path, "lean.npz")
        clf.save(full)
        clf.save(lean, include_factorization=False)
        assert os.path.getsize(lean) < os.path.getsize(full)
        reloaded = load_model(lean)
        assert reloaded.solver_ is None
        assert np.array_equal(reloaded.predict(X_test), clf.predict(X_test))

    def test_kind_mismatch_raises(self, tmp_path, binary_data):
        X, y, _, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path)
        with pytest.raises(ArtifactError):
            OneVsAllClassifier.load(path)

    def test_unfitted_model_rejected(self, tmp_path):
        clf = KernelRidgeClassifier(h=1.0, lam=1.0)
        with pytest.raises(ArtifactError):
            save_model(clf, os.path.join(tmp_path, "model.npz"))

    def test_object_dtype_classes_rejected(self, tmp_path, multiclass_data):
        """Object-dtype labels would be silently pickled by np.savez and the
        resulting artifact would be unreadable with allow_pickle=False."""
        X, y, _ = multiclass_data
        labels = np.array(["cat", "dog", "emu", "fox"], dtype=object)[y]
        ova = OneVsAllClassifier(h=1.0, lam=1.0, solver="dense", seed=0)
        ova.fit(X, labels)
        path = os.path.join(tmp_path, "ova.npz")
        with pytest.raises(ArtifactError, match="object dtype"):
            ova.save(path)
        assert not os.path.exists(path)
        # Fixed-width string labels serialize fine.
        ova.fit(X, labels.astype(str))
        ova.save(path)
        reloaded = OneVsAllClassifier.load(path)
        assert np.array_equal(reloaded.classes_, ova.classes_)


class TestArtifactIntegrity:
    def test_header_readable_without_full_load(self, tmp_path, binary_data):
        X, y, _, _ = binary_data
        clf = KernelRidgeClassifier(h=1.5, lam=2.0, solver="dense", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path, metadata={"dataset": "gmix"})
        artifact = read_artifact(path)
        assert artifact.kind == "kernel_ridge_classifier"
        assert artifact.config["h"] == 1.5
        assert artifact.metadata["dataset"] == "gmix"
        assert "dense" in artifact.describe()

    def test_corruption_detected(self, tmp_path, binary_data):
        X, y, _, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path)
        # Flip one byte in the middle of the archive payload.
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ArtifactError):
            load_model(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_model(os.path.join(tmp_path, "nope.npz"))

    def test_non_artifact_npz_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "random.npz")
        np.savez(path, a=np.arange(3))
        with pytest.raises(ArtifactError):
            load_model(path)


class TestModelStore:
    def test_save_load_list_delete(self, tmp_path, binary_data):
        X, y, X_test, _ = binary_data
        store = ModelStore(tmp_path / "store")
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="hss", seed=0).fit(X, y)
        record = store.save(clf, "gmix-hss", metadata={"note": "unit test"})
        assert record.checksum and "gmix-hss" in store and len(store) == 1

        reloaded = store.load("gmix-hss")
        assert np.array_equal(reloaded.predict(X_test), clf.predict(X_test))

        records = store.list_models()
        assert [r.name for r in records] == ["gmix-hss"]
        assert records[0].metadata["note"] == "unit test"
        assert records[0].kind == "kernel_ridge_classifier"

        store.delete("gmix-hss")
        assert len(store) == 0 and "gmix-hss" not in store
        with pytest.raises(ArtifactError):
            store.load("gmix-hss")

    def test_interrupted_save_leaves_no_ghost_entry(self, tmp_path, binary_data):
        """A crash before the record is published must not block a retry."""
        X, y, X_test, _ = binary_data
        store = ModelStore(tmp_path / "store")
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        # Simulate a save that died mid-archive: partial temp file, no record.
        ghost_dir = tmp_path / "store" / "ghost"
        ghost_dir.mkdir()
        (ghost_dir / "model.npz.tmp").write_bytes(b"partial")
        assert "ghost" not in store and store.list_models() == []
        record = store.save(clf, "ghost")  # retry succeeds without overwrite
        assert record.checksum
        reloaded = store.load("ghost")
        assert np.array_equal(reloaded.predict(X_test), clf.predict(X_test))

    def test_missing_required_entry_raises_artifact_error(self, tmp_path,
                                                          binary_data):
        """Archives with a valid header but missing model arrays must fail
        with ArtifactError, not a bare KeyError."""
        X, y, _, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path)
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files if k != "model.weights"}
        # Rewrite without the weights but with a matching checksum.
        from repro.serving.serialize import (_HEADER_KEY, _payload_checksum,
                                             _write_archive)
        import json
        header = json.loads(bytes(arrays.pop(_HEADER_KEY)).decode())
        header["checksum"] = _payload_checksum(arrays)
        _write_archive(path, header, arrays)
        with pytest.raises(ArtifactError, match="missing required entry"):
            load_model(path)

    def test_overwrite_protection(self, tmp_path, binary_data):
        X, y, _, _ = binary_data
        store = ModelStore(tmp_path / "store")
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        store.save(clf, "m")
        with pytest.raises(FileExistsError):
            store.save(clf, "m")
        store.save(clf, "m", overwrite=True)

    def test_invalid_name_rejected(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store._model_dir("../escape")

    def test_stray_directories_do_not_break_listing(self, tmp_path, binary_data):
        X, y, _, _ = binary_data
        store = ModelStore(tmp_path / "store")
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        store.save(clf, "good")
        # A backup directory with an invalid store name, containing a record.
        backup = tmp_path / "store" / ".good-backup"
        backup.mkdir()
        (backup / "record.json").write_text("{}")
        assert [r.name for r in store.list_models()] == ["good"]
        assert len(store) == 1

    def test_save_over_existing_is_atomic(self, tmp_path, binary_data):
        """Re-saving leaves no temp file and the artifact stays loadable."""
        X, y, X_test, _ = binary_data
        clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense", seed=0).fit(X, y)
        path = os.path.join(tmp_path, "model.npz")
        clf.save(path)
        clf.save(path)  # overwrite in place
        assert not os.path.exists(path + ".tmp")
        reloaded = KernelRidgeClassifier.load(path)
        assert np.array_equal(reloaded.predict(X_test), clf.predict(X_test))

    def test_metadata_from_pipeline_report(self, tmp_path, binary_data):
        X, y, X_test, y_test = binary_data
        pipe = KRRPipeline(h=1.0, lam=1.0, solver="hss", seed=0)
        report = pipe.run(X, y, X_test, y_test, dataset_name="gmix")
        store = ModelStore(tmp_path / "store")
        record = store.save(pipe.classifier_, "from-report", report=report)
        assert record.metadata["dataset"] == "gmix"
        assert record.metadata["accuracy_percent"] == pytest.approx(
            report.accuracy_percent, abs=0.01)
        assert "acc=" in record.describe()

    def test_pipeline_save_load(self, tmp_path, binary_data):
        X, y, X_test, y_test = binary_data
        pipe = KRRPipeline(h=1.0, lam=1.0, solver="hss", seed=0)
        pipe.run(X, y, X_test, y_test, dataset_name="gmix")
        path = os.path.join(tmp_path, "pipe.npz")
        artifact = pipe.save(path)
        assert artifact.metadata["dataset"] == "gmix"
        reloaded = KRRPipeline.load(path)
        assert np.array_equal(reloaded.predict(X_test),
                              pipe.classifier_.predict(X_test))

    def test_pipeline_save_requires_run(self, tmp_path):
        pipe = KRRPipeline()
        with pytest.raises(RuntimeError):
            pipe.save(os.path.join(tmp_path, "x.npz"))
