"""Tests for the ``repro`` umbrella CLI.

In-process tests per subcommand (fast: tiny datasets, main() called
directly) plus one subprocess lifecycle smoke that runs
train -> tune -> refit -> serve --check -> inspect via
``python -m repro.cli``, asserting every JSON result parses and the
refit-λ prediction matches an in-Python reference.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_dataset
from repro.serving import ModelStore

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

SMALL = ["--n-train", "160", "--n-test", "48", "-q"]


def run_cli(tmp_path, monkeypatch, argv):
    monkeypatch.chdir(tmp_path)
    return main(argv)


def read_result(tmp_path, command):
    with open(tmp_path / f"repro_{command}.json", encoding="utf-8") as fh:
        return json.load(fh)


class TestTrain:
    def test_train_writes_model_and_json(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        doc = read_result(tmp_path, "train")
        assert doc["status"] == "ok"
        assert doc["result"]["report"]["accuracy_percent"] > 50.0
        assert doc["result"]["model"]["name"] == "model"
        store = ModelStore(str(tmp_path / "models"))
        assert "model" in store

    def test_train_is_idempotent(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        first = ModelStore(str(tmp_path / "models")).record("model").checksum
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        second = ModelStore(str(tmp_path / "models")).record("model").checksum
        assert first == second  # same config, same data, same artifact

    def test_train_no_save(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch,
                       ["train", "--no-save", *SMALL]) == 0
        assert read_result(tmp_path, "train")["result"]["model"] is None
        assert not (tmp_path / "models").exists()

    def test_flag_overrides_reach_pipeline(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch,
                       ["train", "--h", "1.75", "--lam", "0.5",
                        *SMALL]) == 0
        report = read_result(tmp_path, "train")["result"]["report"]
        assert report["h"] == 1.75
        assert report["lambda"] == 0.5


class TestTuneRefitServe:
    def test_tune_random(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch,
                       ["tune", "--strategy", "random", "--budget", "4",
                        *SMALL]) == 0
        doc = read_result(tmp_path, "tune")
        best = doc["result"]["best"]
        assert doc["result"]["evaluations"] >= 4
        assert 0.0 <= best["validation_accuracy"] <= 1.0
        assert best["h"] > 0 and best["lam"] > 0

    def test_refit_matches_reference(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        assert run_cli(tmp_path, monkeypatch,
                       ["refit", "--new-lam", "6.0", *SMALL]) == 0
        doc = read_result(tmp_path, "refit")
        assert doc["result"]["new_lam"] == 6.0

        # In-Python reference: cold fit at the same λ must predict the
        # same labels as the CLI's refit-and-saved model.
        data = load_dataset("gas", n_train=160, n_test=48, seed=0)
        from repro.krr import KernelRidgeClassifier
        reference = KernelRidgeClassifier(
            h=data.h, lam=6.0, solver="hss", clustering="two_means",
            seed=0).fit(data.X_train, data.y_train)
        served = ModelStore(str(tmp_path / "models")).load("model")
        assert served.lam == 6.0
        np.testing.assert_array_equal(served.predict(data.X_test),
                                      reference.predict(data.X_test))

    def test_refit_without_model_errors(self, tmp_path, monkeypatch, capsys):
        assert run_cli(tmp_path, monkeypatch,
                       ["refit", "--new-lam", "2.0", *SMALL]) == 2
        assert "repro train" in capsys.readouterr().err

    def test_serve_check(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        assert run_cli(tmp_path, monkeypatch,
                       ["serve", "--check", "--check-n", "16",
                        *SMALL]) == 0
        doc = read_result(tmp_path, "serve")
        assert doc["result"]["check_passed"] is True
        assert doc["result"]["completed"] == 16

    def test_serve_batch_queries(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        data = load_dataset("gas", n_train=160, n_test=48, seed=0)
        np.save(tmp_path / "queries.npy", data.X_test[:8])
        assert run_cli(tmp_path, monkeypatch,
                       ["serve", "--queries", "queries.npy",
                        "--out", "answers.npy", *SMALL]) == 0
        answers = np.load(tmp_path / "answers.npy")
        assert answers.shape[0] == 8
        assert set(np.unique(answers)) <= {-1.0, 1.0}


class TestInspectEnvBench:
    def test_inspect_config_shows_provenance_of_each_layer(
            self, tmp_path, monkeypatch):
        (tmp_path / "repro.toml").write_text("[dataset]\nn_train = 180\n")
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert run_cli(tmp_path, monkeypatch,
                       ["inspect", "config", "--lam", "3.5", "-q"]) == 0
        doc = read_result(tmp_path, "inspect_config")
        sources = {row["key"]: (row["source"], row["value"])
                   for row in doc["result"]["knobs"]}
        assert sources["dataset.n_train"] == ("file", 180)
        assert sources["distributed.shards"] == ("env", 2)
        assert sources["kernel.lam"] == ("flag", 3.5)
        assert sources["kernel.h"][0] == "default"

    def test_inspect_models(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 0
        assert run_cli(tmp_path, monkeypatch,
                       ["inspect", "models", "-q"]) == 0
        doc = read_result(tmp_path, "inspect_models")
        assert [m["name"] for m in doc["result"]["models"]] == ["model"]

    def test_inspect_metrics_from_dump(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch,
                       ["train", "--set", "obs.dump_path=m.json",
                        *SMALL]) == 0
        assert run_cli(tmp_path, monkeypatch,
                       ["inspect", "metrics", "--metrics-path", "m.json",
                        "-q"]) == 0
        doc = read_result(tmp_path, "inspect_metrics")
        counters = doc["result"]["summary"]["counters"]
        assert counters.get("repro_kernel_compressions_total", 0) >= 1

    def test_inspect_metrics_without_dump_errors(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.delenv("REPRO_METRICS_DUMP", raising=False)
        assert run_cli(tmp_path, monkeypatch,
                       ["inspect", "metrics", "-q"]) == 2
        assert "no metrics dump configured" in capsys.readouterr().err

    def test_env_reports_mapping(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert run_cli(tmp_path, monkeypatch, ["env", "-q"]) == 0
        doc = read_result(tmp_path, "env")
        assert doc["result"]["env_mapping"]["REPRO_WORKERS"] == \
            "distributed.workers"
        assert doc["result"]["host"]["python"]

    def test_bench_lifecycle(self, tmp_path, monkeypatch):
        assert run_cli(tmp_path, monkeypatch,
                       ["bench", "--refits", "1", "--serve-queries", "16",
                        *SMALL]) == 0
        result = read_result(tmp_path, "bench")["result"]
        assert result["train_seconds"] > 0
        assert len(result["refit_seconds"]) == 1
        assert result["serve_queries"] == 16


class TestErrors:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "COMMAND" in capsys.readouterr().out

    def test_bad_set_syntax(self, tmp_path, monkeypatch, capsys):
        assert run_cli(tmp_path, monkeypatch,
                       ["train", "--set", "kernel.h"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_unknown_key_in_set(self, tmp_path, monkeypatch, capsys):
        assert run_cli(tmp_path, monkeypatch,
                       ["train", "--set", "kernel.nope=1"]) == 2
        assert "kernel.nope" in capsys.readouterr().err

    def test_bad_env_value_is_cli_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        assert run_cli(tmp_path, monkeypatch, ["train", *SMALL]) == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err


class TestSubprocessLifecycle:
    def test_full_lifecycle_via_module(self, tmp_path):
        """The CI smoke, in miniature: every stage through a real
        interpreter against a committed-style repro.toml."""
        (tmp_path / "repro.toml").write_text(
            '[dataset]\nn_train = 160\nn_test = 48\n\n'
            '[kernel]\nh = 1.5\nlam = 2.0\n\n'
            '[tuning]\nstrategy = "random"\nbudget = 3\n\n'
            '[obs]\ndump_path = "metrics.json"\n')
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_WORKERS", None)
        env.pop("REPRO_SHARDS", None)

        def repro(*argv):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                cwd=str(tmp_path), env=env, capture_output=True,
                text=True, timeout=240)
            assert proc.returncode == 0, proc.stderr + proc.stdout
            return proc

        repro("train", "-q")
        repro("tune", "-q")
        repro("refit", "--new-lam", "4.0", "-q")
        repro("serve", "--check", "--check-n", "8", "-q")
        repro("inspect", "metrics", "-q")

        for command in ("train", "tune", "refit", "serve",
                        "inspect_metrics"):
            doc = json.loads(
                (tmp_path / f"repro_{command}.json").read_text())
            assert doc["status"] == "ok", command

        # The refit-λ prediction must match the in-Python reference.
        data = load_dataset("gas", n_train=160, n_test=48, seed=0)
        from repro.krr import KernelRidgeClassifier
        reference = KernelRidgeClassifier(
            h=1.5, lam=4.0, solver="hss", clustering="two_means",
            seed=0).fit(data.X_train, data.y_train)
        served = ModelStore(str(tmp_path / "models")).load("model")
        assert served.lam == 4.0
        np.testing.assert_array_equal(served.predict(data.X_test),
                                      reference.predict(data.X_test))
