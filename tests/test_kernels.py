"""Tests for kernel functions and the pairwise distance primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (GaussianKernel, LaplacianKernel, LinearKernel,
                           Matern32Kernel, Matern52Kernel, PolynomialKernel,
                           blockwise_sq_dists, get_kernel, pairwise_dists,
                           pairwise_sq_dists, row_sq_dists, KERNEL_REGISTRY)


def _points(n=30, d=5, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


class TestDistances:
    def test_pairwise_sq_dists_matches_naive(self):
        X = _points(20, 4, seed=1)
        Y = _points(15, 4, seed=2)
        D = pairwise_sq_dists(X, Y)
        naive = np.array([[np.sum((x - y) ** 2) for y in Y] for x in X])
        np.testing.assert_allclose(D, naive, rtol=1e-10, atol=1e-10)

    def test_pairwise_sq_dists_symmetric_case(self):
        X = _points(25, 3)
        D = pairwise_sq_dists(X)
        assert np.allclose(D, D.T)
        assert np.all(np.diag(D) == 0.0)
        assert np.all(D >= 0.0)

    def test_pairwise_dists_is_sqrt(self):
        X = _points(10, 3)
        np.testing.assert_allclose(pairwise_dists(X) ** 2, pairwise_sq_dists(X),
                                   atol=1e-12)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension"):
            pairwise_sq_dists(_points(5, 3), _points(5, 4))

    def test_row_sq_dists(self):
        X = _points(12, 6)
        x = X[3]
        d = row_sq_dists(x, X)
        np.testing.assert_allclose(d, pairwise_sq_dists(x[None, :], X).ravel(),
                                   atol=1e-12)
        with pytest.raises(ValueError):
            row_sq_dists(np.zeros(3), _points(5, 4))

    def test_blockwise_matches_full(self):
        X = _points(33, 4, seed=3)
        full = pairwise_sq_dists(X)
        rebuilt = np.empty_like(full)
        for rows, block in blockwise_sq_dists(X, block_size=7):
            rebuilt[rows] = block
        np.testing.assert_allclose(rebuilt, full, atol=1e-10)

    def test_blockwise_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            list(blockwise_sq_dists(_points(5, 2), block_size=0))

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (7, 3), elements=st.floats(-50, 50)))
    def test_property_distances_nonnegative_and_symmetric(self, X):
        D = pairwise_sq_dists(X)
        assert np.all(D >= 0)
        assert np.allclose(D, D.T, atol=1e-8)


class TestGaussianKernel:
    def test_values(self):
        k = GaussianKernel(h=2.0)
        X = np.array([[0.0], [2.0]])
        K = k.matrix(X)
        assert K[0, 0] == pytest.approx(1.0)
        assert K[0, 1] == pytest.approx(np.exp(-4.0 / 8.0))

    def test_symmetric_psd(self):
        X = _points(40, 6)
        K = GaussianKernel(h=1.0).matrix(X)
        assert np.allclose(K, K.T)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-8  # Gaussian kernels are PSD

    def test_limits_of_h(self):
        X = _points(20, 4)
        nearly_identity = GaussianKernel(h=1e-3).matrix(X)
        assert np.allclose(nearly_identity, np.eye(20), atol=1e-6)
        nearly_ones = GaussianKernel(h=1e3).matrix(X)
        assert np.allclose(nearly_ones, np.ones((20, 20)), atol=1e-3)

    def test_block_extraction(self):
        X = _points(25, 3)
        k = GaussianKernel(h=1.0)
        K = k.matrix(X)
        rows = np.array([1, 5, 7])
        cols = np.array([0, 2, 10, 20])
        np.testing.assert_allclose(k.block(X, rows, cols), K[np.ix_(rows, cols)],
                                   atol=1e-12)

    def test_row(self):
        X = _points(15, 3)
        k = GaussianKernel(h=0.7)
        K = k.matrix(X)
        np.testing.assert_allclose(k.row(X[4], X), K[4], atol=1e-12)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            GaussianKernel(h=0.0)

    def test_diagonal_value(self):
        assert GaussianKernel(h=3.0).diagonal_value() == pytest.approx(1.0)


class TestOtherKernels:
    @pytest.mark.parametrize("cls", [LaplacianKernel, Matern32Kernel, Matern52Kernel])
    def test_radial_kernels_basic(self, cls):
        X = _points(20, 4)
        k = cls(h=1.3)
        K = k.matrix(X)
        assert np.allclose(K, K.T)
        assert np.allclose(np.diag(K), 1.0)
        assert K.max() <= 1.0 + 1e-12
        assert K.min() >= 0.0

    def test_matern_decreasing_in_distance(self):
        k = Matern52Kernel(h=1.0)
        r = np.array([[0.0], [0.5], [1.0], [2.0], [4.0]])
        vals = k.matrix(r, np.zeros((1, 1))).ravel()
        assert np.all(np.diff(vals) < 0)

    def test_polynomial_kernel(self):
        X = _points(10, 3)
        k = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
        K = k.matrix(X)
        expected = (0.5 * X @ X.T + 1.0) ** 2
        np.testing.assert_allclose(K, expected, atol=1e-10)
        np.testing.assert_allclose(k.row(X[2], X), expected[2], atol=1e-10)

    def test_linear_kernel_is_gram(self):
        X = _points(8, 4)
        np.testing.assert_allclose(LinearKernel().matrix(X), X @ X.T, atol=1e-12)

    def test_polynomial_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)


class TestRegistry:
    def test_get_kernel_by_name(self):
        k = get_kernel("gaussian", h=2.5)
        assert isinstance(k, GaussianKernel)
        assert k.h == 2.5

    def test_registry_contains_all(self):
        for name in ("gaussian", "laplacian", "matern32", "matern52",
                     "polynomial", "linear"):
            assert name in KERNEL_REGISTRY

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("does-not-exist")
