"""Raw-socket fuzzing of the hand-rolled HTTP front end.

A seeded generator produces malformed wire traffic — truncated request
heads and bodies, oversized header blocks, bogus request lines, broken
``Content-Length`` fields, random binary junk and valid requests sliced
into adversarial split writes — and fires each case at a live daemon over
a plain socket.  The contract under fuzz:

* every case is answered with a clean **4xx** response or a **connection
  close** — never a 5xx, never a hang (sockets carry hard timeouts);
* the daemon is still serving normal traffic after every single case.

This pins the strictness promise of :mod:`repro.server.http`: anything
outside the supported HTTP/1.1 subset fails fast instead of wedging the
event loop or leaking across connections.
"""

from __future__ import annotations

import json
import random
import socket
import threading

import numpy as np
import pytest

from repro.datasets import gaussian_mixture
from repro.krr import KernelRidgeClassifier
from repro.runtime import resolve_runtime_config
from repro.server import ServerApp
from repro.serving import ModelStore

MODEL = "fuzzed"
SEED = 0xC0FFEE
N_RANDOM_CASES = 40


@pytest.fixture(scope="module")
def fuzz_server(tmp_path_factory):
    """One live daemon shared by every fuzz case; yields (app, host, port)."""
    root = tmp_path_factory.mktemp("fuzz-store")
    X, y = gaussian_mixture(n=96, d=4, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    store = ModelStore(str(root))
    store.save(clf, MODEL)
    config = resolve_runtime_config(
        env={}, flags={"serving.store": store.root, "serving.model": MODEL,
                       "server.port": 0})
    app = ServerApp(config, store=store)
    ready = threading.Event()
    bound = {}

    def on_ready(host, port):
        bound["addr"] = (host, port)
        ready.set()

    thread = threading.Thread(target=app.run, kwargs={"ready": on_ready},
                              daemon=True)
    thread.start()
    assert ready.wait(30.0), "fuzz server did not come up"
    host, port = bound["addr"]
    yield app, host, port
    app.request_shutdown()
    thread.join(30.0)
    assert not thread.is_alive(), "fuzz server did not drain on shutdown"


def _valid_request(payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return (f"POST /v1/predict HTTP/1.1\r\n"
            f"Host: fuzz\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode("latin-1") + body


def _taxonomy_cases(rng: random.Random, valid: bytes):
    """Deterministic cases, one per branch of the parser's error taxonomy."""
    junk = bytes(rng.randrange(256) for _ in range(64))
    head_end = valid.index(b"\r\n\r\n") + 4
    yield "empty-close", b""
    yield "junk-no-terminator", junk
    yield "junk-with-terminator", junk + b"\r\n\r\n"
    yield "bogus-request-line", b"BOGUS\r\n\r\n"
    yield "two-token-line", b"GET /healthz\r\n\r\n"
    yield "bad-http-version", b"GET / SPAM/9.9\r\n\r\n"
    yield "header-without-colon", b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"
    yield ("chunked-rejected",
           b"POST /v1/predict HTTP/1.1\r\nTransfer-Encoding: chunked"
           b"\r\n\r\n")
    yield ("content-length-not-int",
           b"POST /v1/predict HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
    yield ("content-length-negative",
           b"POST /v1/predict HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
    yield ("content-length-over-limit",
           b"POST /v1/predict HTTP/1.1\r\nContent-Length: 999999999"
           b"\r\n\r\n")
    yield ("oversized-header-block",
           b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 40_000 + b"\r\n\r\n")
    yield "head-overrun-no-terminator", b"a" * 150_000
    yield "truncated-head", valid[:head_end - rng.randrange(1, 5)]
    yield "truncated-body", valid[:head_end + 3]


def _random_cases(rng: random.Random, valid: bytes):
    """Seeded mutations of a valid request."""
    for i in range(N_RANDOM_CASES):
        mode = rng.randrange(5)
        if mode == 0:  # truncate anywhere
            cut = rng.randrange(1, len(valid))
            yield f"rand-truncate-{i}", valid[:cut]
        elif mode == 1:  # flip random bytes
            data = bytearray(valid)
            for _ in range(rng.randrange(1, 8)):
                data[rng.randrange(len(data))] = rng.randrange(256)
            yield f"rand-byteflip-{i}", bytes(data)
        elif mode == 2:  # splice junk into the head
            pos = rng.randrange(0, valid.index(b"\r\n\r\n"))
            junk = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 32)))
            yield f"rand-splice-{i}", valid[:pos] + junk + valid[pos:]
        elif mode == 3:  # pure junk of random length
            yield (f"rand-junk-{i}",
                   bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 2048))))
        else:  # oversized random field values
            name = bytes(rng.choice(b"abcdefgh") for _ in range(8))
            pad = rng.randrange(1, 50_000)
            yield (f"rand-bigfield-{i}",
                   b"GET / HTTP/1.1\r\n" + name + b": " + b"x" * pad
                   + b"\r\n\r\n")


def _fire(host: str, port: int, data: bytes, rng: random.Random) -> bytes:
    """Send one fuzz case (in random split writes) and collect the reply.

    The write side is half-closed after sending, so truncation cases hit
    the parser's EOF branches instead of waiting out a read timeout.
    Returns every byte the server sent back before closing (``b""`` for a
    reply-less close).  Connection resets while sending/receiving count
    as a close — the server is allowed to slam the door on garbage.
    """
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.settimeout(10.0)
        try:
            offset = 0
            while offset < len(data):
                step = rng.randrange(1, max(2, len(data) - offset + 1))
                sock.sendall(data[offset:offset + step])
                offset += step
            sock.shutdown(socket.SHUT_WR)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # server already rejected and closed: acceptable
        reply = b""
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        except (ConnectionResetError, socket.timeout, OSError):
            pass
        return reply


def _assert_clean_outcome(name: str, reply: bytes) -> None:
    """The fuzz contract: a well-formed non-5xx response or a bare close.

    Random mutations may leave a request valid (a padded-but-legal
    header, a byte flip inside the JSON body), so 2xx is acceptable
    here; the taxonomy test pins exact 4xx codes for the deliberately
    broken cases.  What is never acceptable: a 5xx, or a non-HTTP reply.
    """
    if not reply:
        return  # clean close without a response: acceptable
    first_line = reply.split(b"\r\n", 1)[0]
    assert first_line.startswith(b"HTTP/1.1 "), \
        f"{name}: non-HTTP reply {first_line!r}"
    status = int(first_line.split()[1])
    assert status < 500, \
        f"{name}: fuzzed input produced a server error {status}"


def _assert_still_serving(host: str, port: int, valid: bytes,
                          expected: bytes) -> None:
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.settimeout(10.0)
        sock.sendall(valid)
        sock.shutdown(socket.SHUT_WR)
        reply = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            reply += chunk
    assert reply.startswith(b"HTTP/1.1 200 "), \
        f"daemon unhealthy after fuzzing: {reply[:120]!r}"
    assert expected in reply


def test_fuzzed_wire_traffic_never_breaks_the_daemon(fuzz_server):
    app, host, port = fuzz_server
    rng = random.Random(SEED)
    X, _ = gaussian_mixture(n=96, d=4, seed=0)
    valid = _valid_request({"inputs": X[:1].tolist(), "model": MODEL})

    cases = list(_taxonomy_cases(rng, valid))
    cases.extend(_random_cases(rng, valid))
    assert len(cases) == 15 + N_RANDOM_CASES

    for name, data in cases:
        reply = _fire(host, port, data, rng)
        _assert_clean_outcome(name, reply)
        # the daemon survived this case and still answers real traffic
        _assert_still_serving(host, port, valid, b'"predictions"')


def test_taxonomy_cases_map_to_expected_statuses(fuzz_server):
    """Spot-check that the taxonomy hits the documented status codes."""
    _, host, port = fuzz_server
    rng = random.Random(SEED + 1)
    expectations = {
        "bogus-request-line": 400,
        "header-without-colon": 400,
        "chunked-rejected": 400,
        "content-length-not-int": 400,
        "content-length-negative": 400,
        "content-length-over-limit": 413,
        "oversized-header-block": 431,
        "head-overrun-no-terminator": 431,
        "truncated-head": 400,
        "truncated-body": 400,
    }
    X, _ = gaussian_mixture(n=96, d=4, seed=0)
    valid = _valid_request({"inputs": X[:1].tolist(), "model": MODEL})
    seen = {}
    for name, data in _taxonomy_cases(rng, valid):
        if name not in expectations:
            continue
        reply = _fire(host, port, data, rng)
        assert reply, f"{name}: expected an explicit 4xx response"
        seen[name] = int(reply.split(b"\r\n", 1)[0].split()[1])
    assert seen == expectations


def test_split_writes_of_valid_requests_still_succeed(fuzz_server):
    """Adversarial chunking of *valid* requests must not corrupt parsing."""
    _, host, port = fuzz_server
    rng = random.Random(SEED + 2)
    X, y = gaussian_mixture(n=96, d=4, seed=0)
    clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense").fit(X, y)
    expected = clf.predict(X[:3])
    valid = _valid_request({"inputs": X[:3].tolist(), "model": MODEL})
    for _ in range(10):
        reply = _fire(host, port, valid, rng)
        assert reply.startswith(b"HTTP/1.1 200 "), reply[:120]
        body = json.loads(reply.split(b"\r\n\r\n", 1)[1])
        assert np.array_equal(np.asarray(body["predictions"]), expected)
