"""Tests for the ULV factorization and solve."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import cluster, natural_tree
from repro.config import HSSOptions
from repro.hss import ULVFactorization, build_hss_from_dense, build_hss_randomized
from repro.kernels import DenseMatrixOperator, GaussianKernel
from repro.utils.timing import TimingLog


def _problem(n=200, h=1.0, lam=2.0, seed=0, rel_tol=1e-9, method="two_means",
             leaf_size=16, d=5):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((6, d)) * 4.0
    X = centers[rng.integers(6, size=n)] + 0.4 * rng.standard_normal((n, d))
    result = cluster(X, method=method, leaf_size=leaf_size, seed=seed)
    K = GaussianKernel(h=h).matrix(result.X) + lam * np.eye(n)
    hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=rel_tol))
    return hss, K


class TestULVSolve:
    def test_solve_matches_numpy(self):
        hss, K = _problem()
        fac = ULVFactorization(hss)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(K.shape[0])
        x = fac.solve(b)
        x_ref = np.linalg.solve(K, b)
        np.testing.assert_allclose(x, x_ref, atol=1e-5 * np.linalg.norm(x_ref))

    def test_residual_small(self):
        hss, K = _problem(seed=2)
        fac = ULVFactorization(hss)
        b = np.random.default_rng(3).standard_normal(K.shape[0])
        x = fac.solve(b)
        resid = np.linalg.norm(K @ x - b) / np.linalg.norm(b)
        assert resid < 1e-6

    def test_multiple_rhs(self):
        hss, K = _problem(seed=4)
        fac = ULVFactorization(hss)
        B = np.random.default_rng(5).standard_normal((K.shape[0], 4))
        X = fac.solve(B)
        assert X.shape == B.shape
        np.testing.assert_allclose(K @ X, B, atol=1e-5 * np.linalg.norm(B))

    def test_factor_once_solve_many(self):
        hss, K = _problem(seed=6)
        fac = ULVFactorization(hss)
        rng = np.random.default_rng(7)
        for _ in range(3):
            b = rng.standard_normal(K.shape[0])
            x = fac.solve(b)
            assert np.linalg.norm(K @ x - b) / np.linalg.norm(b) < 1e-6

    def test_natural_ordering_tree(self):
        hss, K = _problem(seed=8, method="natural")
        fac = ULVFactorization(hss)
        b = np.ones(K.shape[0])
        x = fac.solve(b)
        assert np.linalg.norm(K @ x - b) / np.linalg.norm(b) < 1e-6

    def test_single_leaf_tree(self):
        rng = np.random.default_rng(9)
        A = rng.standard_normal((12, 12))
        A = A @ A.T + 12 * np.eye(12)
        tree = natural_tree(rng.standard_normal((12, 2)), leaf_size=16)
        hss = build_hss_from_dense(A, tree, HSSOptions())
        fac = ULVFactorization(hss)
        b = rng.standard_normal(12)
        np.testing.assert_allclose(fac.solve(b), np.linalg.solve(A, b), atol=1e-8)

    def test_unbalanced_tree(self):
        # A pathologically unbalanced splitter: 1 vs rest at every level.
        from repro.clustering.tree import tree_from_splitter
        rng = np.random.default_rng(10)
        X = rng.standard_normal((60, 3))

        def lopsided(points, rng_):
            mask = np.zeros(points.shape[0], dtype=bool)
            mask[0] = True
            return mask

        tree = tree_from_splitter(X, lopsided, leaf_size=4)
        K = GaussianKernel(h=1.0).matrix(X[tree.perm]) + 2.0 * np.eye(60)
        hss = build_hss_from_dense(K, tree, HSSOptions(rel_tol=1e-9))
        fac = ULVFactorization(hss)
        b = rng.standard_normal(60)
        assert np.linalg.norm(K @ fac.solve(b) - b) / np.linalg.norm(b) < 1e-6

    def test_wrong_rhs_size(self):
        hss, _ = _problem(n=96, seed=11)
        fac = ULVFactorization(hss)
        with pytest.raises(ValueError):
            fac.solve(np.zeros(5))

    def test_timing_phases_recorded(self):
        hss, K = _problem(n=128, seed=12)
        log = TimingLog()
        fac = ULVFactorization(hss, timing=log)
        assert log.get("factorization") > 0
        fac.solve(np.ones(K.shape[0]), timing=log)
        assert log.get("solve") > 0

    def test_factor_bytes_positive(self):
        hss, _ = _problem(n=128, seed=13)
        fac = ULVFactorization(hss)
        assert fac.factor_bytes > 0

    def test_loose_compression_still_useful_solution(self):
        # With the paper's tolerance (0.1) the ULV solve is approximate but
        # accurate enough for sign-based classification decisions.
        hss, K = _problem(seed=14, rel_tol=1e-1, lam=4.0)
        fac = ULVFactorization(hss)
        b = np.random.default_rng(15).standard_normal(K.shape[0])
        x = fac.solve(b)
        x_ref = np.linalg.solve(K, b)
        rel = np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref)
        assert rel < 0.5
        # The HSS matrix it factors is solved (nearly) exactly even when it
        # approximates K loosely.
        A_hss = hss.to_dense()
        assert np.linalg.norm(A_hss @ x - b) / np.linalg.norm(b) < 1e-6

    def test_randomized_build_then_ulv(self):
        rng = np.random.default_rng(16)
        n = 192
        centers = rng.standard_normal((5, 4)) * 4
        X = centers[rng.integers(5, size=n)] + 0.4 * rng.standard_normal((n, 4))
        result = cluster(X, method="two_means", leaf_size=16, seed=0)
        K = GaussianKernel(h=1.2).matrix(result.X) + 3.0 * np.eye(n)
        hss, _ = build_hss_randomized(DenseMatrixOperator(K), result.tree,
                                      HSSOptions(rel_tol=1e-8), rng=1)
        fac = ULVFactorization(hss)
        b = rng.standard_normal(n)
        assert np.linalg.norm(K @ fac.solve(b) - b) / np.linalg.norm(b) < 1e-5

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 50), lam=st.floats(0.5, 10.0),
           leaf=st.sampled_from([8, 16, 32]))
    def test_property_residual_bounded(self, seed, lam, leaf):
        hss, K = _problem(n=128, seed=seed % 7, lam=lam, rel_tol=1e-8,
                          leaf_size=leaf)
        fac = ULVFactorization(hss)
        b = np.random.default_rng(seed).standard_normal(K.shape[0])
        x = fac.solve(b)
        assert np.linalg.norm(K @ x - b) / np.linalg.norm(b) < 1e-5
