"""Tests for the cheap diagonal update of an HSS matrix (Section 5.3).

Changing the ridge parameter lambda only changes the diagonal of the
compressed matrix, so the compression can be reused across lambda values —
the property the paper exploits during hyper-parameter tuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster
from repro.config import HSSOptions
from repro.hss import ULVFactorization, build_hss_from_dense
from repro.kernels import GaussianKernel


@pytest.fixture(scope="module")
def base_problem():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((5, 4)) * 4.0
    X = centers[rng.integers(5, size=192)] + 0.4 * rng.standard_normal((192, 4))
    result = cluster(X, method="two_means", leaf_size=16, seed=0)
    K = GaussianKernel(h=1.0).matrix(result.X)
    hss = build_hss_from_dense(K + 1.0 * np.eye(192), result.tree,
                               HSSOptions(rel_tol=1e-8))
    return hss, K


class TestDiagonalShift:
    def test_shifted_reconstruction(self, base_problem):
        hss, K = base_problem
        shifted = hss.shifted(2.5)
        np.testing.assert_allclose(shifted.to_dense(), hss.to_dense() + 2.5 * np.eye(192),
                                   atol=1e-10)

    def test_shift_shares_offdiagonal_generators(self, base_problem):
        hss, _ = base_problem
        shifted = hss.shifted(1.0)
        for original, new in zip(hss.node_data, shifted.node_data):
            if original.B12 is not None:
                assert new.B12 is original.B12  # shared, not copied
            if original.U is not None and original.D is None:
                assert new.U is original.U

    def test_original_unchanged(self, base_problem):
        hss, _ = base_problem
        before = hss.to_dense()
        hss.shifted(10.0)
        np.testing.assert_allclose(hss.to_dense(), before)

    def test_solve_for_multiple_lambdas_reusing_compression(self, base_problem):
        hss, K = base_problem
        rng = np.random.default_rng(1)
        b = rng.standard_normal(192)
        # hss approximates K + 1.0 I; shifting by (lam - 1.0) gives K + lam I.
        for lam in (0.5, 2.0, 8.0):
            shifted = hss.shifted(lam - 1.0)
            x = ULVFactorization(shifted).solve(b)
            x_ref = np.linalg.solve(K + lam * np.eye(192), b)
            np.testing.assert_allclose(x, x_ref, atol=1e-5 * np.linalg.norm(x_ref))

    def test_negative_shift(self, base_problem):
        hss, _ = base_problem
        shifted = hss.shifted(-0.5)
        np.testing.assert_allclose(shifted.to_dense(),
                                   hss.to_dense() - 0.5 * np.eye(192), atol=1e-10)

    def test_memory_of_shift_only_duplicates_diagonal(self, base_problem):
        hss, _ = base_problem
        shifted = hss.shifted(1.0)
        stats = hss.statistics()
        shifted_stats = shifted.statistics()
        assert shifted_stats.total_bytes == stats.total_bytes
        assert shifted_stats.max_rank == stats.max_rank
