"""Tests for the one-vs-all classifier and the end-to-end KRR pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_manifold, load_dataset
from repro.krr import KRRPipeline, OneVsAllClassifier


def _multiclass_data(n=400, d=6, n_classes=4, seed=0):
    X, ids = clustered_manifold(n, d, n_clusters=n_classes, intrinsic_dim=3,
                                separation=5.0, noise=0.3, seed=seed)
    return X, ids % n_classes


class TestOneVsAll:
    def test_fit_predict_multiclass(self):
        X, y = _multiclass_data(seed=1)
        clf = OneVsAllClassifier(h=1.5, lam=1.0, solver="dense",
                                 clustering="two_means", seed=0)
        clf.fit(X, y)
        assert clf.score(X, y) > 0.95
        assert clf.classes_.size == 4

    def test_decision_function_shape(self):
        X, y = _multiclass_data(n=200, seed=2)
        clf = OneVsAllClassifier(h=1.5, lam=1.0, solver="dense").fit(X, y)
        scores = clf.decision_function(X[:30])
        assert scores.shape == (30, clf.classes_.size)

    def test_shared_factorization_with_hss(self):
        X, y = _multiclass_data(n=300, seed=3)
        clf = OneVsAllClassifier(h=1.5, lam=1.0, solver="hss", seed=0,
                                 solver_options={"use_hmatrix_sampling": False})
        clf.fit(X, y)
        # One solver fit, several solves: the report carries one factorization.
        assert clf.report.phase("factorization") > 0
        assert clf.score(X, y) > 0.9

    def test_string_labels(self):
        X, y_int = _multiclass_data(n=160, seed=4)
        y = np.array(["class_%d" % c for c in y_int])
        clf = OneVsAllClassifier(h=1.5, lam=1.0, solver="dense").fit(X, y)
        preds = clf.predict(X[:20])
        assert set(preds).issubset(set(y))

    def test_single_class_rejected(self):
        X, _ = _multiclass_data(n=50, seed=5)
        with pytest.raises(ValueError):
            OneVsAllClassifier(solver="dense").fit(X, np.zeros(50))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            OneVsAllClassifier().predict(np.zeros((2, 3)))

    def test_two_class_case_agrees_with_sign_rule(self):
        X, y = _multiclass_data(n=200, n_classes=2, seed=6)
        clf = OneVsAllClassifier(h=1.5, lam=1.0, solver="dense").fit(X, y)
        acc = clf.score(X, y)
        assert acc > 0.95


class TestPipeline:
    def test_pipeline_report_fields(self):
        data = load_dataset("letter", n_train=384, n_test=96, seed=0)
        pipeline = KRRPipeline(h=data.h, lam=data.lam, clustering="two_means",
                               solver="hss", use_hmatrix_sampling=False, seed=0)
        report = pipeline.run(data.X_train, data.y_train, data.X_test, data.y_test,
                              dataset_name="letter")
        assert report.dataset == "letter"
        assert report.n_train == 384
        assert report.n_test == 96
        assert report.dim == 16
        assert 0.0 <= report.accuracy <= 1.0
        assert report.accuracy_percent == pytest.approx(100 * report.accuracy)
        assert report.memory_mb > 0
        assert report.max_rank > 0
        assert report.phase("train_total") > 0
        assert report.phase("predict_total") > 0
        row = report.row()
        assert row["dataset"] == "letter"
        assert "accuracy_percent" in row
        assert any(key.startswith("time_") for key in row)

    def test_pipeline_dense_solver(self):
        data = load_dataset("gas", n_train=256, n_test=64, seed=1)
        pipeline = KRRPipeline(h=data.h, lam=data.lam, solver="dense",
                               clustering="natural")
        report = pipeline.run(data.X_train, data.y_train, data.X_test, data.y_test)
        assert report.accuracy > 0.8
        assert report.solver == "dense"

    def test_pipeline_keeps_classifier(self):
        data = load_dataset("pen", n_train=256, n_test=64, seed=2)
        pipeline = KRRPipeline(h=data.h, lam=data.lam, solver="cg",
                               clustering="kd")
        pipeline.run(data.X_train, data.y_train, data.X_test, data.y_test)
        assert pipeline.classifier_ is not None
        assert pipeline.classifier_.weights_ is not None
