"""Tests for the interpolative decompositions (row / column ID)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowrank import column_id, row_id


def _lowrank_matrix(m, n, r, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    if noise:
        A += noise * rng.standard_normal((m, n))
    return A


class TestRowID:
    def test_exact_reconstruction_of_lowrank(self):
        A = _lowrank_matrix(30, 50, 5)
        rid = row_id(A, rel_tol=1e-10)
        assert rid.rank == 5
        np.testing.assert_allclose(rid.interp @ A[rid.skeleton], A, atol=1e-7)

    def test_interp_contains_identity_on_skeleton(self):
        A = _lowrank_matrix(20, 25, 4, noise=1e-3)
        rid = row_id(A, rel_tol=1e-6)
        block = rid.interp[rid.skeleton]
        np.testing.assert_allclose(block, np.eye(rid.rank), atol=1e-10)

    def test_skeleton_indices_valid(self):
        A = _lowrank_matrix(15, 10, 3)
        rid = row_id(A, rel_tol=1e-8)
        assert np.all(rid.skeleton >= 0) and np.all(rid.skeleton < 15)
        assert len(np.unique(rid.skeleton)) == rid.rank

    def test_max_rank_cap(self):
        A = _lowrank_matrix(20, 20, 8)
        rid = row_id(A, rel_tol=1e-12, max_rank=3)
        assert rid.rank == 3

    def test_tolerance_controls_error(self):
        A = _lowrank_matrix(40, 40, 20, noise=0.0)
        loose = row_id(A, rel_tol=1e-1)
        tight = row_id(A, rel_tol=1e-8)
        err_loose = np.linalg.norm(loose.interp @ A[loose.skeleton] - A)
        err_tight = np.linalg.norm(tight.interp @ A[tight.skeleton] - A)
        assert err_tight <= err_loose + 1e-12
        assert tight.rank >= loose.rank

    def test_zero_matrix(self):
        rid = row_id(np.zeros((6, 4)), rel_tol=1e-8)
        assert rid.rank == 0
        assert rid.interp.shape == (6, 0)

    def test_empty_matrix(self):
        rid = row_id(np.zeros((0, 4)))
        assert rid.rank == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            row_id(np.zeros(5))


class TestColumnID:
    def test_exact_reconstruction(self):
        A = _lowrank_matrix(40, 30, 6)
        cid = column_id(A, rel_tol=1e-10)
        assert cid.rank == 6
        np.testing.assert_allclose(A[:, cid.skeleton] @ cid.interp, A, atol=1e-7)

    def test_interp_identity_on_skeleton_columns(self):
        A = _lowrank_matrix(25, 20, 5, noise=1e-3)
        cid = column_id(A, rel_tol=1e-6)
        np.testing.assert_allclose(cid.interp[:, cid.skeleton], np.eye(cid.rank),
                                   atol=1e-10)

    def test_row_and_column_id_are_transposes(self):
        A = _lowrank_matrix(18, 22, 4, seed=7)
        rid = row_id(A, rel_tol=1e-9)
        cid = column_id(A.T, rel_tol=1e-9)
        np.testing.assert_array_equal(np.sort(rid.skeleton), np.sort(cid.skeleton))

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(3, 25), n=st.integers(3, 25), r=st.integers(1, 5),
           seed=st.integers(0, 10**6))
    def test_property_reconstruction_error_bounded(self, m, n, r, seed):
        A = _lowrank_matrix(m, n, min(r, m, n), seed=seed, noise=0.0)
        rid = row_id(A, rel_tol=1e-8)
        err = np.linalg.norm(rid.interp @ A[rid.skeleton] - A)
        scale = max(np.linalg.norm(A), 1e-12)
        assert err <= 1e-5 * scale
