"""Tests for the diagnostics package (spectra, ranks, report tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import gas_like, standardize
from repro.diagnostics import (Table, block_effective_rank, effective_rank_table,
                               format_table, full_singular_values,
                               offdiagonal_block, offdiagonal_singular_values,
                               spectrum_sweep)


@pytest.fixture(scope="module")
def gas_small():
    X, _ = gas_like(256, seed=0)
    return standardize(X)


class TestSpectra:
    def test_offdiagonal_block_shape(self, gas_small):
        block = offdiagonal_block(gas_small, h=1.0, ordering="natural")
        assert block.shape == (128, 128)

    def test_clustering_accelerates_decay(self, gas_small):
        # The central claim of Figure 1a: with 2MN ordering the off-diagonal
        # singular values decay faster at intermediate h.
        s_natural = offdiagonal_singular_values(gas_small, h=1.0, ordering="natural")
        s_clustered = offdiagonal_singular_values(gas_small, h=1.0,
                                                  ordering="two_means", seed=0)
        k = 30
        assert s_clustered[k] < s_natural[k]

    def test_full_spectrum_is_permutation_invariant(self, gas_small):
        s_nat = full_singular_values(gas_small, h=1.0, ordering="natural")
        s_2mn = full_singular_values(gas_small, h=1.0, ordering="two_means", seed=0)
        np.testing.assert_allclose(s_nat, s_2mn, rtol=1e-8, atol=1e-10)

    def test_spectrum_sweep_structure(self, gas_small):
        sweep = spectrum_sweep(gas_small, h_values=[0.5, 2.0],
                               orderings=("natural", "two_means"), seed=0)
        assert set(sweep) == {"natural", "two_means"}
        assert set(sweep["natural"]) == {0.5, 2.0}
        assert sweep["natural"][0.5].shape[0] == 128

    def test_invalid_which(self, gas_small):
        with pytest.raises(ValueError):
            spectrum_sweep(gas_small, [1.0], which="bogus")


class TestEffectiveRanks:
    def test_rank_small_for_extreme_h(self, gas_small):
        # Table 1 behaviour: effective rank -> small as h -> 0 or infinity.
        tiny_h = block_effective_rank(gas_small, h=0.01, ordering="natural")
        huge_h = block_effective_rank(gas_small, h=100.0, ordering="natural")
        mid_h = block_effective_rank(gas_small, h=1.0, ordering="natural")
        assert tiny_h <= 3
        assert huge_h <= gas_small.shape[0] // 4
        assert mid_h >= tiny_h

    def test_clustering_reduces_effective_rank(self, gas_small):
        table = effective_rank_table(gas_small, h_values=(1.0,),
                                     orderings=("natural", "two_means"), seed=0)
        assert table["two_means"][1.0] <= table["natural"][1.0]

    def test_table_structure(self, gas_small):
        table = effective_rank_table(gas_small, h_values=(0.1, 1.0),
                                     orderings=("natural",))
        assert set(table) == {"natural"}
        assert set(table["natural"]) == {0.1, 1.0}


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "long-name", "value": 123.456}]
        text = format_table(rows, title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty table)" in format_table([], title="x")

    def test_table_add_row_and_columns(self):
        t = Table(title="t", columns=["b", "a"])
        t.add_row(a=1, b=2)
        t.add_row(a=3, b=4, c=5)  # extra key ignored by explicit columns
        assert t.column_names() == ["b", "a"]
        rendered = t.render()
        assert rendered.splitlines()[1].startswith("b")

    def test_table_infers_columns(self):
        t = Table(title="t")
        t.add_row(x=1)
        t.add_row(y=2)
        assert t.column_names() == ["x", "y"]

    def test_cell_formatting(self):
        rows = [{"v": 0.000012345}, {"v": 123456.0}, {"v": 0}]
        text = format_table(rows)
        assert "1.23e-05" in text or "1.235e-05" in text
        assert "0" in text
