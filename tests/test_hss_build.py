"""Tests for the deterministic and randomized HSS constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import cluster, natural_tree
from repro.config import HSSOptions
from repro.hss import (HSSMatrix, build_hss_from_dense, build_hss_randomized)
from repro.kernels import (DenseMatrixOperator, GaussianKernel,
                           ShiftedKernelOperator)


def _clustered_kernel(n=200, d=6, h=1.0, lam=1.0, seed=0, method="two_means"):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((6, d)) * 4.0
    X = centers[rng.integers(6, size=n)] + 0.5 * rng.standard_normal((n, d))
    result = cluster(X, method=method, leaf_size=16, seed=seed)
    K = GaussianKernel(h=h).matrix(result.X) + lam * np.eye(n)
    return K, result


class TestDenseBuilder:
    def test_reconstruction_tight_tolerance(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=1e-8))
        err = np.linalg.norm(hss.to_dense() - K) / np.linalg.norm(K)
        assert err < 1e-6

    def test_reconstruction_loose_tolerance(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=0.1))
        err = np.linalg.norm(hss.to_dense() - K) / np.linalg.norm(K)
        assert err < 0.3  # loose tolerance still bounded
        tight = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=1e-8))
        assert hss.max_rank <= tight.max_rank
        assert hss.nbytes <= tight.nbytes

    def test_nonsymmetric_matrix(self):
        rng = np.random.default_rng(1)
        n = 128
        # A smooth nonsymmetric matrix with low-rank off-diagonal blocks.
        t = np.linspace(0, 1, n)
        A = 1.0 / (1.0 + 5.0 * np.abs(t[:, None] - t[None, :] * 0.7)) \
            + np.diag(rng.uniform(1, 2, n))
        tree = natural_tree(np.column_stack([t, t]), leaf_size=16)
        hss = build_hss_from_dense(A, tree, HSSOptions(rel_tol=1e-9, symmetric=False))
        err = np.linalg.norm(hss.to_dense() - A) / np.linalg.norm(A)
        assert err < 1e-6

    def test_single_leaf_tree(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((10, 10))
        A = A @ A.T + 10 * np.eye(10)
        tree = natural_tree(rng.standard_normal((10, 2)), leaf_size=16)
        hss = build_hss_from_dense(A, tree, HSSOptions())
        np.testing.assert_allclose(hss.to_dense(), A)

    def test_dimension_mismatch_raises(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        with pytest.raises(ValueError, match="dimension"):
            build_hss_from_dense(K[:-2, :-2], result.tree)

    def test_max_rank_cap_respected(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        hss = build_hss_from_dense(K, result.tree,
                                   HSSOptions(rel_tol=1e-12, max_rank=10))
        assert hss.max_rank <= 10

    def test_validation_of_node_shapes(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=1e-6))
        # Corrupt a B block and verify the validator notices.
        for node_id, data in enumerate(hss.node_data):
            if data.B12 is not None and data.B12.size:
                data.B12 = data.B12[:, :-1] if data.B12.shape[1] > 1 else np.zeros((1, 5))
                break
        with pytest.raises(ValueError):
            HSSMatrix(hss.tree, hss.node_data)


class TestRandomizedBuilder:
    def test_matches_dense_builder(self):
        K, result = _clustered_kernel(n=192, seed=3)
        opts = HSSOptions(rel_tol=1e-7)
        dense_hss = build_hss_from_dense(K, result.tree, opts)
        op = DenseMatrixOperator(K)
        rand_hss, stats = build_hss_randomized(op, result.tree, opts, rng=0)
        err = np.linalg.norm(rand_hss.to_dense() - K) / np.linalg.norm(K)
        assert err < 1e-5
        assert stats.random_vectors >= opts.initial_samples
        # Ranks should be comparable (randomized may differ slightly).
        assert abs(rand_hss.max_rank - dense_hss.max_rank) <= 10

    def test_kernel_operator_input(self):
        K, result = _clustered_kernel(n=160, h=1.5, lam=2.0, seed=4)
        op = ShiftedKernelOperator(result.X, GaussianKernel(h=1.5), 2.0)
        hss, stats = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=1e-6),
                                          rng=1)
        err = np.linalg.norm(hss.to_dense() - K) / np.linalg.norm(K)
        assert err < 1e-4
        assert stats.element_evaluations > 0
        assert stats.sample_time >= 0.0

    def test_adaptive_rounds_increase_random_vectors(self):
        # Force adaptation by starting with very few samples on a matrix of
        # moderately large off-diagonal rank.
        K, result = _clustered_kernel(n=256, h=0.8, seed=5)
        op = DenseMatrixOperator(K)
        opts = HSSOptions(rel_tol=1e-8, initial_samples=8, sample_increment=16,
                          oversampling=4)
        hss, stats = build_hss_randomized(op, result.tree, opts, rng=2)
        assert stats.rounds >= 2
        assert stats.random_vectors > 8
        err = np.linalg.norm(hss.to_dense() - K) / np.linalg.norm(K)
        assert err < 1e-5

    def test_nonsymmetric_randomized(self):
        rng = np.random.default_rng(6)
        n = 128
        t = np.linspace(0, 1, n)
        A = 1.0 / (1.0 + 4.0 * np.abs(t[:, None] - 0.5 * t[None, :])) + np.eye(n)
        tree = natural_tree(np.column_stack([t, t]), leaf_size=16)
        op = DenseMatrixOperator(A)
        hss, _ = build_hss_randomized(op, tree,
                                      HSSOptions(rel_tol=1e-8, symmetric=False),
                                      rng=3)
        err = np.linalg.norm(hss.to_dense() - A) / np.linalg.norm(A)
        assert err < 1e-5

    def test_loose_tolerance_smaller_memory(self):
        K, result = _clustered_kernel(n=192, seed=7)
        op = DenseMatrixOperator(K)
        loose, _ = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=0.1),
                                        rng=0)
        tight, _ = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=1e-6),
                                        rng=0)
        assert loose.nbytes <= tight.nbytes
        # Ranks are detected from random samples of different sizes, so exact
        # monotonicity is not guaranteed; allow a small slack.
        assert loose.max_rank <= tight.max_rank + 8

    def test_dimension_mismatch(self):
        K, result = _clustered_kernel(n=64, seed=8)
        op = DenseMatrixOperator(K[:32, :32])
        with pytest.raises(ValueError, match="dimension"):
            build_hss_randomized(op, result.tree)

    def test_reproducible_with_seed(self):
        K, result = _clustered_kernel(n=96, seed=9)
        op = DenseMatrixOperator(K)
        h1, _ = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=1e-6), rng=11)
        h2, _ = build_hss_randomized(op, result.tree, HSSOptions(rel_tol=1e-6), rng=11)
        np.testing.assert_allclose(h1.to_dense(), h2.to_dense(), atol=1e-12)


class TestStatistics:
    def test_memory_accounting_matches_nbytes(self, clustered_kernel_matrix):
        K, result = clustered_kernel_matrix
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=1e-4))
        stats = hss.statistics()
        assert stats.total_bytes == hss.nbytes
        assert stats.total_bytes == (stats.bytes_diagonal + stats.bytes_bases +
                                     stats.bytes_coupling)
        assert stats.max_rank == hss.max_rank
        assert stats.n == hss.n
        assert stats.leaf_count == len(result.tree.leaves())
        assert 0 < stats.memory_mb < stats.dense_bytes / 2**20
        assert stats.compression_ratio > 1.0
        assert "memory" in stats.summary()

    def test_compression_beats_dense_for_clustered_data(self):
        K, result = _clustered_kernel(n=400, seed=10)
        hss = build_hss_from_dense(K, result.tree, HSSOptions(rel_tol=0.1))
        assert hss.nbytes < K.nbytes / 2
