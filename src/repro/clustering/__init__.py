"""Dataset clustering / reordering (the paper's preprocessing step).

Reordering the input data corresponds to applying a permutation
symmetrically to the rows and columns of the kernel matrix (Section 4.2).
Every method in this package produces a :class:`ClusterTree`: a binary tree
of contiguous index ranges in the permuted ordering, which both defines the
permutation and becomes the HSS / H-matrix partition tree.

Implemented orderings (Section 4.3):

* ``natural`` (NP) — no reordering, index sets split in equal halves,
* ``two_means`` (2MN) — recursive 2-means with distance-proportional seeding,
* ``kd`` (KD) — split along the coordinate of maximum spread at the mean,
  falling back to the median for very unbalanced splits,
* ``pca`` (PCA) — split at the mean of the projection onto the first
  principal component,
* ``ball`` — ball-tree style split (two farthest-point seeds), the ordering
  used by prior work the paper compares against,
* ``agglomerative`` — bottom-up average-linkage reference (quadratic; the
  paper found such methods non-competitive).
"""

from .tree import ClusterNode, ClusterTree, tree_from_splitter
from .natural import natural_tree, NaturalSplitter
from .two_means import TwoMeansSplitter, two_means_split
from .kd_tree import KDTreeSplitter
from .pca_tree import PCATreeSplitter
from .ball_tree import BallTreeSplitter
from .agglomerative import agglomerative_tree
from .api import ClusteringResult, cluster, available_methods
from .quality import (
    cluster_separation_ratio,
    tree_balance,
    average_leaf_size,
)

__all__ = [
    "ClusterNode",
    "ClusterTree",
    "tree_from_splitter",
    "natural_tree",
    "NaturalSplitter",
    "TwoMeansSplitter",
    "two_means_split",
    "KDTreeSplitter",
    "PCATreeSplitter",
    "BallTreeSplitter",
    "agglomerative_tree",
    "ClusteringResult",
    "cluster",
    "available_methods",
    "cluster_separation_ratio",
    "tree_balance",
    "average_leaf_size",
]
