"""Front-end for the preprocessing step (Step 0 of Algorithm 1).

:func:`cluster` maps a method name to the corresponding tree builder and
returns a :class:`ClusteringResult` bundling the permutation, the cluster
tree and the reordered data, ready to be handed to the HSS / H-matrix
builders and to the KRR pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import ClusteringOptions
from ..utils.random import as_generator
from ..utils.validation import check_array_2d
from .agglomerative import agglomerative_tree
from .ball_tree import ball_tree
from .kd_tree import kd_tree
from .natural import natural_tree
from .pca_tree import pca_tree
from .tree import ClusterTree
from .two_means import two_means_tree

#: Canonical method names and the aliases used in the paper's tables.
_ALIASES: Dict[str, str] = {
    "natural": "natural",
    "np": "natural",
    "none": "natural",
    "two_means": "two_means",
    "2mn": "two_means",
    "2-means": "two_means",
    "kmeans2": "two_means",
    "kd": "kd",
    "kd_tree": "kd",
    "kdtree": "kd",
    "pca": "pca",
    "pca_tree": "pca",
    "ball": "ball",
    "ball_tree": "ball",
    "agglomerative": "agglomerative",
    "average_linkage": "agglomerative",
}


def available_methods() -> list:
    """Canonical names of the implemented orderings."""
    return ["natural", "two_means", "kd", "pca", "ball", "agglomerative"]


@dataclass
class ClusteringResult:
    """Output of the preprocessing step.

    Attributes
    ----------
    method:
        Canonical name of the ordering that produced this result.
    tree:
        The :class:`ClusterTree` (permutation + hierarchical partition).
    X:
        The *reordered* data matrix (``X_original[tree.perm]``).
    """

    method: str
    tree: ClusterTree
    X: np.ndarray

    @property
    def perm(self) -> np.ndarray:
        """Permutation array (new position -> original index)."""
        return self.tree.perm

    def permute_labels(self, y: np.ndarray) -> np.ndarray:
        """Reorder a label vector consistently with the data."""
        return self.tree.permute_vector(y)


def cluster(
    X: np.ndarray,
    method: str = "two_means",
    leaf_size: int = 16,
    seed=None,
    options: Optional[ClusteringOptions] = None,
) -> ClusteringResult:
    """Reorder a dataset with the requested clustering method.

    Parameters
    ----------
    X:
        Data points ``(n, d)`` in original order.
    method:
        One of :func:`available_methods` (paper aliases such as ``"2MN"``,
        ``"NP"``, ``"KD"``, ``"PCA"`` are accepted, case-insensitively).
    leaf_size:
        Maximum leaf size of the resulting tree (ignored if ``options`` is
        given).
    seed:
        Seed for the random splitters (two-means, ball tree).
    options:
        Full :class:`repro.config.ClusteringOptions`; overrides ``method``,
        ``leaf_size`` and ``seed``.

    Returns
    -------
    ClusteringResult
    """
    X = check_array_2d(X, "X")
    if options is not None:
        method = options.method
        leaf_size = options.leaf_size
        seed = options.seed
    key = _ALIASES.get(str(method).strip().lower())
    if key is None:
        raise ValueError(
            f"unknown clustering method {method!r}; available: {available_methods()}")

    rng = as_generator(seed)
    if key == "natural":
        tree = natural_tree(X, leaf_size=leaf_size)
    elif key == "two_means":
        max_iter = options.max_iter if options is not None else 20
        tree = two_means_tree(X, leaf_size=leaf_size, max_iter=max_iter, seed=rng)
    elif key == "kd":
        threshold = options.balance_threshold if options is not None else 100.0
        tree = kd_tree(X, leaf_size=leaf_size, balance_threshold=threshold, seed=rng)
    elif key == "pca":
        tree = pca_tree(X, leaf_size=leaf_size, seed=rng)
    elif key == "ball":
        tree = ball_tree(X, leaf_size=leaf_size, seed=rng)
    elif key == "agglomerative":
        tree = agglomerative_tree(X, leaf_size=leaf_size)
    else:  # pragma: no cover - _ALIASES and the branch list are in sync
        raise AssertionError(f"unhandled method {key}")
    return ClusteringResult(method=key, tree=tree, X=tree.apply_permutation(X))
