"""The cluster tree: a binary tree of contiguous index ranges.

A :class:`ClusterTree` encodes simultaneously

* the permutation of the data points produced by the recursive clustering
  (``perm[new_position] = original_index``), and
* the hierarchical partition of ``{0, ..., n-1}`` (in the *permuted*
  ordering) into nested, contiguous index ranges.

The same tree is reused as the HSS partition tree (Figure 3 of the paper)
and as the cluster tree of the H-matrix block partition, which is what ties
"clustering quality" to "off-diagonal rank" in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.validation import check_array_2d


@dataclass
class ClusterNode:
    """A node of the cluster tree.

    Attributes
    ----------
    start, stop:
        Half-open range ``[start, stop)`` of positions in the permuted
        ordering covered by this node.
    left, right:
        Indices of the children in :attr:`ClusterTree.nodes`
        (``-1`` for leaves).
    parent:
        Index of the parent node (``-1`` for the root).
    level:
        Depth of the node (root at level 0).
    """

    start: int
    stop: int
    left: int = -1
    right: int = -1
    parent: int = -1
    level: int = 0

    @property
    def size(self) -> int:
        """Number of points covered by the node."""
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return self.left < 0 and self.right < 0


class ClusterTree:
    """Binary tree of contiguous index ranges plus the inducing permutation.

    Parameters
    ----------
    perm:
        Permutation array: position ``i`` of the reordered dataset holds the
        original point ``perm[i]``.
    nodes:
        List of :class:`ClusterNode`; ``nodes[root]`` covers ``[0, n)``.
    root:
        Index of the root node (default 0).
    """

    def __init__(self, perm: np.ndarray, nodes: Sequence[ClusterNode], root: int = 0):
        self.perm = np.asarray(perm, dtype=np.intp)
        self.nodes: List[ClusterNode] = list(nodes)
        self.root = int(root)
        self._validate()

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        n = self.perm.shape[0]
        seen = np.zeros(n, dtype=bool)
        seen[self.perm] = True
        if not seen.all():
            raise ValueError("perm is not a permutation")
        if not self.nodes:
            raise ValueError("tree must have at least one node")
        root = self.nodes[self.root]
        if root.start != 0 or root.stop != n:
            raise ValueError(
                f"root must cover [0, {n}), got [{root.start}, {root.stop})")
        for i, node in enumerate(self.nodes):
            if node.stop < node.start:
                raise ValueError(f"node {i} has negative size")
            if (node.left < 0) != (node.right < 0):
                raise ValueError(f"node {i} must have zero or two children")
            if not node.is_leaf:
                lc, rc = self.nodes[node.left], self.nodes[node.right]
                if lc.start != node.start or rc.stop != node.stop or lc.stop != rc.start:
                    raise ValueError(
                        f"children of node {i} do not partition [{node.start}, {node.stop})")

    # -------------------------------------------------------------- accessors
    @property
    def n(self) -> int:
        """Number of points."""
        return self.perm.shape[0]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def inverse_perm(self) -> np.ndarray:
        """Inverse permutation: ``inverse_perm[original_index] = new_position``."""
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.n, dtype=np.intp)
        return inv

    def node(self, i: int) -> ClusterNode:
        return self.nodes[i]

    def indices(self, i: int) -> np.ndarray:
        """Positions (in the permuted ordering) covered by node ``i``."""
        nd = self.nodes[i]
        return np.arange(nd.start, nd.stop, dtype=np.intp)

    def original_indices(self, i: int) -> np.ndarray:
        """Original dataset indices of the points covered by node ``i``."""
        nd = self.nodes[i]
        return self.perm[nd.start:nd.stop]

    def depth(self) -> int:
        """Maximum node level."""
        return max(nd.level for nd in self.nodes)

    # ------------------------------------------------------------- traversals
    def leaves(self) -> List[int]:
        """Leaf node indices ordered by their position range."""
        ls = [i for i, nd in enumerate(self.nodes) if nd.is_leaf]
        ls.sort(key=lambda i: self.nodes[i].start)
        return ls

    def postorder(self) -> Iterator[int]:
        """Post-order traversal (children before parents), as in Figure 3."""
        stack: List[Tuple[int, bool]] = [(self.root, False)]
        while stack:
            node_id, expanded = stack.pop()
            nd = self.nodes[node_id]
            if nd.is_leaf or expanded:
                yield node_id
            else:
                stack.append((node_id, True))
                stack.append((nd.right, False))
                stack.append((nd.left, False))

    def levels(self) -> List[List[int]]:
        """Node indices grouped by level, root level first."""
        out: List[List[int]] = [[] for _ in range(self.depth() + 1)]
        for i, nd in enumerate(self.nodes):
            out[nd.level].append(i)
        return out

    def leaf_sizes(self) -> np.ndarray:
        """Sizes of all leaves (diagonal block sizes of the HSS partition)."""
        return np.array([self.nodes[i].size for i in self.leaves()], dtype=np.intp)

    # ------------------------------------------------------------------ apply
    def apply_permutation(self, X: np.ndarray) -> np.ndarray:
        """Reorder the rows of ``X`` according to the tree's permutation."""
        X = np.asarray(X)
        if X.shape[0] != self.n:
            raise ValueError(
                f"X has {X.shape[0]} rows but the tree covers {self.n} points")
        return X[self.perm]

    def permute_vector(self, y: np.ndarray) -> np.ndarray:
        """Reorder a label / target vector consistently with the data."""
        y = np.asarray(y)
        if y.shape[0] != self.n:
            raise ValueError(
                f"y has length {y.shape[0]} but the tree covers {self.n} points")
        return y[self.perm]

    def unpermute_vector(self, y: np.ndarray) -> np.ndarray:
        """Map a vector in the permuted ordering back to the original order."""
        y = np.asarray(y)
        if y.shape[0] != self.n:
            raise ValueError(
                f"y has length {y.shape[0]} but the tree covers {self.n} points")
        out = np.empty_like(y)
        out[self.perm] = y
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterTree(n={self.n}, nodes={self.n_nodes}, "
                f"leaves={len(self.leaves())}, depth={self.depth()})")


#: A splitter receives the data points of a cluster (in original coordinates)
#: and an RNG and returns a boolean mask selecting the *first* child cluster.
SplitFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def tree_from_splitter(
    X: np.ndarray,
    splitter: SplitFn,
    leaf_size: int = 16,
    rng: Optional[np.random.Generator] = None,
    min_split_fraction: float = 0.0,
) -> ClusterTree:
    """Build a cluster tree by recursive top-down splitting.

    Parameters
    ----------
    X:
        Data points ``(n, d)`` in their *original* order.
    splitter:
        Callable returning a boolean mask of the first child for a subset of
        points.  A degenerate mask (all ``True`` / all ``False``) falls back
        to an equal split so recursion always terminates.
    leaf_size:
        Clusters of at most this size are not split further (16 in the
        paper's HSS experiments).
    rng:
        Random generator forwarded to the splitter.
    min_split_fraction:
        If one side receives fewer than ``min_split_fraction * size`` points
        the split also falls back to an equal split; used to guard against
        pathological unbalanced trees.

    Returns
    -------
    ClusterTree
    """
    X = check_array_2d(X, "X")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    n = X.shape[0]

    perm = np.empty(n, dtype=np.intp)
    nodes: List[ClusterNode] = []

    # Work stack of (original indices of this cluster, parent node id,
    # is_left_child, level, start offset in permuted order).
    # We build iteratively to avoid recursion-depth limits on large n.
    root_id = 0
    nodes.append(ClusterNode(start=0, stop=n, level=0))
    stack: List[Tuple[np.ndarray, int]] = [(np.arange(n, dtype=np.intp), root_id)]

    while stack:
        idx, node_id = stack.pop()
        node = nodes[node_id]
        size = idx.shape[0]
        if size <= leaf_size:
            perm[node.start:node.stop] = idx
            continue

        mask = np.asarray(splitter(X[idx], rng), dtype=bool)
        if mask.shape[0] != size:
            raise ValueError(
                f"splitter returned a mask of length {mask.shape[0]} for a "
                f"cluster of size {size}")
        n_left = int(mask.sum())
        min_side = int(np.floor(min_split_fraction * size))
        if n_left == 0 or n_left == size or n_left < min_side or (size - n_left) < min_side:
            # Degenerate split: fall back to an equal (natural) split so that
            # the recursion always makes progress.
            mask = np.zeros(size, dtype=bool)
            mask[: size // 2] = True
            n_left = size // 2

        left_idx = idx[mask]
        right_idx = idx[~mask]

        left_id = len(nodes)
        nodes.append(ClusterNode(start=node.start, stop=node.start + n_left,
                                 parent=node_id, level=node.level + 1))
        right_id = len(nodes)
        nodes.append(ClusterNode(start=node.start + n_left, stop=node.stop,
                                 parent=node_id, level=node.level + 1))
        node.left = left_id
        node.right = right_id

        stack.append((right_idx, right_id))
        stack.append((left_idx, left_id))

    return ClusterTree(perm, nodes, root=root_id)
