"""PCA-tree ordering.

"At each step of the recursive clustering, the data is split according to
the mean value in the projection onto the first principal component (i.e.
direction of the maximum spread).  We expect this to be a better clustering
than the simpler k-d tree method, at a somewhat higher cost."
(Section 4.3 of the paper.)

The first principal component of each cluster is computed with a thin SVD of
the centred points (equivalently the leading right singular vector), which
is ``O(m d min(m, d))`` per split — the "somewhat higher cost".
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..utils.random import as_generator
from ..utils.validation import check_array_2d
from .tree import ClusterTree, tree_from_splitter


def _first_principal_component(points: np.ndarray) -> np.ndarray:
    """Leading right singular vector of the centred point cloud."""
    centred = points - points.mean(axis=0, keepdims=True)
    if centred.shape[0] < 2 or not np.any(centred):
        # Degenerate cluster: any direction works; pick the first axis.
        direction = np.zeros(points.shape[1])
        direction[0] = 1.0
        return direction
    # Economy SVD; only the first right singular vector is needed.
    _, _, vt = scipy.linalg.svd(centred, full_matrices=False,
                                check_finite=False, lapack_driver="gesdd")
    return vt[0]


class PCATreeSplitter:
    """Split at the mean of the projection onto the first principal component."""

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        direction = _first_principal_component(points)
        proj = points @ direction
        mask = proj <= proj.mean()
        if mask.all() or not mask.any():
            order = np.argsort(proj, kind="stable")
            mask = np.zeros(points.shape[0], dtype=bool)
            mask[order[: points.shape[0] // 2]] = True
        return mask


def pca_tree(X: np.ndarray, leaf_size: int = 16, seed=None) -> ClusterTree:
    """Build the PCA-tree ordering of the dataset."""
    X = check_array_2d(X, "X")
    return tree_from_splitter(X, PCATreeSplitter(), leaf_size=leaf_size,
                              rng=as_generator(seed))
