"""K-d tree (KD) ordering.

"The data is split along the coordinate dimension of maximum spread, at the
mean value for that coordinate. ... If the resulting clusters are still too
unbalanced, i.e., when ``100 * size(cluster1) < size(cluster2)``, we fall
back to splitting at the median."  (Section 4.3 of the paper.)

At every recursion step a fresh direction of maximum spread is determined
for the current subset of points.
"""

from __future__ import annotations

import numpy as np

from ..utils.random import as_generator
from ..utils.validation import check_array_2d
from .tree import ClusterTree, tree_from_splitter


class KDTreeSplitter:
    """Coordinate-aligned splitter at the mean (median fallback).

    Parameters
    ----------
    use_median:
        If ``True`` always split at the median (the balanced variant
        discussed in the paper); if ``False`` (default) split at the mean
        and only fall back to the median when the result is unbalanced.
    balance_threshold:
        The unbalance factor triggering the median fallback (paper: 100).
    """

    def __init__(self, use_median: bool = False, balance_threshold: float = 100.0):
        if balance_threshold < 1:
            raise ValueError("balance_threshold must be >= 1")
        self.use_median = bool(use_median)
        self.balance_threshold = float(balance_threshold)

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        spread = points.max(axis=0) - points.min(axis=0)
        dim = int(np.argmax(spread))
        coord = points[:, dim]
        if not self.use_median:
            mask = coord <= coord.mean()
            small = min(int(mask.sum()), int((~mask).sum()))
            large = max(int(mask.sum()), int((~mask).sum()))
            if small > 0 and self.balance_threshold * small >= large:
                return mask
        # Median split: guaranteed (near) balanced.
        median = np.median(coord)
        mask = coord <= median
        # Ties at the median can make one side empty or oversized; enforce an
        # exact half split on the sorted order in that case.
        if mask.all() or not mask.any():
            order = np.argsort(coord, kind="stable")
            mask = np.zeros(points.shape[0], dtype=bool)
            mask[order[: points.shape[0] // 2]] = True
        return mask


def kd_tree(
    X: np.ndarray,
    leaf_size: int = 16,
    use_median: bool = False,
    balance_threshold: float = 100.0,
    seed=None,
) -> ClusterTree:
    """Build the k-d tree ordering of the dataset."""
    X = check_array_2d(X, "X")
    splitter = KDTreeSplitter(use_median=use_median,
                              balance_threshold=balance_threshold)
    return tree_from_splitter(X, splitter, leaf_size=leaf_size,
                              rng=as_generator(seed))
