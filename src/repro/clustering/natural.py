"""Natural ordering (NP): the no-preprocessing baseline.

"The input is not reordered, no information about mutual distances is used
to permute the matrix.  The HSS tree is a complete binary tree, constructed
by recursively splitting index sets in two equal (+-1) parts."
(Section 4.3 of the paper.)
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_array_2d
from .tree import ClusterTree, tree_from_splitter


class NaturalSplitter:
    """Splitter that ignores the geometry and halves the index range."""

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        size = points.shape[0]
        mask = np.zeros(size, dtype=bool)
        mask[: size // 2] = True
        return mask


def natural_tree(X: np.ndarray, leaf_size: int = 16) -> ClusterTree:
    """Build the natural-ordering cluster tree (identity permutation).

    Parameters
    ----------
    X:
        Data points; only the number of rows matters.
    leaf_size:
        Maximum leaf (diagonal block) size.
    """
    X = check_array_2d(X, "X")
    tree = tree_from_splitter(X, NaturalSplitter(), leaf_size=leaf_size,
                              rng=np.random.default_rng(0))
    # The natural ordering never permutes anything; assert the invariant to
    # document it (equal halving preserves index order by construction).
    assert np.array_equal(tree.perm, np.arange(X.shape[0])), \
        "natural ordering must produce the identity permutation"
    return tree
