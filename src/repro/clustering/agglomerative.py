"""Agglomerative (bottom-up) clustering reference ordering.

The paper experimented with agglomerative / hierarchical clusterings and
found them "very good at reducing memory and ranks of the HSS structure"
but non-competitive overall because of "very unbalanced class sizes, or
lack of parallelism (O(n^2) scaling, requiring to construct and store the
complete distance matrix)" (Section 4.3).

This module provides that reference point: an average-linkage agglomerative
clustering (via :mod:`scipy.cluster.hierarchy`), converted into a
:class:`ClusterTree` by cutting the dendrogram top-down until clusters reach
the requested leaf size.  It is intentionally O(n^2) in time and memory and
should only be used on modest problem sizes.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd

from ..utils.validation import check_array_2d
from .tree import ClusterNode, ClusterTree


def agglomerative_tree(X: np.ndarray, leaf_size: int = 16,
                       linkage: str = "average") -> ClusterTree:
    """Build a cluster tree from an agglomerative clustering dendrogram.

    Parameters
    ----------
    X:
        Data points ``(n, d)``.  The full condensed distance matrix is
        formed, so ``n`` should stay in the low thousands.
    leaf_size:
        Dendrogram descent stops when a cluster has at most this many points.
    linkage:
        Any linkage criterion understood by
        :func:`scipy.cluster.hierarchy.linkage` (default ``"average"``).

    Returns
    -------
    ClusterTree
        The permutation is the dendrogram leaf order, so every dendrogram
        cluster is a contiguous range.
    """
    X = check_array_2d(X, "X")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    n = X.shape[0]
    if n == 1:
        return ClusterTree(np.array([0], dtype=np.intp), [ClusterNode(0, 1)])

    condensed = ssd.pdist(X)
    Z = sch.linkage(condensed, method=linkage)
    # Dendrogram leaf order: points of any internal cluster are contiguous.
    perm = np.asarray(sch.leaves_list(Z), dtype=np.intp)
    inv = np.empty(n, dtype=np.intp)
    inv[perm] = np.arange(n, dtype=np.intp)

    # Member lists (positions in the permuted order) for every dendrogram node.
    # Node ids: 0..n-1 are singletons, n..2n-2 are merges in Z order.
    members: List[np.ndarray] = [np.array([inv[i]], dtype=np.intp) for i in range(n)]
    children = {}
    for k in range(Z.shape[0]):
        a, b = int(Z[k, 0]), int(Z[k, 1])
        node_id = n + k
        merged = np.sort(np.concatenate([members[a], members[b]]))
        members.append(merged)
        children[node_id] = (a, b)

    nodes: List[ClusterNode] = []

    def positions_range(node: int) -> tuple:
        pos = members[node]
        start, stop = int(pos[0]), int(pos[-1]) + 1
        if stop - start != pos.shape[0]:  # pragma: no cover - guaranteed by leaf order
            raise AssertionError("dendrogram cluster is not contiguous in leaf order")
        return start, stop

    def build(dendro_node: int, level: int) -> int:
        start, stop = positions_range(dendro_node)
        my_id = len(nodes)
        nodes.append(ClusterNode(start=start, stop=stop, level=level))
        size = stop - start
        if size > leaf_size and dendro_node in children:
            a, b = children[dendro_node]
            # Order the two children so the left child starts at ``start``.
            sa, _ = positions_range(a)
            first, second = (a, b) if sa == start else (b, a)
            left_id = build(first, level + 1)
            right_id = build(second, level + 1)
            nodes[my_id].left = left_id
            nodes[my_id].right = right_id
            nodes[left_id].parent = my_id
            nodes[right_id].parent = my_id
        return my_id

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * n + 100))
    try:
        root = build(2 * n - 2, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    return ClusterTree(perm, nodes, root=root)
