"""Clustering quality diagnostics.

The paper deliberately does *not* use standard clustering quality metrics:
"Rather than the standard dissimilarity metrics measuring clustering
quality, the following performance metrics are used in this work: Memory,
Accuracy, Time, Maximum rank" (Section 4.2).  Those are produced by the HSS
and KRR modules.  The functions here provide the complementary *geometric*
view (inter- vs intra-cluster distances, tree balance), which is useful for
understanding *why* a given ordering compresses well and is exercised by the
ablation studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.distance import pairwise_sq_dists
from ..utils.validation import check_array_2d
from .tree import ClusterTree


def cluster_separation_ratio(X: np.ndarray, tree: ClusterTree,
                             node: Optional[int] = None) -> float:
    """Ratio of inter-cluster to intra-cluster mean distance at a split.

    For the children ``(c1, c2)`` of ``node`` (default: the root), computes

        mean_{i in c1, j in c2} ||x_i - x_j||  /
        mean of (mean pairwise distance within c1, within c2)

    Larger is better: well separated clusters mean low off-diagonal rank.
    Returns ``inf`` when a child is a singleton (no intra distance).
    """
    X = check_array_2d(X, "X")
    node = tree.root if node is None else int(node)
    nd = tree.node(node)
    if nd.is_leaf:
        raise ValueError("node must be an internal node with two children")
    Xp = tree.apply_permutation(X)
    left = Xp[tree.node(nd.left).start:tree.node(nd.left).stop]
    right = Xp[tree.node(nd.right).start:tree.node(nd.right).stop]
    inter = float(np.sqrt(pairwise_sq_dists(left, right)).mean())
    intras = []
    for side in (left, right):
        if side.shape[0] > 1:
            d = np.sqrt(pairwise_sq_dists(side))
            intras.append(float(d[np.triu_indices_from(d, k=1)].mean()))
    if not intras:
        return float("inf")
    intra = float(np.mean(intras))
    if intra == 0.0:
        return float("inf")
    return inter / intra


def tree_balance(tree: ClusterTree) -> float:
    """Balance factor of the tree: max over internal nodes of max(|c1|,|c2|)/size.

    A perfectly balanced binary tree gives 0.5; values near 1.0 indicate the
    pathological unbalanced splits the k-d tree median fallback protects
    against.
    """
    worst = 0.5
    for nd in tree.nodes:
        if nd.is_leaf or nd.size == 0:
            continue
        left = tree.node(nd.left).size
        right = tree.node(nd.right).size
        worst = max(worst, max(left, right) / nd.size)
    return float(worst)


def average_leaf_size(tree: ClusterTree) -> float:
    """Mean leaf (diagonal block) size of the tree."""
    sizes = tree.leaf_sizes()
    return float(sizes.mean()) if sizes.size else 0.0
