"""Recursive two-means (2MN) clustering.

The paper's best-performing ordering: at every level of the recursion the
points of the current cluster are split into two groups with k-means
(k = 2).  The first centre is picked uniformly at random, the second with
probability proportional to the squared distance from the first (the
k-means++ style seeding described in Section 4.3: "Initially, we pick one
point randomly and select the second one with a probability proportional to
the distance from the first one").  Lloyd iterations then run until no point
changes cluster or ``max_iter`` is reached ("Typically only a few iterations
are required").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.random import as_generator
from ..utils.validation import check_array_2d
from .tree import ClusterTree, tree_from_splitter


def _seed_centers(points: np.ndarray, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Pick two initial centres with distance-proportional seeding."""
    n = points.shape[0]
    first = int(rng.integers(n))
    c0 = points[first]
    sq = np.einsum("ij,ij->i", points - c0, points - c0)
    total = float(sq.sum())
    if total <= 0.0:
        # All points identical: any second centre works.
        second = int(rng.integers(n))
    else:
        second = int(rng.choice(n, p=sq / total))
    return c0.copy(), points[second].copy()


def two_means_split(
    points: np.ndarray,
    rng=None,
    max_iter: int = 20,
) -> np.ndarray:
    """Split a point set in two clusters with one run of 2-means.

    Parameters
    ----------
    points:
        Array of shape ``(m, d)``.
    rng:
        Seed or generator for the centre initialisation.
    max_iter:
        Maximum number of Lloyd iterations.

    Returns
    -------
    numpy.ndarray
        Boolean mask, ``True`` for points assigned to the first cluster.
    """
    points = np.asarray(points, dtype=np.float64)
    rng = as_generator(rng)
    m = points.shape[0]
    if m < 2:
        return np.ones(m, dtype=bool)
    c0, c1 = _seed_centers(points, rng)
    assign = np.zeros(m, dtype=bool)
    for _ in range(max(int(max_iter), 1)):
        d0 = np.einsum("ij,ij->i", points - c0, points - c0)
        d1 = np.einsum("ij,ij->i", points - c1, points - c1)
        new_assign = d0 <= d1
        if new_assign.all() or not new_assign.any():
            # One cluster swallowed everything; split at the median distance
            # from the surviving centre so progress is always made.
            d = d0 if new_assign.all() else d1
            new_assign = d <= np.median(d)
            if new_assign.all() or not new_assign.any():
                new_assign = np.zeros(m, dtype=bool)
                new_assign[: m // 2] = True
            return new_assign
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        c0 = points[assign].mean(axis=0)
        c1 = points[~assign].mean(axis=0)
    return assign


class TwoMeansSplitter:
    """Stateful splitter wrapping :func:`two_means_split` for tree building."""

    def __init__(self, max_iter: int = 20):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.max_iter = int(max_iter)

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return two_means_split(points, rng=rng, max_iter=self.max_iter)


def two_means_tree(
    X: np.ndarray,
    leaf_size: int = 16,
    max_iter: int = 20,
    seed=None,
) -> ClusterTree:
    """Build the recursive two-means (2MN) cluster tree.

    Because the seeding is random, different seeds give slightly different
    trees; the paper averages the 2MN memory numbers over three runs
    (Section 5.2).  Pass explicit ``seed`` values to reproduce that protocol.
    """
    X = check_array_2d(X, "X")
    rng = as_generator(seed)
    return tree_from_splitter(X, TwoMeansSplitter(max_iter=max_iter),
                              leaf_size=leaf_size, rng=rng)
