"""Ball-tree style ordering.

Previous work on kernel-matrix approximation (ASKIT / INV-ASKIT and the
k-nearest-neighbour kernels the paper cites) reorders the points with ball
trees.  We include a classic two-farthest-seeds ball-tree split as an
additional comparison point: pick a random point, find the farthest point
``a`` from it, find the farthest point ``b`` from ``a``, then assign every
point to the closer of ``a`` and ``b``.
"""

from __future__ import annotations

import numpy as np

from ..utils.random import as_generator
from ..utils.validation import check_array_2d
from .tree import ClusterTree, tree_from_splitter


class BallTreeSplitter:
    """Two-farthest-points splitter (classic ball-tree construction rule)."""

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        m = points.shape[0]
        if m < 2:
            return np.ones(m, dtype=bool)
        start = int(rng.integers(m))
        d = np.einsum("ij,ij->i", points - points[start], points - points[start])
        a = int(np.argmax(d))
        da = np.einsum("ij,ij->i", points - points[a], points - points[a])
        b = int(np.argmax(da))
        db = np.einsum("ij,ij->i", points - points[b], points - points[b])
        mask = da <= db
        if mask.all() or not mask.any():
            order = np.argsort(da, kind="stable")
            mask = np.zeros(m, dtype=bool)
            mask[order[: m // 2]] = True
        return mask


def ball_tree(X: np.ndarray, leaf_size: int = 16, seed=None) -> ClusterTree:
    """Build the ball-tree ordering of the dataset."""
    X = check_array_2d(X, "X")
    return tree_from_splitter(X, BallTreeSplitter(), leaf_size=leaf_size,
                              rng=as_generator(seed))
