"""OpenTuner-style black-box tuner: a bandit over search techniques.

OpenTuner's core design (Ansel et al., 2014 — reference [31] of the paper)
is a *meta* optimizer: several search techniques propose configurations and
a multi-armed bandit with an area-under-curve credit assignment decides
which technique gets to propose next.  This module implements that
architecture in miniature with five techniques that cover the same ground
as OpenTuner's default ensemble:

* pure random sampling (global exploration),
* Gaussian perturbation of the incumbent (local exploitation, log-scale),
* λ-only perturbation of the incumbent (holds every other parameter fixed
  so the evaluation is a λ-only move and rides the objective's cheap
  refit path — the paper's Section-5.3 diagonal-update observation),
* differential evolution (population-based recombination),
* Nelder–Mead style reflection steps on the best simplex.

The bandit uses a UCB1 rule on the recent success rate (an evaluation is a
"success" if it improves the incumbent), which is a faithful simplification
of OpenTuner's sliding-window AUC bandit.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..utils.random import as_generator
from .result import TuningResult, observed_move, observed_refit
from .search_space import ParameterSpace

#: Relative evaluation costs by move class (λ-refit ≪ recompression ≪ cold
#: build), used by the cost-aware credit assignment.  The exact ratios only
#: shape arm preference, they are not timings.
MOVE_COSTS = {"lam_move": 1.0, "h_move": 4.0, "cold": 20.0}


class _Technique(abc.ABC):
    """A search technique proposing configurations."""

    name: str = "abstract"

    def __init__(self, space: ParameterSpace, rng: np.random.Generator):
        self.space = space
        self.rng = rng

    @abc.abstractmethod
    def propose(self, result: TuningResult) -> Dict[str, float]:
        """Propose the next configuration given the search history."""

    def _log_array(self, config: Dict[str, float]) -> np.ndarray:
        return np.log(np.maximum(self.space.to_array(config), 1e-12))

    def _from_log(self, values: np.ndarray) -> Dict[str, float]:
        return self.space.from_array(np.exp(values))


class _RandomTechnique(_Technique):
    name = "random"

    def propose(self, result: TuningResult) -> Dict[str, float]:
        return self.space.sample(self.rng)


class _PerturbTechnique(_Technique):
    """Gaussian perturbation of the incumbent in log space."""

    name = "perturb"

    def __init__(self, space: ParameterSpace, rng: np.random.Generator,
                 scale: float = 0.25):
        super().__init__(space, rng)
        self.scale = float(scale)

    def propose(self, result: TuningResult) -> Dict[str, float]:
        if not result.best_config:
            return self.space.sample(self.rng)
        center = self._log_array(result.best_config)
        step = self.rng.normal(scale=self.scale, size=center.shape)
        return self._from_log(center + step)


class _LambdaPerturbTechnique(_Technique):
    """Perturb only ``lam`` of the incumbent (a guaranteed λ-only move).

    Every proposal keeps the incumbent's other parameters bit-for-bit and
    perturbs the ridge parameter in log space, so when the previous
    evaluation visited the incumbent's ``h`` a refit-aware objective takes
    the cheap refit path — the tuner's way of exploiting the paper's
    Section-5.3 observation that λ changes do not require recompression.
    """

    name = "lam_perturb"

    def __init__(self, space: ParameterSpace, rng: np.random.Generator,
                 scale: float = 0.5):
        super().__init__(space, rng)
        self.scale = float(scale)

    def propose(self, result: TuningResult) -> Dict[str, float]:
        if not result.best_config or "lam" not in self.space.names:
            return self.space.sample(self.rng)
        config = dict(result.best_config)
        lam = max(float(config["lam"]), 1e-12)
        config["lam"] = float(np.exp(
            np.log(lam) + self.rng.normal(scale=self.scale)))
        return config


class _DifferentialEvolutionTechnique(_Technique):
    """DE/rand/1 recombination of three random history points (log space)."""

    name = "differential_evolution"

    def __init__(self, space: ParameterSpace, rng: np.random.Generator,
                 weight: float = 0.7):
        super().__init__(space, rng)
        self.weight = float(weight)

    def propose(self, result: TuningResult) -> Dict[str, float]:
        history = result.history
        if len(history) < 4:
            return self.space.sample(self.rng)
        picks = self.rng.choice(len(history), size=3, replace=False)
        a, b, c = (self._log_array(history[int(i)]) for i in picks)
        candidate = a + self.weight * (b - c)
        return self._from_log(candidate)


class _NelderMeadTechnique(_Technique):
    """Reflection of the worst of the best-(d+1) points through their centroid."""

    name = "nelder_mead"

    def propose(self, result: TuningResult) -> Dict[str, float]:
        history = result.history
        d = self.space.dim
        if len(history) < d + 1:
            return self.space.sample(self.rng)
        ranked = sorted(history, key=lambda e: e["objective"], reverse=True)
        simplex = ranked[: d + 1]
        points = np.array([self._log_array(e) for e in simplex])
        worst = points[-1]
        centroid = points[:-1].mean(axis=0)
        reflected = centroid + 1.0 * (centroid - worst)
        # A pinch of noise avoids proposing the exact same point repeatedly.
        reflected += self.rng.normal(scale=0.05, size=reflected.shape)
        return self._from_log(reflected)


class BanditTuner:
    """Multi-armed-bandit meta optimizer over several search techniques.

    Parameters
    ----------
    space:
        Parameter space to search.
    budget:
        Total number of objective evaluations (the paper's OpenTuner runs
        used ~100).
    seed:
        Random seed.
    window:
        Length of the sliding success window used by the credit assignment.
    exploration:
        UCB exploration constant.
    cost_aware:
        When ``True`` (default) and the objective reports move cost
        classes (see :class:`repro.tuning.KRRObjective`), each arm's
        exploitation term becomes *success per unit cost*: the sliding-
        window success rate is divided by the arm's mean observed move
        cost (:data:`MOVE_COSTS` — λ-refit ≪ recompression ≪ cold build).
        Arms whose proposals ride the cheap refit path (notably the
        λ-perturbation technique) then win ties against equally-successful
        expensive arms, steering the budget toward cheap moves.  With an
        objective that does not report moves this is a no-op and the
        trajectory is identical to ``cost_aware=False``.
    """

    def __init__(self, space: ParameterSpace, budget: int = 100, seed=None,
                 window: int = 30, exploration: float = 1.0,
                 cost_aware: bool = True):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.space = space
        self.budget = int(budget)
        self.seed = seed
        self.window = int(window)
        self.exploration = float(exploration)
        self.cost_aware = bool(cost_aware)
        self.technique_usage_: Dict[str, int] = {}

    def _make_techniques(self, rng: np.random.Generator) -> List[_Technique]:
        return [
            _RandomTechnique(self.space, rng),
            _PerturbTechnique(self.space, rng),
            _LambdaPerturbTechnique(self.space, rng),
            _DifferentialEvolutionTechnique(self.space, rng),
            _NelderMeadTechnique(self.space, rng),
        ]

    def optimize(self, objective: Callable[[Dict[str, float]], float]) -> TuningResult:
        """Run the tuner and return the :class:`TuningResult`."""
        rng = as_generator(self.seed)
        techniques = self._make_techniques(rng)
        n_tech = len(techniques)
        successes: List[Deque[int]] = [deque(maxlen=self.window) for _ in range(n_tech)]
        costs: List[Deque[float]] = [deque(maxlen=self.window) for _ in range(n_tech)]
        counts = np.zeros(n_tech, dtype=np.int64)
        result = TuningResult()
        self.technique_usage_ = {t.name: 0 for t in techniques}

        for step in range(self.budget):
            if step < n_tech:
                pick = step  # play every arm once
            else:
                scores = np.empty(n_tech)
                for i in range(n_tech):
                    wins = sum(successes[i]) if successes[i] else 0
                    plays = len(successes[i]) if successes[i] else 1
                    mean = wins / plays
                    if self.cost_aware and costs[i]:
                        # success per unit cost: cheap arms win ties
                        mean /= (sum(costs[i]) / len(costs[i]))
                    bonus = self.exploration * np.sqrt(
                        np.log(step + 1) / max(counts[i], 1))
                    scores[i] = mean + bonus
                pick = int(np.argmax(scores))

            technique = techniques[pick]
            config = self.space.clip(technique.propose(result))
            previous_best = result.best_value
            value = objective(config)
            move = observed_move(objective)
            result.record(config, value, refit=observed_refit(objective),
                          move=move)
            improved = int(value > previous_best)
            successes[pick].append(improved)
            if move is not None:
                costs[pick].append(MOVE_COSTS.get(move, 1.0))
            counts[pick] += 1
            self.technique_usage_[technique.name] += 1

        return result
