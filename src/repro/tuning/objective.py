"""The KRR tuning objective: validation accuracy as a function of (h, lambda).

Two practical details from the paper are reflected here:

* the objective is the accuracy on a *validation* set held out from the
  training data (the test set is only touched once, after tuning);
* "When the parameter lambda changes, we only need to update the diagonal
  entries of the HSS matrix, and there is no need to perform HSS
  construction again.  However, a change to h requires to perform HSS
  reconstruction from scratch, which is costly." (Section 5.3).  The
  objective therefore caches per-``h`` state: with the dense solver it
  caches the kernel matrix, and for every new ``lambda`` only re-factors;
  the evaluation counter still counts every (h, lambda) pair as one run,
  exactly like the paper's "runs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg

from ..kernels.gaussian import GaussianKernel
from ..krr.metrics import accuracy
from ..utils.validation import check_array_2d, check_labels_binary


@dataclass
class EvaluationRecord:
    """One objective evaluation (a single "run" in the paper's terminology)."""

    h: float
    lam: float
    accuracy: float
    reused_kernel: bool


class KRRObjective:
    """Validation-accuracy objective for (h, lambda) tuning.

    Parameters
    ----------
    X_train, y_train:
        Training data with ±1 labels.
    X_val, y_val:
        Validation data with ±1 labels (drives the tuning).
    cache_kernels:
        Reuse the kernel matrix across evaluations that share ``h``
        (the cheap-lambda-update optimization).  The cache holds a single
        ``h`` value at a time, so memory stays bounded.

    Notes
    -----
    The objective uses the dense solver: tuning runs are small (the paper
    tunes on sub-sampled data) and the dense path removes compression noise
    from the comparison between the search strategies, which is what
    Figure 6 is about.
    """

    def __init__(self, X_train: np.ndarray, y_train: np.ndarray,
                 X_val: np.ndarray, y_val: np.ndarray,
                 cache_kernels: bool = True):
        self.X_train = check_array_2d(X_train, "X_train")
        self.y_train = check_labels_binary(y_train, "y_train")
        self.X_val = check_array_2d(X_val, "X_val")
        self.y_val = check_labels_binary(y_val, "y_val")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("X_train and y_train size mismatch")
        if self.X_val.shape[0] != self.y_val.shape[0]:
            raise ValueError("X_val and y_val size mismatch")
        if self.X_train.shape[1] != self.X_val.shape[1]:
            raise ValueError("train and validation dimensions differ")
        self.cache_kernels = bool(cache_kernels)
        self.records: List[EvaluationRecord] = []
        self._cached_h: Optional[float] = None
        self._cached_K: Optional[np.ndarray] = None
        self._cached_Kval: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ call
    def __call__(self, config: Dict[str, float]) -> float:
        """Evaluate the validation accuracy of one (h, lambda) configuration."""
        h = float(config["h"])
        lam = float(config["lam"])
        if h <= 0 or lam < 0:
            raise ValueError(f"invalid configuration h={h}, lam={lam}")

        reused = False
        if self.cache_kernels and self._cached_h == h:
            K = self._cached_K
            K_val = self._cached_Kval
            reused = True
        else:
            kernel = GaussianKernel(h=h)
            K = kernel.matrix(self.X_train)
            K_val = kernel.matrix(self.X_val, self.X_train)
            if self.cache_kernels:
                self._cached_h = h
                self._cached_K = K
                self._cached_Kval = K_val

        A = K + lam * np.eye(K.shape[0])
        weights = scipy.linalg.solve(A, self.y_train, assume_a="pos")
        scores = K_val @ weights
        pred = np.where(scores >= 0.0, 1.0, -1.0)
        acc = accuracy(self.y_val, pred)
        self.records.append(EvaluationRecord(h=h, lam=lam, accuracy=acc,
                                             reused_kernel=reused))
        return acc

    # ------------------------------------------------------------- reporting
    @property
    def evaluations(self) -> int:
        """Number of (h, lambda) evaluations performed so far."""
        return len(self.records)

    @property
    def kernel_constructions(self) -> int:
        """Number of kernel matrix (re)constructions (h changes)."""
        return sum(1 for r in self.records if not r.reused_kernel)

    def best(self) -> Tuple[Dict[str, float], float]:
        """Best configuration seen so far and its accuracy."""
        if not self.records:
            raise RuntimeError("no evaluations performed yet")
        best = max(self.records, key=lambda r: r.accuracy)
        return {"h": best.h, "lam": best.lam}, best.accuracy
