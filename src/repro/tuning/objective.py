"""The KRR tuning objective: validation accuracy as a function of (h, lambda).

Two practical details from the paper are reflected here:

* the objective is the accuracy on a *validation* set held out from the
  training data (the test set is only touched once, after tuning);
* "When the parameter lambda changes, we only need to update the diagonal
  entries of the HSS matrix, and there is no need to perform HSS
  construction again.  However, a change to h requires to perform HSS
  reconstruction from scratch, which is costly." (Section 5.3).  The
  objective therefore detects λ-only moves — consecutive evaluations that
  share every parameter except ``lam`` — and takes the *refit path*: with
  the dense backend it reuses the cached λ-free kernel matrices and only
  re-factors; with the ``"hss"`` backend it reuses the resident
  :class:`repro.hss.CompressedKernel` and redoes only the ULV
  factorization (:meth:`repro.krr.solvers.KernelSystemSolver.refit`).
  The evaluation counter still counts every (h, lambda) pair as one run,
  exactly like the paper's "runs".

All three searchers (:class:`repro.tuning.GridSearch` orders its grid so
λ varies fastest, :class:`repro.tuning.RandomSearch` can sweep several λ
values per sampled h, and :class:`repro.tuning.BanditTuner` carries a
λ-perturbation technique) are shaped to produce λ-only moves, so most of
a tuning run rides the cheap refit path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg

from ..kernels.gaussian import GaussianKernel
from ..krr.metrics import accuracy
from ..utils.validation import check_array_2d, check_labels_binary


@dataclass
class EvaluationRecord:
    """One objective evaluation (a single "run" in the paper's terminology).

    Attributes
    ----------
    h, lam:
        The evaluated configuration.
    accuracy:
        Validation accuracy of that configuration.
    reused_kernel:
        Whether resident λ-independent kernel state was reused (no kernel
        build / compression happened).
    refit:
        Whether the evaluation rode the refit path: it reused a resident
        λ-free kernel/compression and paid only factorization + solve.
        λ-only moves always do; with ``cache_size > 1`` an ``h``-move
        returning to a still-cached ``h`` does too (the hss backend
        literally calls ``solver.refit`` there), so this flag counts
        *avoided rebuilds*, not strictly consecutive λ-only pairs.
    move:
        Cost class of the evaluation, cheapest first:

        * ``"lam_move"`` — the per-``h`` cache held the λ-free state, only
          a factorization (or a prefactored lookup) + solve was paid;
        * ``"h_move"`` — a resident solver was re-targeted to the new
          ``h`` via :meth:`~repro.krr.solvers.KernelSystemSolver.refit_kernel`
          (structure-reuse recompression: the clustering, permutation and
          admissibility partition were kept, only the kernel numerics were
          redone);
        * ``"cold"`` — everything was built from scratch.
    """

    h: float
    lam: float
    accuracy: float
    reused_kernel: bool
    refit: bool = False
    move: str = "cold"


class KRRObjective:
    """Validation-accuracy objective for (h, lambda) tuning.

    Parameters
    ----------
    X_train, y_train:
        Training data with ±1 labels.
    X_val, y_val:
        Validation data with ±1 labels (drives the tuning).
    cache_kernels:
        Reuse the λ-independent kernel state across evaluations that share
        ``h`` (the cheap-lambda-update optimization).
    cache_size:
        Number of distinct ``h`` values whose λ-independent state is kept
        resident (LRU-evicted beyond that).  The default of 1 matches the
        historical single-``h`` memory profile and is all that
        λ-grouped searchers (λ-fastest grid order, ``lam_sweep`` random
        search) need.  Interleaving searchers benefit from a deeper
        cache: :class:`repro.tuning.BanditTuner`'s λ-perturb technique
        revisits the incumbent between exploration moves, so a
        ``cache_size`` of ~6 (one slot per technique-rotation step) keeps
        the incumbent's state resident at a cost of ``cache_size`` kernel
        matrices (dense backend) or compressions (hss backend).
    solver:
        Evaluation backend.  ``"dense"`` (default) removes compression
        noise from the strategy comparison, which is what Figure 6 is
        about; a λ-only move then skips the two kernel-matrix builds.
        ``"hss"`` runs the paper's actual training stack: one λ-free
        compression per ``h`` (:class:`repro.krr.HSSSolver`), and every
        λ-only move refits the resident compression — one ``O(n r^2)``
        ULV instead of a full build.
    leaf_size, seed:
        Clustering / sampling knobs of the ``"hss"`` backend (the
        clustering depends on neither ``h`` nor ``lam``, so it is computed
        exactly once).
    hss_options, hmatrix_options, use_hmatrix_sampling:
        Compression options of the ``"hss"`` backend.
    cv:
        With the default 1 each evaluation scores the held-out validation
        split.  With ``cv = K > 1`` the objective instead returns K-fold
        cross-validation accuracy on the *training* set (folds assign
        original index ``i`` to fold ``i % K``) and the validation split
        is ignored.  Each fold is solved against the **shared** full-data
        factorization: removing a fold from the training set is a
        principal-submatrix update, so per fold the hss backend performs
        one multi-RHS solve (fold-indicator columns plus the masked
        labels) and a small dense fold-sized correction solve instead of
        a fresh compression + factorization; the dense backend solves the
        exact complement submatrix system.  Both are algebraically
        identical to training each fold's complement from scratch.
    """

    def __init__(self, X_train: np.ndarray, y_train: np.ndarray,
                 X_val: np.ndarray, y_val: np.ndarray,
                 cache_kernels: bool = True,
                 cache_size: int = 1,
                 solver: str = "dense",
                 leaf_size: int = 16,
                 seed=0,
                 hss_options=None,
                 hmatrix_options=None,
                 use_hmatrix_sampling: bool = True,
                 cv: int = 1):
        self.X_train = check_array_2d(X_train, "X_train")
        self.y_train = check_labels_binary(y_train, "y_train")
        self.X_val = check_array_2d(X_val, "X_val")
        self.y_val = check_labels_binary(y_val, "y_val")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("X_train and y_train size mismatch")
        if self.X_val.shape[0] != self.y_val.shape[0]:
            raise ValueError("X_val and y_val size mismatch")
        if self.X_train.shape[1] != self.X_val.shape[1]:
            raise ValueError("train and validation dimensions differ")
        solver = str(solver).strip().lower()
        if solver not in ("dense", "hss"):
            raise ValueError(f"solver must be 'dense' or 'hss', got {solver!r}")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        cv = int(cv)
        if cv < 1:
            raise ValueError("cv must be >= 1")
        if cv > self.X_train.shape[0]:
            raise ValueError(
                f"cv={cv} exceeds the number of training points "
                f"({self.X_train.shape[0]})")
        self.solver = solver
        self.cache_kernels = bool(cache_kernels)
        self.cache_size = int(cache_size)
        self.leaf_size = int(leaf_size)
        self.seed = seed
        self.hss_options = hss_options
        self.hmatrix_options = hmatrix_options
        self.use_hmatrix_sampling = bool(use_hmatrix_sampling)
        self.cv = cv
        self.records: List[EvaluationRecord] = []
        # LRU cache of λ-independent per-h state: dense -> (K, K_val),
        # hss -> (HSSSolver holding the λ-free compression, K_val).
        self._cache: "dict[float, tuple]" = {}
        # clustering is (h, λ)-independent, computed exactly once (hss)
        self._clustering = None
        # λ values announced by the searcher for the upcoming group;
        # consumed (batch-prefactored) by the next hss evaluation.
        self._lam_schedule: Optional[List[float]] = None

    @classmethod
    def from_config(cls, config, X_train: np.ndarray, y_train: np.ndarray,
                    X_val: np.ndarray, y_val: np.ndarray) -> "KRRObjective":
        """Build an objective from a :class:`repro.runtime.RuntimeConfig`.

        The tuning section supplies the backend (``tuning.backend``) and
        per-``h`` cache size; the clustering / compression sections flow
        into the ``"hss"`` backend exactly as the constructor arguments
        would.

        Parameters
        ----------
        config:
            The resolved :class:`repro.runtime.RuntimeConfig`.
        X_train, y_train:
            Training split (±1 labels).
        X_val, y_val:
            Validation split scored by each evaluation.

        Returns
        -------
        KRRObjective
            The configured objective.
        """
        return cls(X_train, y_train, X_val, y_val,
                   cache_kernels=True,
                   cache_size=config.tuning.cache_size,
                   solver=config.tuning.backend,
                   leaf_size=config.clustering.leaf_size,
                   seed=config.clustering.seed,
                   hss_options=config.hss_options(),
                   hmatrix_options=config.hmatrix_options(),
                   use_hmatrix_sampling=config.solver.use_hmatrix_sampling,
                   cv=getattr(config.tuning, "cv", 1))

    # ------------------------------------------------------------------ call
    def __call__(self, config: Dict[str, float]) -> float:
        """Evaluate the validation accuracy of one (h, lambda) configuration.

        Parameters
        ----------
        config:
            Dictionary with ``"h"`` and ``"lam"`` entries.

        Returns
        -------
        float
            Validation accuracy in ``[0, 1]``.
        """
        h = float(config["h"])
        lam = float(config["lam"])
        if h <= 0 or lam < 0:
            raise ValueError(f"invalid configuration h={h}, lam={lam}")
        if self.solver == "hss":
            acc, reused, refit, move = self._evaluate_hss(h, lam)
        else:
            acc, reused, refit, move = self._evaluate_dense(h, lam)
        self.records.append(EvaluationRecord(h=h, lam=lam, accuracy=acc,
                                             reused_kernel=reused,
                                             refit=refit, move=move))
        from ..obs import global_registry
        registry = global_registry()
        registry.counter(
            "repro_tuning_evaluations_total",
            "Hyper-parameter configurations evaluated",
            labelnames=("mode",)).labels(
                mode="refit" if refit else "fit").inc()
        registry.counter(
            "repro_tune_moves_total",
            "Tuning evaluations by move cost class",
            labelnames=("move",)).labels(move=move).inc()
        if reused:
            registry.counter(
                "repro_tune_cache_hits_total",
                "Tuning evaluations served from the per-h state cache").inc()
        else:
            registry.counter(
                "repro_tune_cache_misses_total",
                "Tuning evaluations that missed the per-h state cache").inc()
        return acc

    # ------------------------------------------------------------- scheduling
    def prepare_lam_schedule(self, lams) -> None:
        """Announce the λ values about to be evaluated for one ``h`` group.

        Cost-aware searchers call this right before a run of evaluations
        that share everything but ``lam``.  The ``"hss"`` backend then
        batch-factors the whole schedule on the group's first evaluation
        (:meth:`repro.krr.solvers.HSSSolver.prefactor`, which shares the
        λ-independent per-node orthogonalization sweep across shifts via
        :meth:`repro.hss.ULVFactorization.factor_many`), so each later
        λ-move inside the group is a cache lookup + solve.  The dense
        backend ignores the announcement (its per-λ refactor is already a
        single Cholesky).  Each schedule is consumed by exactly one
        evaluation; announcing an empty schedule clears a pending one.

        Parameters
        ----------
        lams:
            The λ values of the upcoming group, in evaluation order.
        """
        lams = [float(l) for l in lams]
        self._lam_schedule = lams if (lams and self.solver == "hss") else None

    def _consume_schedule(self, solver, lam: float, exclude_current: bool) -> None:
        """Batch-prefactor the pending λ schedule on ``solver`` (hss only)."""
        schedule, self._lam_schedule = self._lam_schedule, None
        if not schedule:
            return
        prefactor = getattr(solver, "prefactor", None)
        if prefactor is None:
            return
        seen = set()
        pending = []
        for l in schedule:
            if l in seen or (exclude_current and l == lam):
                continue
            seen.add(l)
            pending.append(l)
        if pending:
            prefactor(pending)

    def _cache_get(self, h: float):
        """Fetch (and LRU-refresh) the λ-independent state cached for ``h``."""
        if not self.cache_kernels or h not in self._cache:
            return None
        state = self._cache.pop(h)
        self._cache[h] = state  # re-insert: most recently used
        return state

    def _cache_put(self, h: float, state: tuple) -> None:
        """Insert per-h state, evicting the least recently used beyond size."""
        if not self.cache_kernels:
            return
        self._cache[h] = state
        while len(self._cache) > self.cache_size:
            oldest = next(iter(self._cache))
            evicted = self._cache.pop(oldest)
            close = getattr(evicted[0], "close", None)
            if close is not None:
                close()

    def _pop_for_reuse(self):
        """Pop the LRU-oldest per-h state when the cache is at capacity.

        Returns the resident state to be *re-targeted* (an ``h``-move)
        instead of discarded: the hss backend hands the popped solver to
        :meth:`~repro.krr.solvers.KernelSystemSolver.refit_kernel`, which
        recompresses on the retained clustering / admissibility structure.
        Returns ``None`` while the cache still has room (the new ``h``
        then gets a cold build without sacrificing a resident one).
        """
        if not self.cache_kernels or len(self._cache) < self.cache_size:
            return None
        oldest = next(iter(self._cache))
        state = self._cache.pop(oldest)
        return state[0]

    def _evaluate_dense(self, h: float, lam: float) -> Tuple[float, bool, bool, str]:
        """Exact dense evaluation; λ-only moves reuse the cached kernels."""
        cached = self._cache_get(h)
        reused = cached is not None
        if cached is not None:
            K, K_val = cached
        else:
            kernel = GaussianKernel(h=h)
            K = kernel.matrix(self.X_train)
            K_val = (None if self.cv > 1
                     else kernel.matrix(self.X_val, self.X_train))
            self._cache_put(h, (K, K_val))
        # A dense h-miss rebuilds the kernel matrix outright — there is no
        # reusable structure, so the move is cold, never "h_move".
        move = "lam_move" if reused else "cold"

        if self.cv > 1:
            return self._cv_score_dense(K, lam), reused, reused, move
        A = K + lam * np.eye(K.shape[0])
        weights = scipy.linalg.solve(A, self.y_train, assume_a="pos")
        scores = K_val @ weights
        pred = np.where(scores >= 0.0, 1.0, -1.0)
        return accuracy(self.y_val, pred), reused, reused, move

    def _evaluate_hss(self, h: float, lam: float) -> Tuple[float, bool, bool, str]:
        """HSS evaluation: compress once per h, ULV-refit per λ.

        ``h``-misses with a full cache ride the recompression path: the
        LRU-oldest resident solver keeps its clustering, permutation and
        admissibility partition and redoes only the kernel numerics
        (bitwise identical to a cold build on the same tree), which is
        the ``h_move ≪ cold`` cost asymmetry the searchers exploit.
        """
        from ..clustering.api import cluster
        from ..krr.solvers import HSSSolver

        if self._clustering is None:
            self._clustering = cluster(self.X_train, method="two_means",
                                       leaf_size=self.leaf_size,
                                       seed=self.seed)
        clustering = self._clustering
        y_perm = clustering.permute_labels(self.y_train)

        kernel = GaussianKernel(h=h)
        cached = self._cache_get(h)
        refit = cached is not None
        if cached is not None:
            solver, K_val = cached
            move = "lam_move"
            # Prefactor before the refit so the refit adopts the batched
            # factorization (bitwise identical to a sequential one).
            self._consume_schedule(solver, lam, exclude_current=False)
            solver.refit(lam)
        else:
            resident = self._pop_for_reuse()
            if resident is not None:
                move = "h_move"
                solver = resident
                solver.refit_kernel(kernel, lam)
            else:
                move = "cold"
                solver = HSSSolver(hss_options=self.hss_options,
                                   hmatrix_options=self.hmatrix_options,
                                   use_hmatrix_sampling=self.use_hmatrix_sampling,
                                   seed=self.seed)
                solver.fit(clustering.X, clustering.tree, kernel, lam)
            # fit/refit_kernel already factored `lam`; prefactor the rest.
            self._consume_schedule(solver, lam, exclude_current=True)
            K_val = (None if self.cv > 1
                     else kernel.matrix(self.X_val, clustering.X))
            self._cache_put(h, (solver, K_val))

        if self.cv > 1:
            acc = self._cv_score_hss(solver, kernel, clustering, y_perm)
        else:
            weights = solver.solve(y_perm)
            scores = K_val @ weights
            pred = np.where(scores >= 0.0, 1.0, -1.0)
            acc = accuracy(self.y_val, pred)
        if not self.cache_kernels:
            solver.close()
        return acc, refit, refit, move

    # ----------------------------------------------------------------- k-fold
    def _cv_score_dense(self, K: np.ndarray, lam: float) -> float:
        """Exact K-fold CV: solve each fold-complement submatrix system."""
        n = K.shape[0]
        idx = np.arange(n)
        preds = np.empty(n)
        for fold in range(self.cv):
            mask = (idx % self.cv) == fold
            F, C = idx[mask], idx[~mask]
            A = K[np.ix_(C, C)].copy()
            A[np.diag_indices_from(A)] += lam
            w = scipy.linalg.solve(A, self.y_train[C], assume_a="pos")
            preds[F] = np.where(K[np.ix_(F, C)] @ w >= 0.0, 1.0, -1.0)
        return accuracy(self.y_train, preds)

    def _cv_score_hss(self, solver, kernel, clustering, y_perm) -> float:
        """K-fold CV against the shared full-data factorization.

        Training on a fold's complement solves the principal submatrix
        system ``A[C, C] w = y[C]`` of the already-factored full matrix
        ``A = K + λI``.  With ``B = A^{-1}`` the block-inverse identity
        gives ``w = (B y~)[C] - (B[:, F] t)[C]`` where ``y~`` is the
        fold-masked label vector and ``t = B[F, F]^{-1} (B y~)[F]`` — so
        each fold costs ONE multi-RHS solve on the shared factorization
        (the ``|F|`` fold-indicator columns and ``y~`` together) plus a
        dense ``|F| x |F|`` correction solve, never a recompression or
        refactorization.
        """
        n = y_perm.shape[0]
        orig = clustering.tree.perm  # original index at each permuted slot
        pos = np.arange(n)
        preds = np.empty(n)
        for fold in range(self.cv):
            mask = (orig % self.cv) == fold
            F, C = pos[mask], pos[~mask]
            m = F.shape[0]
            rhs = np.zeros((n, m + 1))
            rhs[F, np.arange(m)] = 1.0
            rhs[C, m] = y_perm[C]
            G = solver.solve(rhs)
            z = G[:, m]                       # B @ y~
            t = scipy.linalg.solve(G[F, :m], z[F])
            w_C = (z - G[:, :m] @ t)[C]
            K_FC = kernel.matrix(clustering.X[F], clustering.X[C])
            preds[F] = np.where(K_FC @ w_C >= 0.0, 1.0, -1.0)
        return accuracy(y_perm, preds)

    # ------------------------------------------------------------- reporting
    @property
    def evaluations(self) -> int:
        """Number of (h, lambda) evaluations performed so far."""
        return len(self.records)

    @property
    def kernel_constructions(self) -> int:
        """Number of kernel matrix (re)constructions / compressions (h changes)."""
        return sum(1 for r in self.records if not r.reused_kernel)

    @property
    def refits(self) -> int:
        """Evaluations that rode the refit path (no rebuild; see record docs)."""
        return sum(1 for r in self.records if r.refit)

    @property
    def last_was_refit(self) -> bool:
        """Whether the most recent evaluation rode the refit path."""
        return bool(self.records) and self.records[-1].refit

    @property
    def last_move(self) -> Optional[str]:
        """Cost class of the most recent evaluation (``None`` before any)."""
        return self.records[-1].move if self.records else None

    @property
    def move_counts(self) -> Dict[str, int]:
        """Evaluation counts per move cost class (``cold``/``h_move``/``lam_move``)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.move] = counts.get(record.move, 0) + 1
        return counts

    def close(self) -> None:
        """Release the cached per-h state (worker threads included).

        The hss backend's cached solvers each hold a
        :class:`repro.parallel.BlockExecutor`; only LRU evictions release
        them during a run, so call this (or use the objective as a
        context manager) when the tuning run is done.  The objective
        remains usable afterwards — later evaluations simply rebuild.
        """
        cache, self._cache = self._cache, {}
        for state in cache.values():
            closer = getattr(state[0], "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "KRRObjective":
        """Context-manager entry (returns ``self``)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the cached state."""
        self.close()

    def best(self) -> Tuple[Dict[str, float], float]:
        """Best configuration seen so far and its accuracy.

        Returns
        -------
        tuple
            ``(config, accuracy)`` of the incumbent.
        """
        if not self.records:
            raise RuntimeError("no evaluations performed yet")
        best = max(self.records, key=lambda r: r.accuracy)
        return {"h": best.h, "lam": best.lam}, best.accuracy
