"""Parameter spaces for the hyper-parameter search.

The paper tunes two continuous parameters: the Gaussian width ``h`` and the
ridge parameter ``lambda``; both live naturally on a logarithmic scale
(Figure 5 sweeps h over decades), so a log-uniform parameter type is
provided alongside the plain uniform one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..utils.random import as_generator


class Parameter(abc.ABC):
    """A named, bounded scalar parameter."""

    name: str
    low: float
    high: float

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw a uniform random value (in the parameter's natural scale)."""

    @abc.abstractmethod
    def grid(self, num: int) -> np.ndarray:
        """Return ``num`` evenly spaced values (in the natural scale)."""

    def clip(self, value: float) -> float:
        """Project a value back into the feasible interval."""
        return float(min(max(value, self.low), self.high))


@dataclass
class ContinuousParameter(Parameter):
    """Uniformly distributed parameter on ``[low, high]``."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def grid(self, num: int) -> np.ndarray:
        return np.linspace(self.low, self.high, num)


@dataclass
class LogUniformParameter(Parameter):
    """Log-uniformly distributed parameter on ``[low, high]`` (both positive)."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0:
            raise ValueError(f"{self.name}: log-uniform bounds must be positive")
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))

    def grid(self, num: int) -> np.ndarray:
        return np.exp(np.linspace(np.log(self.low), np.log(self.high), num))


class ParameterSpace:
    """An ordered collection of named parameters.

    Examples
    --------
    >>> space = ParameterSpace([
    ...     LogUniformParameter("h", 0.1, 10.0),
    ...     LogUniformParameter("lam", 0.1, 10.0),
    ... ])
    >>> sorted(space.names)
    ['h', 'lam']
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("the parameter space must not be empty")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.parameters: List[Parameter] = list(parameters)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.parameters]

    @property
    def dim(self) -> int:
        return len(self.parameters)

    def sample(self, rng=None) -> Dict[str, float]:
        """Draw one random configuration."""
        rng = as_generator(rng)
        return {p.name: p.sample(rng) for p in self.parameters}

    def clip(self, config: Dict[str, float]) -> Dict[str, float]:
        """Project a configuration onto the feasible box."""
        return {p.name: p.clip(config[p.name]) for p in self.parameters}

    def to_array(self, config: Dict[str, float]) -> np.ndarray:
        """Configuration dictionary -> ordered vector."""
        return np.array([config[p.name] for p in self.parameters], dtype=np.float64)

    def from_array(self, values: np.ndarray) -> Dict[str, float]:
        """Ordered vector -> configuration dictionary (clipped to bounds)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape[0] != self.dim:
            raise ValueError(f"expected {self.dim} values, got {values.shape[0]}")
        return {p.name: p.clip(v) for p, v in zip(self.parameters, values)}

    def grid(self, num: int) -> List[Dict[str, float]]:
        """Full Cartesian grid with ``num`` points per parameter."""
        if num < 1:
            raise ValueError("num must be >= 1")
        axes = [p.grid(num) for p in self.parameters]
        mesh = np.meshgrid(*axes, indexing="ij")
        flat = [m.ravel() for m in mesh]
        return [
            {p.name: float(flat[j][i]) for j, p in enumerate(self.parameters)}
            for i in range(flat[0].size)
        ]

    @classmethod
    def krr_default(cls, h_bounds=(0.05, 10.0), lam_bounds=(0.05, 10.0)) -> "ParameterSpace":
        """The (h, lambda) space used by the paper's tuning experiments."""
        return cls([LogUniformParameter("h", *h_bounds),
                    LogUniformParameter("lam", *lam_bounds)])
