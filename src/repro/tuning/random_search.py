"""Uniform random search over the parameter space."""

from __future__ import annotations

from typing import Callable, Dict

from ..utils.random import as_generator
from .result import TuningResult, observed_move, observed_refit
from .search_space import ParameterSpace


class RandomSearch:
    """Sample configurations uniformly (log-uniformly for log parameters).

    Random search is a surprisingly strong baseline for low-dimensional
    hyper-parameter spaces and is also one of the techniques inside the
    bandit tuner; having it standalone lets the benchmarks quantify how
    much the bandit's adaptive techniques add.

    Parameters
    ----------
    space:
        The parameter space.
    budget:
        Total number of objective evaluations.
    seed:
        Random seed.
    lam_sweep:
        λ values evaluated per sampled configuration.  With the default 1
        every evaluation draws a fresh configuration (pure random search,
        where — for a continuous space — no two draws ever share ``h``).
        With ``lam_sweep > 1`` the non-``lam`` parameters are sampled once
        per group and ``lam`` is resampled ``lam_sweep`` times inside it:
        the group's later evaluations are λ-only moves, so a refit-aware
        objective pays one compression per group instead of one per
        evaluation.  The marginal distribution of every parameter is
        unchanged.
    """

    def __init__(self, space: ParameterSpace, budget: int = 100, seed=None,
                 lam_sweep: int = 1):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if lam_sweep < 1:
            raise ValueError("lam_sweep must be >= 1")
        self.space = space
        self.budget = int(budget)
        self.seed = seed
        self.lam_sweep = int(lam_sweep)

    def optimize(self, objective: Callable[[Dict[str, float]], float]) -> TuningResult:
        """Run the search and return the :class:`TuningResult`.

        Parameters
        ----------
        objective:
            Callable mapping a configuration dictionary to a score.

        Returns
        -------
        TuningResult
            Full evaluation history and the incumbent.
        """
        rng = as_generator(self.seed)
        result = TuningResult()
        has_lam = "lam" in self.space.names
        prepare = getattr(objective, "prepare_lam_schedule", None)
        lam_param = (next(p for p in self.space.parameters
                          if p.name == "lam") if has_lam else None)
        evaluated = 0
        while evaluated < self.budget:
            config = self.space.sample(rng)
            # Pre-draw the whole group's λ values (the draws consume the
            # rng in the same order as interleaved drawing would, since
            # evaluations never touch it) so a schedule-aware objective
            # can batch-factor the group on its first evaluation.
            group = [config]
            if has_lam:
                for _ in range(min(self.lam_sweep - 1,
                                   self.budget - evaluated - 1)):
                    sweep = dict(config)
                    sweep["lam"] = lam_param.sample(rng)
                    group.append(sweep)
            if prepare is not None and len(group) > 1:
                prepare([c["lam"] for c in group])
            for member in group:
                result.record(member, objective(member),
                              refit=observed_refit(objective),
                              move=observed_move(objective))
                evaluated += 1
        return result
