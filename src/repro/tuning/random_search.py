"""Uniform random search over the parameter space."""

from __future__ import annotations

from typing import Callable, Dict

from ..utils.random import as_generator
from .result import TuningResult
from .search_space import ParameterSpace


class RandomSearch:
    """Sample configurations uniformly (log-uniformly for log parameters).

    Random search is a surprisingly strong baseline for low-dimensional
    hyper-parameter spaces and is also one of the techniques inside the
    bandit tuner; having it standalone lets the benchmarks quantify how
    much the bandit's adaptive techniques add.
    """

    def __init__(self, space: ParameterSpace, budget: int = 100, seed=None):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.space = space
        self.budget = int(budget)
        self.seed = seed

    def optimize(self, objective: Callable[[Dict[str, float]], float]) -> TuningResult:
        """Run the search and return the :class:`TuningResult`."""
        rng = as_generator(self.seed)
        result = TuningResult()
        for _ in range(self.budget):
            config = self.space.sample(rng)
            result.record(config, objective(config))
        return result
