"""Containers for tuning outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TuningResult:
    """Outcome of a hyper-parameter search.

    Parameters
    ----------
    best_config:
        The configuration with the highest objective value.
    best_value:
        The corresponding objective value (validation accuracy for the KRR
        objective).
    history:
        One ``(config, value)`` record per evaluation, in evaluation order;
        used to plot the accuracy-vs-evaluations curves of Figure 6.
    evaluations:
        Number of objective evaluations performed.
    """

    best_config: Dict[str, float] = field(default_factory=dict)
    best_value: float = float("-inf")
    history: List[Dict[str, float]] = field(default_factory=list)
    #: evaluations that rode the objective's refit path (populated
    #: by the searchers when the objective reports it)
    refits: int = 0
    #: evaluation counts per move cost class (``cold``/``h_move``/
    #: ``lam_move``), populated when the objective reports moves
    moves: Dict[str, int] = field(default_factory=dict)

    @property
    def evaluations(self) -> int:
        """Number of objective evaluations recorded."""
        return len(self.history)

    def record(self, config: Dict[str, float], value: float,
               refit: Optional[bool] = None,
               move: Optional[str] = None) -> None:
        """Add one evaluation and update the incumbent if it improved."""
        entry = dict(config)
        entry["objective"] = float(value)
        if refit is not None:
            entry["refit"] = bool(refit)
            self.refits += int(bool(refit))
        if move is not None:
            entry["move"] = str(move)
            self.moves[str(move)] = self.moves.get(str(move), 0) + 1
        self.history.append(entry)
        if value > self.best_value:
            self.best_value = float(value)
            self.best_config = dict(config)

    @property
    def refit_fraction(self) -> float:
        """Fraction of evaluations that rode the refit path."""
        return self.refits / len(self.history) if self.history else 0.0

    def best_so_far(self) -> List[float]:
        """Running maximum of the objective, per evaluation (Figure 6 curves)."""
        best = float("-inf")
        out = []
        for entry in self.history:
            best = max(best, entry["objective"])
            out.append(best)
        return out


def observed_refit(objective) -> Optional[bool]:
    """Whether the objective's last evaluation rode the refit path.

    Parameters
    ----------
    objective:
        The objective callable just evaluated.  Objectives that track the
        refit path (e.g. :class:`repro.tuning.KRRObjective`) expose a
        ``last_was_refit`` attribute; plain callables do not.

    Returns
    -------
    bool or None
        The flag, or ``None`` when the objective does not report one.
    """
    flag = getattr(objective, "last_was_refit", None)
    return None if flag is None else bool(flag)


def observed_move(objective) -> Optional[str]:
    """Cost class of the objective's last evaluation, when reported.

    Parameters
    ----------
    objective:
        The objective callable just evaluated.  Move-aware objectives
        (e.g. :class:`repro.tuning.KRRObjective`) expose a ``last_move``
        attribute with values ``"cold"``, ``"h_move"`` or ``"lam_move"``;
        plain callables do not.

    Returns
    -------
    str or None
        The move class, or ``None`` when the objective does not report one.
    """
    move = getattr(objective, "last_move", None)
    return None if move is None else str(move)
