"""Containers for tuning outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TuningResult:
    """Outcome of a hyper-parameter search.

    Attributes
    ----------
    best_config:
        The configuration with the highest objective value.
    best_value:
        The corresponding objective value (validation accuracy for the KRR
        objective).
    history:
        One ``(config, value)`` record per evaluation, in evaluation order;
        used to plot the accuracy-vs-evaluations curves of Figure 6.
    evaluations:
        Number of objective evaluations performed.
    """

    best_config: Dict[str, float] = field(default_factory=dict)
    best_value: float = float("-inf")
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        return len(self.history)

    def record(self, config: Dict[str, float], value: float) -> None:
        """Add one evaluation and update the incumbent if it improved."""
        entry = dict(config)
        entry["objective"] = float(value)
        self.history.append(entry)
        if value > self.best_value:
            self.best_value = float(value)
            self.best_config = dict(config)

    def best_so_far(self) -> List[float]:
        """Running maximum of the objective, per evaluation (Figure 6 curves)."""
        best = float("-inf")
        out = []
        for entry in self.history:
            best = max(best, entry["objective"])
            out.append(best)
        return out
