"""Exhaustive grid search (the baseline of Figure 6a).

"A fine grid search is too costly, see Figure 6a" — the paper's grid uses
128 x 128 = 16,384 runs.  The grid resolution here is a parameter so the
benchmark can run a coarser grid while reporting the full-grid cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .result import TuningResult
from .search_space import ParameterSpace


class GridSearch:
    """Evaluate the objective on a full Cartesian grid.

    Parameters
    ----------
    space:
        The parameter space.
    points_per_dim:
        Number of grid points per parameter (the paper uses 128).
    max_evaluations:
        Optional cap on the number of evaluations (the grid is truncated in
        row-major order); useful to bound benchmark time.
    """

    def __init__(self, space: ParameterSpace, points_per_dim: int = 16,
                 max_evaluations: Optional[int] = None):
        if points_per_dim < 1:
            raise ValueError("points_per_dim must be >= 1")
        self.space = space
        self.points_per_dim = int(points_per_dim)
        self.max_evaluations = max_evaluations

    @property
    def total_grid_size(self) -> int:
        """Number of configurations in the full grid."""
        return self.points_per_dim ** self.space.dim

    def optimize(self, objective: Callable[[Dict[str, float]], float]) -> TuningResult:
        """Run the search and return the :class:`TuningResult`."""
        result = TuningResult()
        configs = self.space.grid(self.points_per_dim)
        if self.max_evaluations is not None:
            configs = configs[: int(self.max_evaluations)]
        for config in configs:
            value = objective(config)
            result.record(config, value)
        return result
