"""Exhaustive grid search (the baseline of Figure 6a).

"A fine grid search is too costly, see Figure 6a" — the paper's grid uses
128 x 128 = 16,384 runs.  The grid resolution here is a parameter so the
benchmark can run a coarser grid while reporting the full-grid cost.

The evaluation order is chosen for the compress-once/refit-many split: all
configurations sharing the non-``lam`` parameters are visited
consecutively (``lam`` varies fastest), so within each group every move is
a λ-only move and a refit-aware objective (see
:class:`repro.tuning.KRRObjective`) pays one kernel build / compression
per group plus a cheap refit per λ.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .result import TuningResult, observed_move, observed_refit
from .search_space import ParameterSpace


def order_lam_fastest(configs: List[Dict[str, float]]) -> List[Dict[str, float]]:
    """Stable-reorder configurations so ``lam`` varies fastest.

    Configurations are grouped by their non-``lam`` parameters in first-
    appearance order (a stable bucketing, so inputs already grouped — like
    a row-major Cartesian grid with ``lam`` as the last axis — come back
    unchanged).  Consecutive evaluations within a group then differ only
    in ``lam``, which is what lets a refit-aware objective reuse its
    kernel compression.

    Parameters
    ----------
    configs:
        Configuration dictionaries; entries without a ``"lam"`` key are
        left in place relative to their group.

    Returns
    -------
    list of dict
        The same configurations, grouped for λ-only moves.
    """
    groups: Dict[tuple, List[Dict[str, float]]] = {}
    order: List[tuple] = []
    for config in configs:
        key = tuple(sorted((k, v) for k, v in config.items() if k != "lam"))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(config)
    return [config for key in order for config in groups[key]]


class GridSearch:
    """Evaluate the objective on a full Cartesian grid.

    Parameters
    ----------
    space:
        The parameter space.
    points_per_dim:
        Number of grid points per parameter (the paper uses 128).
    max_evaluations:
        Optional cap on the number of evaluations (the grid is truncated
        after ordering); useful to bound benchmark time.
    lam_fastest:
        If ``True`` (default) the grid is visited with ``lam`` varying
        fastest (see :func:`order_lam_fastest`), so consecutive
        evaluations within a group are λ-only moves and ride the refit
        path of a refit-aware objective.
    """

    def __init__(self, space: ParameterSpace, points_per_dim: int = 16,
                 max_evaluations: Optional[int] = None,
                 lam_fastest: bool = True):
        if points_per_dim < 1:
            raise ValueError("points_per_dim must be >= 1")
        self.space = space
        self.points_per_dim = int(points_per_dim)
        self.max_evaluations = max_evaluations
        self.lam_fastest = bool(lam_fastest)

    @property
    def total_grid_size(self) -> int:
        """Number of configurations in the full grid."""
        return self.points_per_dim ** self.space.dim

    def optimize(self, objective: Callable[[Dict[str, float]], float]) -> TuningResult:
        """Run the search and return the :class:`TuningResult`.

        Parameters
        ----------
        objective:
            Callable mapping a configuration dictionary to a score.

        Returns
        -------
        TuningResult
            Full evaluation history (with per-evaluation refit flags when
            the objective reports them) and the incumbent.
        """
        result = TuningResult()
        configs = self.space.grid(self.points_per_dim)
        if self.lam_fastest:
            configs = order_lam_fastest(configs)
        if self.max_evaluations is not None:
            configs = configs[: int(self.max_evaluations)]
        # Announce each contiguous λ-group to schedule-aware objectives
        # (KRRObjective.prepare_lam_schedule) so the group's first
        # evaluation batch-factors the whole λ column in one shared sweep.
        prepare = getattr(objective, "prepare_lam_schedule", None)
        for start, stop in _contiguous_groups(configs):
            if prepare is not None and stop - start > 1:
                prepare([c["lam"] for c in configs[start:stop] if "lam" in c])
            for config in configs[start:stop]:
                value = objective(config)
                result.record(config, value, refit=observed_refit(objective),
                              move=observed_move(objective))
        return result


def _contiguous_groups(configs: List[Dict[str, float]]):
    """Yield ``(start, stop)`` runs of configs sharing all non-``lam`` keys.

    Only *contiguous* runs are grouped, so the evaluation order is always
    exactly the input order regardless of how the configs were arranged.
    """
    start = 0
    for i in range(1, len(configs) + 1):
        if i == len(configs) or _group_key(configs[i]) != _group_key(configs[start]):
            yield start, i
            start = i


def _group_key(config: Dict[str, float]) -> tuple:
    return tuple(sorted((k, v) for k, v in config.items() if k != "lam"))
