"""Hyper-parameter tuning for kernel ridge regression (Section 5.3).

The paper compares a fine grid search over ``(h, lambda)`` (128^2 runs,
Figure 6a) with black-box optimization using OpenTuner (100 runs,
Figure 6b) and finds that the black-box search reaches better accuracy at a
fraction of the cost.  This package provides both:

* :class:`GridSearch` — exhaustive search over a Cartesian grid,
* :class:`RandomSearch` — uniform random sampling of the space,
* :class:`BanditTuner` — an OpenTuner-style meta-optimizer: a multi-armed
  bandit (UCB-style credit assignment) over several search techniques
  (random sampling, Gaussian perturbation of the incumbent, differential
  evolution, Nelder–Mead simplex steps),
* :class:`KRRObjective` — the objective the paper optimizes: validation
  accuracy of the KRR classifier for a given ``(h, lambda)``, with the
  cheap-lambda-update optimization (changing ``lambda`` only updates the
  diagonal, no recompression — Section 5.3).

All three searchers are λ-move aware: the grid is walked with ``lam``
varying fastest, random search can sweep several λ values per sampled
configuration, and the bandit carries a λ-only perturbation technique —
so a refit-capable objective (``KRRObjective``, either backend) pays one
kernel build / compression per distinct ``h`` and a cheap refit per λ.

The cost model is three-tiered (``lam_move`` ≪ ``h_move`` ≪ ``cold``;
see :data:`MOVE_COSTS` and ``docs/tuning.md``): an ``h``-move
recompresses on the retained clustering / admissibility structure
(:meth:`repro.krr.solvers.KernelSystemSolver.refit_kernel`) instead of
rebuilding from scratch, searchers announce λ groups up front so the
objective can batch-factor every shift in one shared sweep
(:meth:`KRRObjective.prepare_lam_schedule`), and ``KRRObjective(cv=K)``
swaps the held-out score for K-fold cross-validation computed as
fold-removal multi-RHS solves on the shared factorization.  Every
evaluation's move class is recorded (``EvaluationRecord.move``,
``TuningResult.moves``).
"""

from .search_space import ParameterSpace, ContinuousParameter, LogUniformParameter
from .grid_search import GridSearch, order_lam_fastest
from .random_search import RandomSearch
from .bandit import BanditTuner, MOVE_COSTS
from .objective import KRRObjective, EvaluationRecord
from .result import TuningResult, observed_move, observed_refit

__all__ = [
    "ParameterSpace",
    "ContinuousParameter",
    "LogUniformParameter",
    "GridSearch",
    "order_lam_fastest",
    "RandomSearch",
    "BanditTuner",
    "MOVE_COSTS",
    "KRRObjective",
    "EvaluationRecord",
    "TuningResult",
    "observed_move",
    "observed_refit",
]
