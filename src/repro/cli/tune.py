"""``repro tune`` — hyper-parameter search over ``(h, lambda)``."""

from __future__ import annotations

import argparse

from ._common import (CLIError, add_config_arguments, emit, load_bundle,
                      maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``tune`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "tune",
        help="search (h, lambda) with the configured strategy",
        description="Split the training set into train/validation by "
                    "[tuning].val_fraction, then run the configured search "
                    "strategy (grid / random / bandit) over the (h, lambda) "
                    "box. λ-only moves reuse the kernel compression "
                    "(compress once, refit many).")
    add_config_arguments(parser)
    parser.add_argument(
        "--strategy", default=argparse.SUPPRESS,
        choices=("grid", "random", "bandit"),
        help="sets tuning.strategy")
    parser.add_argument(
        "--budget", type=int, default=argparse.SUPPRESS,
        help="sets tuning.budget (random / bandit evaluation count)")
    parser.add_argument(
        "--cv", type=int, default=argparse.SUPPRESS,
        help="sets tuning.cv: K>1 scores configurations by K-fold "
             "cross-validation on the training set (fold-removal "
             "multi-RHS solves on the shared factorization) instead of "
             "the held-out validation split")
    parser.add_argument(
        "--lam-sweep", type=int, default=argparse.SUPPRESS,
        help="sets tuning.lam_sweep (λ values batched per sampled h in "
             "random search)")
    parser.add_argument(
        "--cost-aware", choices=("true", "false"), default=argparse.SUPPRESS,
        help="sets tuning.cost_aware (bandit divides success rate by "
             "observed move cost: λ-refit < recompression < cold build)")
    parser.set_defaults(func=run,
                        extra_flag_keys={"strategy": "tuning.strategy",
                                         "budget": "tuning.budget",
                                         "cv": "tuning.cv",
                                         "lam_sweep": "tuning.lam_sweep",
                                         "cost_aware": "tuning.cost_aware"})
    return parser


def _make_searcher(config):
    from ..tuning import BanditTuner, GridSearch, ParameterSpace, RandomSearch

    t = config.tuning
    space = ParameterSpace.krr_default(h_bounds=(t.h_min, t.h_max),
                                       lam_bounds=(t.lam_min, t.lam_max))
    if t.strategy == "grid":
        return GridSearch(space, points_per_dim=t.points_per_dim,
                          max_evaluations=t.budget)
    if t.strategy == "random":
        return RandomSearch(space, budget=t.budget, seed=t.seed,
                            lam_sweep=t.lam_sweep)
    if t.strategy == "bandit":
        return BanditTuner(space, budget=t.budget, seed=t.seed,
                           cost_aware=t.cost_aware)
    raise CLIError(f"unknown tuning strategy {t.strategy!r}")


def run(args: argparse.Namespace) -> int:
    """Execute ``repro tune``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    from ..datasets import train_test_split
    from ..tuning import KRRObjective

    config = resolve_config(args)
    data = load_bundle(config)
    t = config.tuning
    X_tr, y_tr, X_val, y_val = train_test_split(
        data.X_train, data.y_train, test_fraction=t.val_fraction,
        seed=config.dataset.seed)

    objective = KRRObjective.from_config(config, X_tr, y_tr, X_val, y_val)
    searcher = _make_searcher(config)
    result = searcher.optimize(objective)

    best = result.best_config
    moves = objective.move_counts
    payload = {
        "strategy": t.strategy,
        "evaluations": result.evaluations,
        "kernel_constructions": objective.kernel_constructions,
        "refits": result.refits,
        "cv": int(t.cv),
        "moves": {"cold": moves.get("cold", 0),
                  "h_move": moves.get("h_move", 0),
                  "lam_move": moves.get("lam_move", 0)},
        "cache_hits": sum(1 for r in objective.records if r.reused_kernel),
        "best": {"h": float(best["h"]), "lam": float(best["lam"]),
                 "validation_accuracy": float(result.best_value)},
        "n_train": int(X_tr.shape[0]),
        "n_val": int(X_val.shape[0]),
    }
    score_name = (f"{t.cv}-fold CV accuracy" if t.cv > 1
                  else "validation accuracy")
    human = [
        f"tune[{t.strategy}] on {config.dataset.name}: "
        f"{result.evaluations} evaluations, "
        f"{objective.kernel_constructions} kernel builds, "
        f"{result.refits} λ-only refits",
        f"moves: {moves.get('cold', 0)} cold / {moves.get('h_move', 0)} "
        f"h-moves (recompression) / {moves.get('lam_move', 0)} λ-moves",
        f"best h={best['h']:.4g} lam={best['lam']:.4g} "
        f"{score_name}={100 * result.best_value:.2f}%",
        "apply with: repro refit --lam "
        f"{best['lam']:.6g}   (or retrain: repro train --h {best['h']:.6g} "
        f"--lam {best['lam']:.6g})",
    ]
    dumped = maybe_dump_metrics(config)
    if dumped:
        payload["metrics_dump"] = dumped
    return emit(args, "tune", config, payload, human)
