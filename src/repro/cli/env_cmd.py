"""``repro env`` — show the host context and the REPRO_* environment."""

from __future__ import annotations

import argparse

from ..runtime import SCHEMA, host_context, repro_env
from ._common import add_config_arguments, emit, resolve_config


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``env`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "env",
        help="show host context and which REPRO_* variables are set",
        description="Print the host context (python/numpy/platform/git "
                    "revision/visible cores) plus every REPRO_* variable "
                    "currently set and the config knob each one maps to.")
    add_config_arguments(parser)
    parser.set_defaults(func=run)
    return parser


def _env_mapping():
    """``{env_var: config_key}`` for every knob's recognized variables."""
    mapping = {}
    for knob in SCHEMA:
        for var, _inverted in knob.env_vars:
            mapping.setdefault(var, knob.key)
    return mapping


def run(args: argparse.Namespace) -> int:
    """Execute ``repro env``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    config = resolve_config(args)
    host = host_context()
    env = repro_env()
    mapping = _env_mapping()

    human = [
        f"python  {host['python']}",
        f"numpy   {host['numpy']}",
        f"platform {host['platform']} ({host['machine']})",
        f"cores   {host['visible_cores']} visible / "
        f"{host['cpu_count']} total",
        f"git     {host['git_rev'] or '(no revision)'}",
        f"config  {config.config_path or '(no repro.toml)'}",
    ]
    if env:
        human.append("REPRO_* environment:")
        for var in sorted(env):
            target = mapping.get(var)
            suffix = f"  -> {target}" if target else "  (unrecognized)"
            human.append(f"  {var}={env[var]}{suffix}")
    else:
        human.append("REPRO_* environment: (none set)")

    payload = {"host": host, "repro_env": env,
               "env_mapping": {var: mapping.get(var) for var in env}}
    return emit(args, "env", config, payload, human)
