"""``python -m repro.cli`` — same as the ``repro`` console script."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
