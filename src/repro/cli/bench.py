"""``repro bench`` — config-driven micro-benchmark of the lifecycle."""

from __future__ import annotations

import argparse
import time

import numpy as np

from ._common import (add_config_arguments, effective_h_lam, emit,
                      load_bundle, maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``bench`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "bench",
        help="time the train -> refit -> serve lifecycle on the config",
        description="A config-driven micro-benchmark: one cold train, a "
                    "sweep of λ-only refits (showing the compress-once/"
                    "refit-many saving) and a serving throughput probe, "
                    "all stamped with the host context.")
    add_config_arguments(parser)
    parser.add_argument(
        "--refits", type=int, default=3, metavar="K",
        help="number of λ-only refits to time (default 3)")
    parser.add_argument(
        "--serve-queries", type=int, default=128, metavar="N",
        help="queries pushed through the engine probe (default 128)")
    parser.set_defaults(func=run)
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute ``repro bench``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    from ..krr import KRRPipeline
    from ..serving import PredictionEngine

    config = resolve_config(args)
    data = load_bundle(config)
    h, lam = effective_h_lam(config, data)

    pipeline = KRRPipeline.from_config(config, h=h, lam=lam)
    t0 = time.perf_counter()
    report = pipeline.run(data.X_train, data.y_train,
                          data.X_test, data.y_test,
                          dataset_name=config.dataset.name)
    train_s = time.perf_counter() - t0

    refit_times = []
    lams = [lam * (2.0 ** (k + 1)) for k in range(max(0, int(args.refits)))]
    for new_lam in lams:
        t0 = time.perf_counter()
        pipeline.refit(new_lam)
        refit_times.append(time.perf_counter() - t0)

    n = max(1, min(int(args.serve_queries), data.X_test.shape[0]))
    queries = np.asarray(data.X_test[:n], dtype=np.float64)
    engine = PredictionEngine.from_config(config, pipeline.classifier_)
    t0 = time.perf_counter()
    engine.predict_many(queries)
    serve_s = time.perf_counter() - t0

    result = {
        "dataset": config.dataset.name,
        "n_train": report.n_train,
        "n_test": report.n_test,
        "accuracy": report.accuracy,
        "train_seconds": train_s,
        "refit_seconds": refit_times,
        "mean_refit_seconds": (float(np.mean(refit_times))
                               if refit_times else None),
        "refit_speedup": (train_s / float(np.mean(refit_times))
                          if refit_times else None),
        "serve_queries": int(n),
        "serve_seconds": serve_s,
        "serve_qps": n / serve_s if serve_s > 0 else None,
    }
    human = [
        f"bench on {config.dataset.name} (n_train={report.n_train}, "
        f"solver={report.solver}):",
        f"  cold train   {train_s:8.3f}s  "
        f"(accuracy {report.accuracy_percent:.2f}%)",
    ]
    if refit_times:
        human.append(
            f"  λ-only refit {float(np.mean(refit_times)):8.3f}s mean over "
            f"{len(refit_times)} refits "
            f"({train_s / float(np.mean(refit_times)):.1f}x vs cold train)")
    human.append(
        f"  serve probe  {serve_s:8.3f}s for {n} queries "
        f"({n / serve_s:.0f} qps)" if serve_s > 0
        else f"  serve probe  <0.001s for {n} queries")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
    return emit(args, "bench", config, result, human)
