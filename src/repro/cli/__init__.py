"""The ``repro`` umbrella CLI.

One entry point for the whole model lifecycle, driven by the layered
:mod:`repro.runtime` configuration (built-in defaults < ``repro.toml`` <
``REPRO_*`` environment variables < command-line flags)::

    repro train                      # train + persist the configured model
    repro tune --strategy bandit     # search (h, lambda)
    repro refit --new-lam 4.0        # cheap λ-only re-train of the model
    repro update --add new.npz       # stream rows in (Woodbury partial_fit)
    repro serve --check              # one-shot serving self-test
    repro bench                      # micro-benchmark of the lifecycle
    repro inspect config             # every knob + its provenance layer
    repro env                        # host context + REPRO_* mapping

Every subcommand is idempotent and writes a machine-readable JSON result
(``repro_<command>.json`` by default, ``--json PATH`` to move it) next to
its human-readable summary.  Errors print to stderr and exit with code 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ._common import CLIError
from . import bench, env_cmd, inspect_cmd, refit, serve, train, tune, update

__all__ = ["CLIError", "build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser of the ``repro`` command.

    Returns
    -------
    argparse.ArgumentParser
        Parser with all subcommands registered; each subcommand's
        ``func`` default is its ``run`` callable.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kernel ridge regression with hierarchical matrix "
                    "compression: train, tune, refit, serve, bench and "
                    "inspect — all from one layered config "
                    "(repro.toml < REPRO_* env < flags).")
    from .. import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", metavar="COMMAND")
    train.add_parser(subparsers)
    tune.add_parser(subparsers)
    refit.add_parser(subparsers)
    update.add_parser(subparsers)
    serve.add_parser(subparsers)
    bench.add_parser(subparsers)
    inspect_cmd.add_parser(subparsers)
    env_cmd.add_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point of the ``repro`` command.

    Parameters
    ----------
    argv:
        Argument list (``None`` → ``sys.argv[1:]``).

    Returns
    -------
    int
        Process exit code: 0 on success, 2 on an operator error
        (bad flag value, missing model, failed self-test, ...).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    try:
        return int(args.func(args))
    except CLIError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130
