"""Shared plumbing of the ``repro`` umbrella CLI.

Every subcommand resolves its :class:`repro.runtime.RuntimeConfig` through
the same layered chain (defaults < ``repro.toml`` < ``REPRO_*`` env < CLI
flags), prints a human summary to stdout and writes a machine-readable
JSON result next to it — idempotently (atomic replace), so re-running a
command is always safe.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..runtime import RuntimeConfig, resolve_runtime_config
from ..runtime.host import host_context


class CLIError(Exception):
    """An operator-facing error: printed to stderr, exit code 2."""


#: first-class flags and the config keys they set (the flag layer)
FLAG_KEYS = {
    "dataset": "dataset.name",
    "n_train": "dataset.n_train",
    "n_test": "dataset.n_test",
    "kernel": "kernel.name",
    "h": "kernel.h",
    "lam": "kernel.lam",
    "solver": "solver.name",
    "clustering": "clustering.method",
    "leaf_size": "clustering.leaf_size",
    "workers": "distributed.workers",
    "shards": "distributed.shards",
    "store": "serving.store",
    "model": "serving.model",
}


def add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared config/override/output flags to a subparser.

    Parameters
    ----------
    parser:
        The subcommand's parser.
    """
    group = parser.add_argument_group("configuration")
    group.add_argument(
        "-c", "--config", metavar="PATH", default=None,
        help="repro.toml path (default: ./repro.toml when present)")
    group.add_argument(
        "--set", metavar="KEY=VALUE", action="append", default=[],
        dest="overrides",
        help="override any config knob, e.g. --set hss.rel_tol=0.05 "
             "(repeatable; highest precedence)")
    group.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help="seed for dataset generation and clustering")
    for flag, key in FLAG_KEYS.items():
        group.add_argument(
            f"--{flag.replace('_', '-')}", dest=flag,
            default=argparse.SUPPRESS, metavar=key.split(".", 1)[1].upper(),
            help=f"sets {key}")
    out = parser.add_argument_group("output")
    out.add_argument(
        "--json", metavar="PATH", default=None,
        help="machine-readable result path "
             "(default: repro_<command>.json in the working directory)")
    out.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the human-readable summary")


def flag_layer(args: argparse.Namespace) -> Dict[str, Any]:
    """Collect the CLI-flag layer from parsed arguments.

    Parameters
    ----------
    args:
        The parsed namespace of a subcommand.

    Returns
    -------
    dict
        ``{"section.field": raw_value}`` for every flag the user passed.
    """
    flags: Dict[str, Any] = {}
    mapping = dict(FLAG_KEYS)
    mapping.update(getattr(args, "extra_flag_keys", None) or {})
    for flag, key in mapping.items():
        if hasattr(args, flag):
            flags[key] = getattr(args, flag)
    if hasattr(args, "seed"):
        flags["dataset.seed"] = args.seed
        flags["clustering.seed"] = args.seed
    for item in getattr(args, "overrides", []) or []:
        if "=" not in item:
            raise CLIError(f"--set expects KEY=VALUE, got {item!r}")
        key, value = item.split("=", 1)
        flags[key.strip()] = value.strip()
    return flags


def resolve_config(args: argparse.Namespace) -> RuntimeConfig:
    """Resolve the runtime config for one subcommand invocation.

    Applies the observability section process-wide (enable switch +
    default dump path) before returning.

    Parameters
    ----------
    args:
        The parsed namespace (must carry the shared config flags).

    Returns
    -------
    RuntimeConfig
        The resolved config.
    """
    try:
        config = resolve_runtime_config(path=args.config,
                                        flags=flag_layer(args),
                                        search_cwd=args.config is None)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        raise CLIError(str(exc)) from exc
    from .. import obs
    obs.configure(enabled=config.obs.enabled,
                  dump_path=config.obs.dump_path)
    return config


def load_bundle(config: RuntimeConfig):
    """Generate the dataset the config describes.

    Parameters
    ----------
    config:
        The resolved runtime config.

    Returns
    -------
    repro.datasets.DatasetBundle
        Standardized train/test splits plus the paper's ``(h, lam)``.
    """
    from ..datasets import load_dataset
    d = config.dataset
    return load_dataset(d.name, n_train=d.n_train, n_test=d.n_test,
                        seed=d.seed, normalize=d.normalize)


def effective_h_lam(config: RuntimeConfig, data) -> Tuple[float, float]:
    """The ``(h, lam)`` a command should train with.

    Provenance-aware defaulting: a kernel knob left at its built-in
    default falls back to the dataset's paper value; any explicit file /
    env / flag setting wins.

    Parameters
    ----------
    config:
        The resolved runtime config.
    data:
        The :class:`repro.datasets.DatasetBundle` (supplies the paper
        values).

    Returns
    -------
    tuple of float
        ``(h, lam)``.
    """
    h = data.h if config.source("kernel.h") == "default" else config.kernel.h
    lam = (data.lam if config.source("kernel.lam") == "default"
           else config.kernel.lam)
    return float(h), float(lam)


def maybe_dump_metrics(config: RuntimeConfig) -> Optional[str]:
    """Dump the telemetry registry when the config asks for it.

    Parameters
    ----------
    config:
        The resolved runtime config; a non-empty ``obs.dump_path``
        triggers the dump.

    Returns
    -------
    str or None
        The written path, or ``None`` when no dump was configured.
    """
    if not config.obs.dump_path:
        return None
    from ..obs import dump_metrics
    return dump_metrics(config.obs.dump_path)


def _json_default(value: Any):
    import numpy as np
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def result_envelope(command: str, config: RuntimeConfig,
                    result: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a command's payload in the standard result envelope.

    Parameters
    ----------
    command:
        Subcommand name.
    config:
        The resolved runtime config (its path and provenance summary are
        stamped).
    result:
        The command-specific payload.

    Returns
    -------
    dict
        The JSON-serializable envelope.
    """
    non_default = {row["key"]: row["source"] for row in config.describe()
                   if row["source"] != "default"}
    return {
        "command": command,
        "status": "ok",
        "config_path": config.config_path,
        "config_overrides": non_default,
        "host": host_context(),
        "result": result,
    }


def write_result(path: str, payload: Dict[str, Any]) -> str:
    """Atomically write one JSON result document.

    Parameters
    ----------
    path:
        Destination path.
    payload:
        JSON-serializable mapping.

    Returns
    -------
    str
        The ``path`` argument.
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True,
                  default=_json_default)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def emit(args: argparse.Namespace, command: str, config: RuntimeConfig,
         result: Dict[str, Any], human: Iterable[str]) -> int:
    """Write the JSON result and print the human summary.

    Parameters
    ----------
    args:
        The parsed namespace (``--json`` / ``--quiet``).
    command:
        Subcommand name (drives the default result filename).
    config:
        The resolved runtime config.
    result:
        The command payload for the JSON document.
    human:
        Human-readable summary lines for stdout.

    Returns
    -------
    int
        Process exit code (0).
    """
    path = args.json or f"repro_{command}.json"
    write_result(path, result_envelope(command, config, result))
    if not args.quiet:
        for line in human:
            print(line)
        print(f"[result] {path}")
    return 0
