"""``repro train`` — train a model from the config and persist it."""

from __future__ import annotations

import argparse

from ._common import (add_config_arguments, effective_h_lam, emit,
                      load_bundle, maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``train`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "train",
        help="train a KRR model from the config and save it to the store",
        description="Generate the configured dataset, train the configured "
                    "pipeline and persist the fitted model (overwriting any "
                    "previous model of the same name, so re-running is "
                    "idempotent).")
    add_config_arguments(parser)
    parser.add_argument(
        "--no-save", action="store_true",
        help="train and evaluate only; skip the model store")
    parser.set_defaults(func=run)
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute ``repro train``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    from ..krr import KRRPipeline
    from ..serving import ModelStore

    config = resolve_config(args)
    data = load_bundle(config)
    h, lam = effective_h_lam(config, data)

    pipeline = KRRPipeline.from_config(config, h=h, lam=lam)
    report = pipeline.run(data.X_train, data.y_train,
                          data.X_test, data.y_test,
                          dataset_name=config.dataset.name)

    result = {"report": report.row(), "model": None}
    human = [
        f"trained {config.dataset.name}: n_train={report.n_train} "
        f"n_test={report.n_test} solver={report.solver} "
        f"clustering={report.clustering}",
        f"h={report.h:.4g} lam={report.lam:.4g} "
        f"accuracy={report.accuracy_percent:.2f}%",
    ]
    if not args.no_save:
        store = ModelStore.from_config(config)
        record = store.save(pipeline.classifier_, config.serving.model,
                            report=report, overwrite=True)
        result["model"] = {"name": record.name, "path": record.path,
                           "checksum": record.checksum,
                           "store": store.root}
        human.append(f"saved model {record.name!r} to {store.root} "
                     f"(checksum {record.checksum[:12]}...)")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
        human.append(f"metrics dumped to {dumped}")
    return emit(args, "train", config, result, human)
