"""``repro refit`` — cheap λ-only re-train of a stored model."""

from __future__ import annotations

import argparse

from ._common import (CLIError, add_config_arguments, emit, load_bundle,
                      maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``refit`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "refit",
        help="refit the stored model at a new lambda (no recompression)",
        description="Load the configured model from the store, refit the "
                    "λ-shift factorization at the new ridge parameter "
                    "(the kernel compression is reused — the cheap inner "
                    "step of a regularization sweep), re-evaluate on the "
                    "configured test split and save the refitted model "
                    "back under the same name.")
    add_config_arguments(parser)
    parser.add_argument(
        "--new-lam", type=float, default=None, metavar="LAM",
        help="the new ridge parameter (default: kernel.lam from the "
             "config chain)")
    parser.add_argument(
        "--no-save", action="store_true",
        help="refit and evaluate only; do not overwrite the stored model")
    parser.set_defaults(func=run)
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute ``repro refit``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    from ..serving import ArtifactError, ModelStore

    config = resolve_config(args)
    lam = args.new_lam if args.new_lam is not None else config.kernel.lam
    store = ModelStore.from_config(config)
    name = config.serving.model
    try:
        model = store.load(name)
    except ArtifactError as exc:
        raise CLIError(f"{exc} (run `repro train` first)") from exc

    old_lam = float(getattr(model, "lam", float("nan")))
    try:
        model.refit(float(lam))
    except RuntimeError as exc:
        raise CLIError(str(exc)) from exc

    data = load_bundle(config)
    accuracy = float(model.score(data.X_test, data.y_test))

    result = {
        "model": name,
        "store": store.root,
        "old_lam": old_lam,
        "new_lam": float(lam),
        "test_accuracy": accuracy,
        "saved": not args.no_save,
    }
    human = [
        f"refit model {name!r}: lam {old_lam:.4g} -> {float(lam):.4g} "
        f"(compression reused)",
        f"test accuracy at new lam: {100 * accuracy:.2f}%",
    ]
    if not args.no_save:
        record = store.save(model, name, metadata={"lam": float(lam),
                                                   "refit": True},
                            overwrite=True)
        result["checksum"] = record.checksum
        human.append(f"saved refitted model (checksum "
                     f"{record.checksum[:12]}...)")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
    return emit(args, "refit", config, result, human)
