"""``repro update`` — stream rows into/out of a stored model (Woodbury).

The cheap outer loop of a live training set: removals and appended rows
are applied to the stored model as a low-rank Woodbury correction
(:meth:`repro.krr.KernelRidgeClassifier.partial_fit`) — no clustering, no
recompression, no refactorization — and the streamed artifact is saved
back under the same name.  When the drift budget from the ``[stream]``
config section is breached (or ``--recompress force``), the corrections
are folded back into a fresh compression before saving.

Against a running ``repro serve`` daemon, ``--url`` posts the same update
to ``POST /models/<name>/update`` instead, which hot-swaps the served
model with zero dropped requests and schedules any recompression in the
background.
"""

from __future__ import annotations

import argparse
import json as _json
from typing import List, Optional

from ._common import (CLIError, add_config_arguments, emit, load_bundle,
                      maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``update`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "update",
        help="stream rows into/out of the stored model (Woodbury "
             "partial_fit, no recompression)",
        description="Apply a streaming update to the configured model: "
                    "--remove drops training rows, --add appends labeled "
                    "rows from an .npz file (arrays 'X' and 'y'), both as "
                    "an exact low-rank Woodbury correction of the stored "
                    "factorization. The drift budget from the [stream] "
                    "config section decides when the corrections are "
                    "folded back into a fresh compression. With --url the "
                    "update is posted to a running repro serve daemon "
                    "(POST /models/<name>/update) and hot-swapped live.")
    add_config_arguments(parser)
    parser.add_argument(
        "--add", metavar="PATH", default=None,
        help="path of an .npz file with arrays 'X' (rows to append) and "
             "'y' (their labels)")
    parser.add_argument(
        "--remove", metavar="I,J,...", default=None,
        help="comma-separated indices into the model's current training "
             "ordering to drop")
    parser.add_argument(
        "--recompress", choices=("auto", "force", "off"), default=None,
        help="recompression policy (default: stream.recompress from the "
             "config chain)")
    parser.add_argument(
        "--url", metavar="URL", default=None,
        help="base URL of a running repro serve daemon; posts the update "
             "to POST /models/<name>/update instead of editing the store "
             "directly")
    parser.add_argument(
        "--wait", action="store_true",
        help="with --url: block until a scheduled background "
             "recompression (and its hot-swap) completed")
    parser.add_argument(
        "--no-save", action="store_true",
        help="apply and evaluate only; do not overwrite the stored model "
             "(ignored with --url)")
    parser.add_argument(
        "--no-eval", action="store_true",
        help="skip the test-split evaluation of the updated model")
    parser.set_defaults(func=run)
    return parser


def _parse_remove(text: Optional[str]) -> Optional[List[int]]:
    if text is None:
        return None
    try:
        indices = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise CLIError(f"--remove expects comma-separated integers: {exc}")
    if not indices:
        raise CLIError("--remove got no indices")
    return indices


def _load_add(path: Optional[str]):
    if path is None:
        return None, None
    import numpy as np
    try:
        with np.load(path) as data:
            if "X" not in data or "y" not in data:
                raise CLIError(
                    f"{path}: --add expects an .npz with arrays 'X' and "
                    f"'y', found {sorted(data.files)}")
            return (np.asarray(data["X"], dtype=np.float64),
                    np.asarray(data["y"]))
    except (OSError, ValueError) as exc:
        raise CLIError(f"cannot read --add file {path}: {exc}") from exc


def _run_remote(args, config, name, X_new, y_new, remove, mode) -> int:
    """Post the update to a running daemon's /models/<name>/update."""
    import urllib.error
    import urllib.request

    body = {"wait": bool(args.wait)}
    if X_new is not None:
        body["add"] = {"X": X_new.tolist(), "y": y_new.tolist()}
    if remove is not None:
        body["remove"] = remove
    if mode is not None:
        body["recompress"] = mode
    url = f"{args.url.rstrip('/')}/models/{name}/update"
    request = urllib.request.Request(
        url, data=_json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=120.0) as response:
            payload = _json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        raise CLIError(f"POST {url} failed: {exc.code} {detail}") from exc
    except (urllib.error.URLError, OSError) as exc:
        raise CLIError(f"cannot reach {url}: {exc}") from exc

    stream = payload.get("stream", {})
    human = [
        f"updated served model {name!r}: revision "
        f"{payload.get('old_revision')} -> {payload.get('new_revision')} "
        f"(hot-swapped)",
        f"correction rank {stream.get('correction_rank')} "
        f"(budget breached: {stream.get('breached', False)})",
        f"recompress: {payload.get('recompress')}",
    ]
    return emit(args, "update", config, payload, human)


def run(args: argparse.Namespace) -> int:
    """Execute ``repro update``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    from ..serving import ArtifactError, ModelStore

    config = resolve_config(args)
    X_new, y_new = _load_add(args.add)
    remove = _parse_remove(args.remove)
    if X_new is None and remove is None:
        raise CLIError("nothing to do: pass --add and/or --remove")
    name = config.serving.model
    mode = args.recompress if args.recompress is not None \
        else config.stream.recompress

    if args.url:
        return _run_remote(args, config, name, X_new, y_new, remove, mode)

    from ..hss.streaming import DriftBudget
    store = ModelStore.from_config(config)
    try:
        model = store.load(name)
    except ArtifactError as exc:
        raise CLIError(f"{exc} (run `repro train` first)") from exc

    stream_cfg = config.stream
    budget = DriftBudget(max_updates=stream_cfg.max_updates,
                         max_fraction=stream_cfg.max_fraction,
                         residual_tol=stream_cfg.residual_tol,
                         sample_size=stream_cfg.sample_size)
    n_before = int(model.X_train_.shape[0])
    try:
        model.partial_fit(X_new=X_new, y_new=y_new, remove=remove,
                          budget=budget)
    except (RuntimeError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    info = dict(model.stream_info_ or {})

    recompressed = False
    if mode == "force" or (mode == "auto" and info.get("breached")):
        model.recompress()
        recompressed = True

    result = {
        "model": name,
        "store": store.root,
        "n_train_before": n_before,
        "n_train_after": int(model.X_train_.shape[0]),
        "added": 0 if X_new is None else int(X_new.shape[0]),
        "removed": 0 if remove is None else len(remove),
        "stream": info,
        "recompress_mode": mode,
        "recompressed": recompressed,
        "saved": not args.no_save,
    }
    human = [
        f"updated model {name!r}: {n_before} -> "
        f"{result['n_train_after']} training rows "
        f"(+{result['added']} / -{result['removed']})",
        f"correction rank {info.get('correction_rank')} "
        f"(budget breached: {info.get('breached', False)}"
        + (f", {info.get('breach_reason')}" if info.get("breached") else "")
        + ")",
        "recompressed into a fresh factorization" if recompressed
        else "kept as a Woodbury correction (no recompression)",
    ]
    if not args.no_eval:
        data = load_bundle(config)
        accuracy = float(model.score(data.X_test, data.y_test))
        result["test_accuracy"] = accuracy
        human.append(f"test accuracy after update: {100 * accuracy:.2f}%")
    if not args.no_save:
        metadata = {"streamed": not recompressed,
                    "recompressed": recompressed}
        record = store.save(model, name, metadata=metadata, overwrite=True)
        result["checksum"] = record.checksum
        result["revision"] = record.revision
        human.append(f"saved updated model (revision {record.revision}, "
                     f"checksum {record.checksum[:12]}...)")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
    return emit(args, "update", config, result, human)
