"""``repro inspect`` — look at config provenance, stored models, metrics."""

from __future__ import annotations

import argparse
import json
import os

from ._common import (CLIError, add_config_arguments, emit, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``inspect`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "inspect",
        help="inspect the resolved config, the model store or metrics",
        description="Read-only views of the running setup: `inspect "
                    "config` prints every knob with its value and "
                    "provenance layer (default/file/env/flag), `inspect "
                    "models` lists the store catalog, `inspect metrics` "
                    "parses a Prometheus metrics dump.")
    add_config_arguments(parser)
    parser.add_argument(
        "what", choices=("config", "models", "metrics"),
        help="what to inspect")
    parser.add_argument(
        "--metrics-path", metavar="PATH", default=None,
        help="metrics dump to parse (default: obs.dump_path / "
             "REPRO_METRICS_DUMP)")
    parser.set_defaults(func=run)
    return parser


def _inspect_config(config):
    rows = config.describe()
    width = max(len(r["key"]) for r in rows)
    human = [f"config file: {config.config_path or '(none)'}",
             f"{'key'.ljust(width)}  {'source'.ljust(7)}  value",
             f"{'-' * width}  {'-' * 7}  {'-' * 5}"]
    for row in rows:
        human.append(f"{row['key'].ljust(width)}  "
                     f"{row['source'].ljust(7)}  {row['value']!r}")
    return {"config_file": config.config_path, "knobs": rows}, human


def _inspect_models(config):
    from ..serving import ModelStore

    store = ModelStore.from_config(config)
    records = store.list_models()
    human = [f"store: {store.root} ({len(records)} model(s))"]
    payload = []
    for record in records:
        meta = record.metadata or {}
        payload.append({"name": record.name, "kind": record.kind,
                        "created": record.created,
                        "checksum": record.checksum,
                        "metadata": meta})
        lam = meta.get("lam", meta.get("lambda", "?"))
        human.append(f"  {record.name}: kind={record.kind} "
                     f"lam={lam} created={record.created} "
                     f"checksum={record.checksum[:12]}...")
    return {"store": store.root, "models": payload}, human


def _inspect_metrics(config, path):
    from ..obs import configured_dump_path, parse_prometheus, summarize_snapshot

    path = path or configured_dump_path()
    if not path:
        raise CLIError(
            "no metrics dump configured: set obs.dump_path in repro.toml, "
            "REPRO_METRICS_DUMP, or pass --metrics-path")
    if not os.path.exists(path):
        raise CLIError(f"metrics dump {path!r} does not exist (run a "
                       "command with obs.dump_path set first)")
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    human = [f"metrics from {path}:"]
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError:
        # Prometheus text exposition -> flat {series: value}.
        flat = parse_prometheus(text)
        for name in sorted(flat):
            human.append(f"  {name} = {flat[name]:g}")
        return {"path": path, "format": "prometheus", "series": flat}, human
    summary = summarize_snapshot(snapshot)
    for kind in ("counters", "gauges"):
        for name in sorted(summary.get(kind, {})):
            human.append(f"  {name} = {summary[kind][name]:g}")
    for name in sorted(summary.get("histograms", {})):
        hist = summary["histograms"][name]
        human.append(f"  {name}: count={hist['count']} sum={hist['sum']:g} "
                     f"p50<={hist['p50']:g} p95<={hist['p95']:g}")
    return {"path": path, "format": "json", "summary": summary}, human


def run(args: argparse.Namespace) -> int:
    """Execute ``repro inspect``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    config = resolve_config(args)
    if args.what == "config":
        payload, human = _inspect_config(config)
    elif args.what == "models":
        payload, human = _inspect_models(config)
    else:
        payload, human = _inspect_metrics(config, args.metrics_path)
    return emit(args, f"inspect_{args.what}", config, payload, human)
