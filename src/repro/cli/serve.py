"""``repro serve`` — stand up the batched prediction service."""

from __future__ import annotations

import argparse

import numpy as np

from ._common import (CLIError, add_config_arguments, emit, load_bundle,
                      maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``serve`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "serve",
        help="run the prediction service over the stored model",
        description="Load the configured model, build the "
                    "PredictionEngine/PredictionService pair from the "
                    "[serving] section, and either run a one-shot "
                    "self-test (--check) or answer a batch of queries "
                    "from an .npy file.")
    add_config_arguments(parser)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="one-shot self-test: serve a slice of the configured test "
             "split through the live service and verify the answers "
             "match direct model predictions")
    mode.add_argument(
        "--queries", metavar="PATH",
        help="serve a query matrix loaded from this .npy file")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write predictions to this .npy file (default: "
             "repro_serve_predictions.npy; --queries mode only)")
    parser.add_argument(
        "--check-n", type=int, default=64, metavar="N",
        help="number of test rows the self-test serves (default 64)")
    parser.set_defaults(func=run)
    return parser


def _build_service(config):
    from ..serving import ArtifactError, ModelStore, PredictionEngine
    from ..serving import PredictionService

    store = ModelStore.from_config(config)
    try:
        model = store.load(config.serving.model)
    except ArtifactError as exc:
        raise CLIError(f"{exc} (run `repro train` first)") from exc
    engine = PredictionEngine.from_config(config, model)
    service = PredictionService.from_config(config, engine)
    return model, service


def run(args: argparse.Namespace) -> int:
    """Execute ``repro serve``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    config = resolve_config(args)
    model, service = _build_service(config)

    if args.check:
        data = load_bundle(config)
        n = max(1, min(int(args.check_n), data.X_test.shape[0]))
        queries = np.asarray(data.X_test[:n], dtype=np.float64)
        reference = np.asarray(model.predict(queries))
    else:
        try:
            queries = np.load(args.queries)
        except (OSError, ValueError) as exc:
            raise CLIError(f"cannot read queries from "
                           f"{args.queries!r}: {exc}") from exc
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        reference = None

    with service:
        served = service.predict_many(queries, timeout=120.0)
        stats = service.stats()

    result = {
        "model": config.serving.model,
        "mode": "check" if args.check else "batch",
        "n_queries": int(queries.shape[0]),
        "completed": stats.completed,
        "failed": stats.failed,
        "batches": stats.batches,
        "p50_latency_ms": stats.p50_latency_ms,
        "p95_latency_ms": stats.p95_latency_ms,
        "qps": stats.qps,
    }
    human = [
        f"served {queries.shape[0]} queries through model "
        f"{config.serving.model!r} "
        f"(max_batch={config.serving.max_batch}, "
        f"batch_window={config.serving.batch_window:g}s)",
        f"service: {stats.summary()}",
    ]
    if args.check:
        matches = bool(np.array_equal(served, reference))
        result["check_passed"] = matches
        human.append("self-test: served predictions "
                     + ("MATCH" if matches else "DO NOT MATCH")
                     + " direct model predictions")
        if not matches:
            emit(args, "serve", config, result, human)
            raise CLIError("serve --check failed: served predictions "
                           "diverge from direct model predictions")
    else:
        out = args.out or "repro_serve_predictions.npy"
        np.save(out, served)
        result["out"] = out
        human.append(f"predictions written to {out}")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
    return emit(args, "serve", config, result, human)
