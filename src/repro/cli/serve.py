"""``repro serve`` — the HTTP serving daemon (plus one-shot modes).

The default invocation boots the :class:`repro.server.ServerApp` daemon:
every model in the configured store is served over HTTP with blue/green
hot-swap and admission control, on the address from the ``server.*``
config section (``--host`` / ``--port`` override it; port ``0`` binds an
ephemeral port).  The bound address is written into ``repro_serve.json``
*before* the command blocks, so scripts can poll the file and connect.

Two one-shot modes from the pre-daemon CLI are kept: ``--check`` runs the
in-process self-test (serve a slice of the test split through the
micro-batching service and compare against direct model predictions) and
``--queries`` answers a batch from an ``.npy`` file.
"""

from __future__ import annotations

import argparse

import numpy as np

from ._common import (CLIError, add_config_arguments, emit, load_bundle,
                      maybe_dump_metrics, resolve_config)


def add_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``serve`` subcommand.

    Parameters
    ----------
    subparsers:
        The argparse subparsers action of the umbrella parser.

    Returns
    -------
    argparse.ArgumentParser
        The subcommand parser.
    """
    parser = subparsers.add_parser(
        "serve",
        help="run the HTTP serving daemon over the stored models",
        description="Default: boot the asyncio HTTP daemon (POST "
                    "/v1/predict, /healthz, /readyz, /metrics, /models, "
                    "hot-swap) over every model in the configured store, "
                    "using the [server] config section; the bound "
                    "host/port land in repro_serve.json before the "
                    "command blocks. --check runs the one-shot "
                    "in-process self-test instead; --queries answers a "
                    "batch of queries from an .npy file.")
    add_config_arguments(parser)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="one-shot self-test instead of the daemon: serve a slice of "
             "the configured test split through the live service and "
             "verify the answers match direct model predictions")
    mode.add_argument(
        "--queries", metavar="PATH",
        help="one-shot batch instead of the daemon: serve a query matrix "
             "loaded from this .npy file")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write predictions to this .npy file (default: "
             "repro_serve_predictions.npy; --queries mode only)")
    parser.add_argument(
        "--check-n", type=int, default=64, metavar="N",
        help="number of test rows the self-test serves (default 64)")
    daemon = parser.add_argument_group("daemon")
    daemon.add_argument(
        "--host", dest="host", default=argparse.SUPPRESS, metavar="HOST",
        help="sets server.host (daemon bind address)")
    daemon.add_argument(
        "--port", dest="port", default=argparse.SUPPRESS, metavar="PORT",
        help="sets server.port (0 binds an ephemeral port)")
    parser.set_defaults(func=run,
                        extra_flag_keys={"host": "server.host",
                                         "port": "server.port"})
    return parser


def _build_service(config):
    from ..serving import ArtifactError, ModelStore, PredictionEngine
    from ..serving import PredictionService

    store = ModelStore.from_config(config)
    try:
        model = store.load(config.serving.model)
    except ArtifactError as exc:
        raise CLIError(f"{exc} (run `repro train` first)") from exc
    engine = PredictionEngine.from_config(config, model)
    service = PredictionService.from_config(config, engine)
    return model, service


def _run_daemon(args: argparse.Namespace, config) -> int:
    """Boot the HTTP daemon and block until SIGTERM/SIGINT drains it."""
    from ..server import RouterError, ServerApp
    from ..serving import ModelStore

    store = ModelStore.from_config(config)
    names = store.names()
    if not names:
        raise CLIError(f"no models in store {store.root!r}; run "
                       f"`repro train` first")
    app = ServerApp(config, store=store)

    def on_ready(host: str, port: int) -> None:
        # Publish the *bound* address (port 0 resolves to a real port
        # here) before blocking, so scripts can poll repro_serve.json.
        result = {
            "mode": "daemon",
            "host": host,
            "port": port,
            "url": f"http://{host}:{port}",
            "models": names,
            "max_queue": config.server.max_queue,
            "max_batch": config.server.max_batch,
            "drain_timeout": config.server.drain_timeout,
        }
        human = [
            f"serving {', '.join(names)} at http://{host}:{port}",
            "endpoints: POST /v1/predict, /healthz, /readyz, /metrics, "
            "/models, /models/<name>[/versions|/swap|/refit]",
            f"admission: {config.server.max_queue} in-flight, then 429; "
            f"SIGTERM drains within {config.server.drain_timeout:g}s",
        ]
        emit(args, "serve", config, result, human)

    try:
        app.run(ready=on_ready)
    except RouterError as exc:
        raise CLIError(str(exc)) from exc
    except KeyboardInterrupt:
        pass
    if not args.quiet:
        print("server drained; bye")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute ``repro serve``.

    Parameters
    ----------
    args:
        Parsed command-line namespace.

    Returns
    -------
    int
        Process exit code.
    """
    config = resolve_config(args)
    if not args.check and not args.queries:
        return _run_daemon(args, config)
    model, service = _build_service(config)

    if args.check:
        data = load_bundle(config)
        n = max(1, min(int(args.check_n), data.X_test.shape[0]))
        queries = np.asarray(data.X_test[:n], dtype=np.float64)
        reference = np.asarray(model.predict(queries))
    else:
        try:
            queries = np.load(args.queries)
        except (OSError, ValueError) as exc:
            raise CLIError(f"cannot read queries from "
                           f"{args.queries!r}: {exc}") from exc
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        reference = None

    with service:
        served = service.predict_many(queries, timeout=120.0)
        stats = service.stats()

    result = {
        "model": config.serving.model,
        "mode": "check" if args.check else "batch",
        "n_queries": int(queries.shape[0]),
        "completed": stats.completed,
        "failed": stats.failed,
        "batches": stats.batches,
        "p50_latency_ms": stats.p50_latency_ms,
        "p95_latency_ms": stats.p95_latency_ms,
        "qps": stats.qps,
    }
    human = [
        f"served {queries.shape[0]} queries through model "
        f"{config.serving.model!r} "
        f"(max_batch={config.serving.max_batch}, "
        f"batch_window={config.serving.batch_window:g}s)",
        f"service: {stats.summary()}",
    ]
    if args.check:
        matches = bool(np.array_equal(served, reference))
        result["check_passed"] = matches
        human.append("self-test: served predictions "
                     + ("MATCH" if matches else "DO NOT MATCH")
                     + " direct model predictions")
        if not matches:
            emit(args, "serve", config, result, human)
            raise CLIError("serve --check failed: served predictions "
                           "diverge from direct model predictions")
    else:
        out = args.out or "repro_serve_predictions.npy"
        np.save(out, served)
        result["out"] = out
        human.append(f"predictions written to {out}")
    dumped = maybe_dump_metrics(config)
    if dumped:
        result["metrics_dump"] = dumped
    return emit(args, "serve", config, result, human)
