"""Multi-tenant blue/green model routing over a :class:`ModelStore`.

The router owns one *entry* per served model name.  Each entry holds an
**active generation** — a store revision loaded into a
:class:`repro.serving.PredictionEngine` (or sharded backend) behind a
micro-batching :class:`repro.serving.PredictionService` — plus any
generations still draining after a swap.  A hot-swap is one atomic
pointer flip:

1. the new revision is loaded, built and *started* off to the side
   (green warms while blue serves);
2. the entry's active pointer flips under a lock — every request admitted
   from now on routes to the new generation;
3. the old generation stops accepting and drains its backlog on a
   background thread — every request admitted before the flip is still
   answered by the version that admitted it.

Because admission and the flip race benignly (a request can observe the
outgoing generation just as it stops accepting), :meth:`ModelRouter.submit`
retries against the refreshed active generation, so a swap under load
never fails a request.  All generations of one entry share a single
:class:`repro.obs.RequestTrail`, and every record carries the store
revision that served it — the old→new boundary is visible in
``recent_requests()``.

Per-model / per-version counters land in :func:`repro.obs.global_registry`:
``repro_server_predictions_total{model,version}``,
``repro_server_swaps_total{model}`` and the
``repro_server_model_revision{model}`` gauge.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..hss.streaming import DriftBudget
from ..obs import RequestTrail, global_registry
from ..serving import ModelStore, PredictionEngine, PredictionService

__all__ = ["ModelRouter", "RouterError", "ModelNotServed"]


class RouterError(RuntimeError):
    """An operator-facing routing failure (unknown model, bad swap, ...)."""


class ModelNotServed(RouterError):
    """Raised when a request names a model the router is not serving."""


@dataclass
class _Generation:
    """One live (or draining) version of a served model."""

    revision: int
    checksum: str
    service: PredictionService
    activated: float
    counter: object  # repro_server_predictions_total{model,version} handle


class _ModelEntry:
    """Router-side state of one served model name."""

    def __init__(self, name: str, trail_size: int):
        self.name = name
        self.lock = threading.Lock()
        self.trail = RequestTrail(capacity=trail_size)
        self.active: Optional[_Generation] = None
        self.draining: List[threading.Thread] = []


class ModelRouter:
    """Serve several named models concurrently with versioned hot-swap.

    Parameters
    ----------
    store:
        The :class:`repro.serving.ModelStore` models are loaded from (and
        whose monotonic :attr:`~repro.serving.ModelRecord.revision`
        stamps drive swap decisions).
    batch_size:
        Engine GEMM block size (see :class:`repro.serving.PredictionEngine`).
    cache_size:
        Kernel-row LRU capacity per engine.
    max_batch:
        Micro-batch cap of each generation's dispatcher.
    batch_window:
        Seconds the dispatcher waits to fill a micro-batch.
    workers:
        Engine worker threads (``None`` → serial).
    shards:
        When > 1, generations are backed by a
        :class:`repro.distributed.ShardedPredictionService` over the same
        duck-typed engine contract (per-shard GEMMs behind one service).
    drain_timeout:
        Seconds a retired generation gets to drain its backlog.
    trail_size:
        Shared per-model request-trail capacity (spans generations).
    """

    def __init__(self, store: ModelStore, batch_size: int = 1024,
                 cache_size: int = 0, max_batch: int = 256,
                 batch_window: float = 0.001,
                 workers: Optional[int] = None,
                 shards: Optional[int] = None,
                 drain_timeout: float = 10.0,
                 trail_size: int = 4096,
                 stream_budget: Optional[DriftBudget] = None,
                 recompress_mode: str = "auto"):
        if recompress_mode not in ("auto", "force", "off"):
            raise ValueError(
                f"recompress_mode must be 'auto', 'force' or 'off', "
                f"got {recompress_mode!r}")
        self.store = store
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.max_batch = int(max_batch)
        self.batch_window = float(batch_window)
        self.workers = workers
        self.shards = shards
        self.drain_timeout = float(drain_timeout)
        self.trail_size = int(trail_size)
        self.stream_budget = stream_budget
        self.recompress_mode = recompress_mode
        self._entries: Dict[str, _ModelEntry] = {}
        self._recompressing: Dict[str, threading.Thread] = {}
        self._recompress_results: Dict[str, Dict[str, object]] = {}
        self._registry_lock = threading.Lock()
        reg = global_registry()
        self._m_predictions = reg.counter(
            "repro_server_predictions_total",
            "Predictions served by the HTTP router, by model and version",
            labelnames=("model", "version"))
        self._m_swaps = reg.counter(
            "repro_server_swaps_total",
            "Completed blue/green hot-swaps, by model",
            labelnames=("model",))
        self._m_revision = reg.gauge(
            "repro_server_model_revision",
            "Store revision currently served, by model",
            labelnames=("model",))

    @classmethod
    def from_config(cls, config, store: Optional[ModelStore] = None
                    ) -> "ModelRouter":
        """Build a router from a :class:`repro.runtime.RuntimeConfig`.

        Parameters
        ----------
        config:
            The resolved runtime config; ``serving.*`` supplies the
            engine/service knobs, ``server.drain_timeout`` the drain
            budget and ``distributed.workers`` / ``distributed.shards``
            the backend parallelism.
        store:
            Optional already-open store (``None`` opens
            ``serving.store``).

        Returns
        -------
        ModelRouter
            The configured router (no models served yet).
        """
        stream = getattr(config, "stream", None)
        budget, mode = None, "auto"
        if stream is not None:
            budget = DriftBudget(max_updates=stream.max_updates,
                                 max_fraction=stream.max_fraction,
                                 residual_tol=stream.residual_tol,
                                 sample_size=stream.sample_size)
            mode = stream.recompress
        return cls(store if store is not None
                   else ModelStore.from_config(config),
                   batch_size=config.serving.batch_size,
                   cache_size=config.serving.cache_size,
                   max_batch=config.serving.max_batch,
                   batch_window=config.serving.batch_window,
                   workers=config.distributed.workers,
                   shards=config.distributed.shards,
                   drain_timeout=config.server.drain_timeout,
                   stream_budget=budget,
                   recompress_mode=mode)

    # ------------------------------------------------------------- generations
    def _build_generation(self, name: str, trail: RequestTrail) -> _Generation:
        """Load the latest store revision and start a serving generation."""
        record = self.store.latest(name)
        model = self.store.load(name)
        if self.shards is not None and int(self.shards) > 1:
            from ..distributed import ShardedPredictionService
            engine = ShardedPredictionService(
                model, shards=int(self.shards), batch_size=self.batch_size,
                cache_size=self.cache_size)
        else:
            from ..parallel.executor import resolve_workers
            engine = PredictionEngine(
                model, batch_size=self.batch_size,
                workers=resolve_workers(self.workers),
                cache_size=self.cache_size)
        service = PredictionService(
            engine, max_batch=self.max_batch,
            batch_window=self.batch_window, model_name=name,
            model_version=record.revision, trail=trail)
        service.start()
        counter = self._m_predictions.labels(model=name,
                                             version=str(record.revision))
        return _Generation(revision=record.revision,
                           checksum=record.checksum, service=service,
                           activated=time.time(), counter=counter)

    def _entry(self, name: str, create: bool = False) -> _ModelEntry:
        with self._registry_lock:
            entry = self._entries.get(name)
            if entry is None:
                if not create:
                    raise ModelNotServed(
                        f"model {name!r} is not being served; "
                        f"serving: {sorted(self._entries) or 'none'}")
                entry = _ModelEntry(name, self.trail_size)
                self._entries[name] = entry
            return entry

    # --------------------------------------------------------------- lifecycle
    def serve(self, name: str) -> int:
        """Start serving the latest stored revision of ``name``.

        Idempotent: an already-served model keeps its active generation
        (use :meth:`swap` to pick up a newer revision).

        Parameters
        ----------
        name:
            Store entry to serve.

        Returns
        -------
        int
            The revision now active.
        """
        entry = self._entry(name, create=True)
        with entry.lock:
            if entry.active is not None:
                return entry.active.revision
            entry.active = self._build_generation(name, entry.trail)
            self._m_revision.labels(model=name).set(entry.active.revision)
            return entry.active.revision

    def swap(self, name: str, force: bool = False,
             wait: bool = False) -> Dict[str, object]:
        """Hot-swap ``name`` to the latest store revision (blue/green).

        The replacement generation is built and started *before* the
        atomic flip, then the outgoing generation drains its admitted
        backlog on a background thread — zero requests are dropped.  When
        the store has no newer revision and ``force`` is false, the swap
        is a no-op.

        Parameters
        ----------
        name:
            Served model to swap.
        force:
            Rebuild and flip even when the store revision is unchanged
            (e.g. to pick up changed engine settings).
        wait:
            Block until the outgoing generation finished draining.

        Returns
        -------
        dict
            ``{"model", "old_revision", "new_revision", "swapped"}``.
        """
        entry = self._entry(name)
        with entry.lock:
            if entry.active is None:
                raise RouterError(f"model {name!r} has no active generation")
            old = entry.active
            latest = self.store.latest(name).revision
            if latest == old.revision and not force:
                return {"model": name, "old_revision": old.revision,
                        "new_revision": old.revision, "swapped": False}
            new = self._build_generation(name, entry.trail)
            entry.active = new  # the atomic flip: new requests route here
            self._m_revision.labels(model=name).set(new.revision)
            self._m_swaps.labels(model=name).inc()
            drainer = threading.Thread(
                target=old.service.stop, args=(self.drain_timeout,),
                name=f"repro-server-drain-{name}", daemon=True)
            entry.draining.append(drainer)
            drainer.start()
        if wait:
            drainer.join(self.drain_timeout)
        return {"model": name, "old_revision": old.revision,
                "new_revision": new.revision, "swapped": True}

    def refit(self, name: str, lam: float) -> Dict[str, object]:
        """Refit ``name`` at a new λ, re-save, and hot-swap to the result.

        The λ-only refactorization reuses the stored compression (the
        compress-once/refit-many contract); the re-save bumps the store
        revision under the per-model lock and the swap flips traffic to
        the refitted weights with in-flight requests draining on the old
        version.

        Parameters
        ----------
        name:
            Served model to refit.
        lam:
            New ridge parameter.

        Returns
        -------
        dict
            The :meth:`swap` result plus ``"lam"``.
        """
        self._entry(name)  # must already be served
        model = self.store.load(name)
        refit = getattr(model, "refit", None)
        if refit is None:
            raise RouterError(
                f"model {name!r} does not support refit(lam)")
        refit(float(lam))
        record = self.store.record(name)
        meta = dict(record.metadata)
        meta["lambda"] = float(lam)
        self.store.save(model, name, metadata=meta, overwrite=True)
        result = self.swap(name)
        result["lam"] = float(lam)
        return result

    def update(self, name: str, X_new=None, y_new=None, remove=None,
               recompress: Optional[str] = None,
               wait: bool = False) -> Dict[str, object]:
        """Stream rows into/out of ``name`` and hot-swap to the result.

        The stored model is loaded, :meth:`~repro.krr.KernelRidgeClassifier.partial_fit`
        applies the removals and appended rows as a Woodbury correction
        (no recompression), the streamed artifact is re-saved (bumping
        the store revision) and traffic flips to it via :meth:`swap` —
        the cost of picking up new data is one capacitance solve, not a
        cold fit.  When the router's :class:`repro.hss.DriftBudget` is
        breached (or ``recompress="force"``), a *background* cold refit
        of the effective training set is scheduled; once it lands, the
        store revision bumps again and a second hot-swap publishes the
        recompressed model — serving continues on the corrected
        (slightly slower) model in the meantime, with zero dropped
        requests at either flip.

        Parameters
        ----------
        name:
            Served model to update.
        X_new, y_new:
            Rows (and their labels) to append, or ``None``.
        remove:
            Indices into the model's current training ordering to drop.
        recompress:
            ``"auto"`` (recompress only on budget breach, the default
            from the ``[stream]`` config), ``"force"`` or ``"off"``.
        wait:
            Block until a scheduled recompression (and its swap)
            completed instead of returning while it runs.

        Returns
        -------
        dict
            The :meth:`swap` result plus ``"stream"`` (drift bookkeeping
            of the applied update) and ``"recompress"`` (whether a
            background recompression was scheduled / completed).
        """
        mode = self.recompress_mode if recompress is None else recompress
        if mode not in ("auto", "force", "off"):
            raise RouterError(
                f"recompress must be 'auto', 'force' or 'off', got {mode!r}")
        self._entry(name)  # must already be served
        model = self.store.load(name)
        partial_fit = getattr(model, "partial_fit", None)
        if partial_fit is None:
            raise RouterError(
                f"model {name!r} does not support streaming updates")
        X_arr = None if X_new is None else np.asarray(X_new, dtype=np.float64)
        y_arr = None if y_new is None else np.asarray(y_new)
        partial_fit(X_new=X_arr, y_new=y_arr, remove=remove,
                    budget=self.stream_budget)
        info = dict(getattr(model, "stream_info_", None) or {})
        record = self.store.record(name)
        meta = dict(record.metadata)
        meta["streamed"] = True
        self.store.save(model, name, metadata=meta, overwrite=True)
        result = self.swap(name)
        result["stream"] = info
        should = mode == "force" or (mode == "auto"
                                     and bool(info.get("breached")))
        if should:
            result["recompress"] = self._schedule_recompress(name, wait=wait)
        else:
            result["recompress"] = {"mode": mode, "scheduled": False}
        result["recompress"]["mode"] = mode
        return result

    def recompress(self, name: str, wait: bool = False) -> Dict[str, object]:
        """Schedule a background recompression of ``name`` (see :meth:`update`).

        Parameters
        ----------
        name:
            Served model to recompress.
        wait:
            Block until the recompression and its hot-swap completed.

        Returns
        -------
        dict
            ``{"scheduled", "running"}`` plus, once finished (always
            when ``wait``), the completed job's swap result or error.
        """
        self._entry(name)  # must already be served
        return self._schedule_recompress(name, wait=wait)

    def _schedule_recompress(self, name: str, wait: bool) -> Dict[str, object]:
        """Start (or join) the single in-flight recompress job of ``name``."""
        with self._registry_lock:
            thread = self._recompressing.get(name)
            started = thread is None or not thread.is_alive()
            if started:
                self._recompress_results.pop(name, None)
                thread = threading.Thread(
                    target=self._recompress_job, args=(name,),
                    name=f"repro-server-recompress-{name}", daemon=True)
                self._recompressing[name] = thread
        if started:
            thread.start()
        if wait:
            thread.join()
        result: Dict[str, object] = {"scheduled": started,
                                     "running": thread.is_alive()}
        done = self._recompress_results.get(name)
        if done is not None and not thread.is_alive():
            result.update(done)
        return result

    def _recompress_job(self, name: str) -> None:
        """Background worker: cold-refit the effective data and hot-swap."""
        try:
            model = self.store.load(name)
            recompress = getattr(model, "recompress", None)
            if recompress is None:
                raise RouterError(
                    f"model {name!r} does not support recompress()")
            recompress()
            record = self.store.record(name)
            meta = dict(record.metadata)
            meta.pop("streamed", None)
            meta["recompressed"] = True
            self.store.save(model, name, metadata=meta, overwrite=True)
            swap = self.swap(name)
            self._recompress_results[name] = {"status": "completed",
                                              "swap": swap}
        except Exception as exc:  # noqa: BLE001 - surfaced via results dict
            self._recompress_results[name] = {"status": "failed",
                                              "error": str(exc)}

    def stop(self, name: str) -> None:
        """Stop serving ``name`` (drains the active generation).

        Parameters
        ----------
        name:
            Served model to retire.
        """
        entry = self._entry(name)
        with entry.lock:
            active, entry.active = entry.active, None
            drainers = list(entry.draining)
        if active is not None:
            active.service.stop(timeout=self.drain_timeout)
        for thread in drainers:
            thread.join(self.drain_timeout)
        with self._registry_lock:
            self._entries.pop(name, None)

    def close(self) -> None:
        """Stop every served model and wait for all drains."""
        for name in self.names():
            try:
                self.stop(name)
            except RouterError:  # pragma: no cover - raced removal
                continue

    # --------------------------------------------------------------- requests
    def submit(self, name: str, x: np.ndarray) -> Future:
        """Enqueue one query against the active generation of ``name``.

        Retries the admission when a hot-swap flips the active generation
        mid-submit, so requests racing a swap are never failed — they are
        re-routed to the incoming version.

        Parameters
        ----------
        name:
            Served model name.
        x:
            One query point (1-D array of the model's dimension).

        Returns
        -------
        concurrent.futures.Future
            Resolves to the predicted label.
        """
        entry = self._entry(name)
        while True:
            with entry.lock:
                generation = entry.active
            if generation is None:
                raise RouterError(f"model {name!r} has no active generation")
            try:
                future = generation.service.submit(x)
            except RuntimeError:
                # The generation stopped accepting between the read and
                # the submit (hot-swap flip); route to its replacement.
                continue
            generation.counter.inc()
            return future

    def predict(self, name: str, X: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Predict a batch through the active generation (in order).

        Parameters
        ----------
        name:
            Served model name.
        X:
            Query matrix ``(m, d)``.
        timeout:
            Seconds to wait per result.

        Returns
        -------
        numpy.ndarray
            Predicted labels, aligned with the rows of ``X``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        futures = [self.submit(name, X[i]) for i in range(X.shape[0])]
        return np.asarray([f.result(timeout=timeout) for f in futures])

    # ------------------------------------------------------------------ state
    def names(self) -> List[str]:
        """Names currently being served, sorted."""
        with self._registry_lock:
            return sorted(self._entries)

    def active_revision(self, name: str) -> int:
        """Revision of the generation currently serving ``name``.

        Parameters
        ----------
        name:
            Served model name.

        Returns
        -------
        int
            The active store revision.
        """
        entry = self._entry(name)
        with entry.lock:
            if entry.active is None:
                raise RouterError(f"model {name!r} has no active generation")
            return entry.active.revision

    def recent_requests(self, name: str, n: Optional[int] = None):
        """The model's shared request trail, oldest first (spans swaps).

        Parameters
        ----------
        name:
            Served model name.
        n:
            Number of records (``None`` → all retained).

        Returns
        -------
        list of repro.obs.RequestRecord
            Finished records with per-request ``model_version`` labels.
        """
        return self._entry(name).trail.recent(n)

    def status(self, name: str) -> Dict[str, object]:
        """Serving status of one model (the ``GET /models/<name>`` payload).

        Parameters
        ----------
        name:
            Served model name.

        Returns
        -------
        dict
            Active revision/checksum, store's latest revision, whether a
            newer revision is available, drain count and rolling service
            statistics (p50/p95 latency, QPS, completed/failed counts).
        """
        entry = self._entry(name)
        with entry.lock:
            generation = entry.active
            draining = sum(1 for t in entry.draining if t.is_alive())
        with self._registry_lock:
            job = self._recompressing.get(name)
        recompressing = job is not None and job.is_alive()
        if generation is None:
            return {"model": name, "status": "stopped", "draining": draining,
                    "recompressing": recompressing}
        stats = generation.service.stats()
        try:
            latest = self.store.latest(name).revision
        except Exception:
            latest = generation.revision
        return {
            "model": name,
            "status": "ready",
            "revision": generation.revision,
            "checksum": generation.checksum,
            "activated": generation.activated,
            "latest_revision": latest,
            "swap_available": latest > generation.revision,
            "draining": draining,
            "recompressing": recompressing,
            "stats": {
                "completed": stats.completed,
                "failed": stats.failed,
                "pending": stats.pending,
                "qps": stats.qps,
                "p50_latency_ms": stats.p50_latency_ms,
                "p95_latency_ms": stats.p95_latency_ms,
                "mean_batch_size": stats.mean_batch_size,
            },
        }

    def status_all(self) -> List[Dict[str, object]]:
        """Status of every served model (the ``GET /models`` payload).

        Returns
        -------
        list of dict
            One :meth:`status` payload per served name, sorted by name.
        """
        return [self.status(name) for name in self.names()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRouter(models={self.names()}, store={self.store.root!r})"
