"""Hand-rolled HTTP/1.1 over asyncio streams — request parsing, responses.

The serving daemon speaks plain HTTP/1.1 with JSON bodies and needs no
web framework: the whole wire format lives in this module.  It parses a
request line, headers and an optional ``Content-Length`` body from an
``asyncio.StreamReader`` and renders :class:`HttpResponse` objects back,
honouring keep-alive (the default in HTTP/1.1) so closed-loop clients can
reuse one connection per session.

Deliberately minimal, deliberately strict: no chunked transfer encoding,
no multipart, hard limits on header and body sizes — anything outside the
supported subset fails fast with a 4xx instead of hanging the loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "HttpRequest", "HttpResponse", "read_request",
           "render_response", "STATUS_PHRASES"]

#: maximum bytes of request line + headers accepted before 431
MAX_HEADER_BYTES = 32 * 1024
#: maximum request body bytes accepted before 413
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_PHRASES: Dict[int, str] = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request failure with an HTTP status code and JSON error payload.

    Parameters
    ----------
    status:
        HTTP status code of the failure.
    message:
        Human-readable error description (becomes the JSON ``error``
        field of the response body).
    headers:
        Extra response headers (e.g. ``Retry-After`` on 429).
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.headers = dict(headers or {})

    def response(self) -> "HttpResponse":
        """Render this error as a JSON :class:`HttpResponse`.

        Returns
        -------
        HttpResponse
            ``{"error": message, "status": status}`` with the error's
            status code and extra headers.
        """
        return HttpResponse.json(
            {"error": self.message, "status": self.status},
            status=self.status, headers=self.headers)


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request.

    Parameters
    ----------
    method:
        Upper-case request method (``GET``, ``POST``, ...).
    path:
        URL-decoded request path without the query string.
    query:
        Parsed query-string parameters (last value wins per key).
    headers:
        Header mapping with lower-cased keys.
    body:
        Raw request body bytes (``b""`` when absent).
    """

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """Decode the body as JSON.

        Returns
        -------
        object
            The decoded payload (an empty body decodes to ``{}``).
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to keep the connection open."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    """One HTTP response ready to render onto the wire.

    Parameters
    ----------
    status:
        HTTP status code.
    body:
        Response body bytes.
    content_type:
        ``Content-Type`` header value.
    headers:
        Extra headers merged into the response.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200,
             headers: Optional[Dict[str, str]] = None) -> "HttpResponse":
        """Build a JSON response from a serializable payload.

        Parameters
        ----------
        payload:
            JSON-serializable object.
        status:
            HTTP status code.
        headers:
            Extra response headers.

        Returns
        -------
        HttpResponse
            With the payload serialized (sorted keys, trailing newline).
        """
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body,
                   content_type="application/json",
                   headers=dict(headers or {}))

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8",
             headers: Optional[Dict[str, str]] = None) -> "HttpResponse":
        """Build a plain-text response (e.g. the Prometheus exposition).

        Parameters
        ----------
        text:
            Response body text.
        status:
            HTTP status code.
        content_type:
            ``Content-Type`` header value.
        headers:
            Extra response headers.

        Returns
        -------
        HttpResponse
            With the UTF-8 encoded text as body.
        """
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type, headers=dict(headers or {}))


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = MAX_BODY_BYTES) -> Optional[HttpRequest]:
    """Read and parse one HTTP/1.1 request from the stream.

    Parameters
    ----------
    reader:
        The connection's stream reader.
    max_body:
        Maximum accepted ``Content-Length``; larger bodies raise a 413
        :class:`HttpError`.

    Returns
    -------
    HttpRequest or None
        The parsed request, or ``None`` when the peer closed the
        connection cleanly before sending one.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests (keep-alive end)
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")

    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(method=method.upper(), path=unquote(split.path),
                       query=query, headers=headers, body=body)


def render_response(response: HttpResponse, keep_alive: bool) -> bytes:
    """Serialize a response into HTTP/1.1 wire bytes.

    Parameters
    ----------
    response:
        The response to render.
    keep_alive:
        Whether the connection stays open afterwards (sets the
        ``Connection`` header accordingly).

    Returns
    -------
    bytes
        The complete response: status line, headers, blank line, body.
    """
    phrase = STATUS_PHRASES.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {phrase}",
             f"Content-Type: {response.content_type}",
             f"Content-Length: {len(response.body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + response.body
