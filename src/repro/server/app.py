"""The asyncio HTTP daemon: routes, admission control, graceful drain.

:class:`ServerApp` binds the stdlib-only HTTP/1.1 front end
(:mod:`repro.server.http`) to a blue/green :class:`repro.server.ModelRouter`
and runs the whole serving tier on one ``asyncio`` event loop:

* **Routing** — ``POST /v1/predict`` plus the operational surface
  (``/healthz``, ``/readyz``, ``/metrics``, ``/models`` and per-model
  status / ``swap`` / ``refit``).  Prediction work is bridged onto a
  thread pool (the router's futures block), so the loop never stalls on
  a GEMM.
* **Admission control** — at most ``server.max_queue`` predict requests
  are in flight; beyond that the server sheds load immediately with
  ``429 Too Many Requests`` + ``Retry-After`` instead of building an
  unbounded backlog.
* **Graceful drain** — ``SIGTERM``/``SIGINT`` (or
  :meth:`ServerApp.request_shutdown` from another thread) stop the
  listener, let in-flight requests finish within ``server.drain_timeout``
  seconds, then close the router (which drains every generation).

The daemon is what ``repro serve`` boots; tests run it on a background
thread via :meth:`ServerApp.run` with a ``ready`` callback that reports
the bound (host, port) — port ``0`` binds an ephemeral port.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs import global_registry
from ..serving import ModelStore
from .http import (HttpError, HttpRequest, HttpResponse, read_request,
                   render_response)
from .router import ModelNotServed, ModelRouter, RouterError

__all__ = ["ServerApp"]

#: Prometheus text exposition content type
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServerApp:
    """The ``repro serve`` daemon: HTTP front end over a model router.

    Parameters
    ----------
    config:
        A resolved :class:`repro.runtime.RuntimeConfig`; the ``server.*``
        section supplies host, port, queue depth, drain timeout and the
        per-request batch cap, ``serving.*``/``distributed.*`` shape the
        backend engines.
    store:
        Optional already-open :class:`repro.serving.ModelStore`
        (``None`` opens ``serving.store``).
    router:
        Optional pre-built :class:`ModelRouter` (``None`` builds one from
        the config and store).
    models:
        Names to serve at startup.  ``None`` serves every model in the
        store; an empty store is an error (train and ``repro
        save``/``store.save`` first).

    Examples
    --------
    Run in a background thread and wait for the bound address::

        ready = threading.Event()
        bound = {}

        def on_ready(host, port):
            bound["addr"] = (host, port)
            ready.set()

        thread = threading.Thread(target=app.run,
                                  kwargs={"ready": on_ready}, daemon=True)
        thread.start()
        ready.wait(10.0)
        ...
        app.request_shutdown()
        thread.join(10.0)
    """

    def __init__(self, config, store: Optional[ModelStore] = None,
                 router: Optional[ModelRouter] = None,
                 models: Optional[List[str]] = None):
        self.config = config
        self.store = store if store is not None \
            else ModelStore.from_config(config)
        self.router = router if router is not None \
            else ModelRouter.from_config(config, store=self.store)
        self.models = list(models) if models is not None else None
        self.max_queue = int(config.server.max_queue)
        self.max_batch = int(config.server.max_batch)
        self.drain_timeout = float(config.server.drain_timeout)
        #: bound address, available once the listener is up (port 0 in the
        #: config binds an ephemeral port; this reports the real one)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._ready = False
        self._shutting_down = False
        self._inflight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, min(32, self.max_queue)),
            thread_name_prefix="repro-server")
        reg = global_registry()
        self._m_http = reg.counter(
            "repro_server_http_requests_total",
            "HTTP responses sent, by route pattern and status code",
            labelnames=("route", "status"))
        self._m_rejected = reg.counter(
            "repro_server_rejected_total",
            "Predict requests shed by admission control (429)")
        self._m_inflight = reg.gauge(
            "repro_server_inflight",
            "Predict requests currently admitted (running or queued)")

    # ------------------------------------------------------------- lifecycle
    def run(self, ready: Optional[Callable[[str, int], None]] = None) -> None:
        """Serve until shutdown is requested (blocking).

        Parameters
        ----------
        ready:
            Optional callback invoked with the bound ``(host, port)`` once
            the listener is accepting — the CLI uses it to publish the
            address, tests to synchronize their clients.
        """
        asyncio.run(self._main(ready))

    def request_shutdown(self) -> None:
        """Begin a graceful drain (thread-safe, idempotent).

        Equivalent to delivering ``SIGTERM``: stop accepting, let
        in-flight requests finish within the drain timeout, close the
        router.  Safe to call from any thread; a no-op before the loop
        starts or after shutdown completed.
        """
        loop, event = self._loop, self._shutdown_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)

    async def _main(self, ready) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._shutdown_event.set)
            except (NotImplementedError, ValueError, RuntimeError):
                # Not the main thread (tests) or an exotic loop: rely on
                # request_shutdown() instead.
                break
        names = self.models if self.models is not None else self.store.names()
        if not names:
            raise RouterError(
                f"no models to serve in {self.store.root!r}; train one "
                f"first (repro train) or pass explicit names")
        for name in names:
            self.router.serve(name)
        server = await asyncio.start_server(
            self._handle_connection, host=self.config.server.host,
            port=self.config.server.port, limit=2 * 64 * 1024)
        try:
            sockname = server.sockets[0].getsockname()
            self.host, self.port = sockname[0], int(sockname[1])
            self._ready = True
            if ready is not None:
                ready(self.host, self.port)
            await self._shutdown_event.wait()
        finally:
            self._ready = False
            self._shutting_down = True
            server.close()
            await server.wait_closed()
            await self._drain_inflight()
            for writer in list(self._connections):
                with contextlib.suppress(Exception):
                    writer.close()
            await self._loop.run_in_executor(None, self.router.close)
            self._executor.shutdown(wait=False)

    async def _drain_inflight(self) -> None:
        """Wait (up to the drain timeout) for admitted requests to finish."""
        deadline = self._loop.time() + self.drain_timeout
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.02)

    # ----------------------------------------------------------- connections
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(render_response(exc.response(), False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = request.keep_alive and not self._shutting_down
                route, response = await self._dispatch(request)
                self._m_http.labels(route=route,
                                    status=str(response.status)).inc()
                writer.write(render_response(response, keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest
                        ) -> Tuple[str, HttpResponse]:
        """Route one request; returns ``(route_pattern, response)``."""
        route, handler, params = self._match(request.method, request.path)
        try:
            if handler is None:
                raise HttpError(404 if route == "unmatched" else 405,
                                f"no route for {request.method} "
                                f"{request.path}")
            response = await handler(request, **params)
        except HttpError as exc:
            response = exc.response()
        except ModelNotServed as exc:
            response = HttpError(404, str(exc)).response()
        except RouterError as exc:
            response = HttpError(409, str(exc)).response()
        except ValueError as exc:
            response = HttpError(400, str(exc)).response()
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            response = HttpError(
                500, f"internal error: {type(exc).__name__}: {exc}"
            ).response()
        return route, response

    def _match(self, method: str, path: str
               ) -> Tuple[str, Optional[Callable], Dict[str, str]]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            return "/", (self._handle_index if method == "GET" else None), {}
        if parts == ["healthz"]:
            return "/healthz", \
                (self._handle_healthz if method == "GET" else None), {}
        if parts == ["readyz"]:
            return "/readyz", \
                (self._handle_readyz if method == "GET" else None), {}
        if parts == ["metrics"]:
            return "/metrics", \
                (self._handle_metrics if method == "GET" else None), {}
        if parts == ["models"]:
            return "/models", \
                (self._handle_models if method == "GET" else None), {}
        if len(parts) == 2 and parts[0] == "models":
            return "/models/<name>", \
                (self._handle_model if method == "GET" else None), \
                {"name": parts[1]}
        if len(parts) == 3 and parts[0] == "models":
            name, action = parts[1], parts[2]
            if action == "versions":
                return "/models/<name>/versions", \
                    (self._handle_versions if method == "GET" else None), \
                    {"name": name}
            if action == "swap":
                return "/models/<name>/swap", \
                    (self._handle_swap if method == "POST" else None), \
                    {"name": name}
            if action == "refit":
                return "/models/<name>/refit", \
                    (self._handle_refit if method == "POST" else None), \
                    {"name": name}
            if action == "update":
                return "/models/<name>/update", \
                    (self._handle_update if method == "POST" else None), \
                    {"name": name}
        if parts == ["v1", "predict"]:
            return "/v1/predict", \
                (self._handle_predict if method == "POST" else None), {}
        return "unmatched", None, {}

    # -------------------------------------------------------------- handlers
    async def _handle_index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json({
            "service": "repro-server",
            "models": self.router.names(),
            "endpoints": ["/healthz", "/readyz", "/metrics", "/models",
                          "/models/<name>", "/models/<name>/versions",
                          "POST /models/<name>/swap",
                          "POST /models/<name>/refit",
                          "POST /models/<name>/update", "POST /v1/predict"],
        })

    async def _handle_healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json({"status": "ok"})

    async def _handle_readyz(self, request: HttpRequest) -> HttpResponse:
        if not self._ready or self._shutting_down:
            return HttpResponse.json(
                {"status": "draining" if self._shutting_down
                 else "starting"}, status=503)
        return HttpResponse.json(
            {"status": "ready", "models": self.router.names()})

    async def _handle_metrics(self, request: HttpRequest) -> HttpResponse:
        text = await self._loop.run_in_executor(
            self._executor, global_registry().to_prometheus)
        return HttpResponse.text(text, content_type=_PROMETHEUS_CONTENT_TYPE)

    async def _handle_models(self, request: HttpRequest) -> HttpResponse:
        statuses = await self._loop.run_in_executor(
            self._executor, self.router.status_all)
        return HttpResponse.json({"models": statuses})

    async def _handle_model(self, request: HttpRequest,
                            name: str) -> HttpResponse:
        status = await self._loop.run_in_executor(
            self._executor, self.router.status, name)
        return HttpResponse.json(status)

    async def _handle_versions(self, request: HttpRequest,
                               name: str) -> HttpResponse:
        self.router.active_revision(name)  # 404 for unserved names
        entries = await self._loop.run_in_executor(
            self._executor, self.store.versions, name)
        return HttpResponse.json({"model": name, "versions": entries})

    async def _handle_swap(self, request: HttpRequest,
                           name: str) -> HttpResponse:
        payload = request.json()
        result = await self._loop.run_in_executor(
            self._executor,
            functools.partial(self.router.swap, name,
                              force=bool(payload.get("force", False)),
                              wait=bool(payload.get("wait", False))))
        return HttpResponse.json(result)

    async def _handle_refit(self, request: HttpRequest,
                            name: str) -> HttpResponse:
        payload = request.json()
        if "lam" not in payload:
            raise HttpError(400, 'refit requires a JSON body with "lam"')
        try:
            lam = float(payload["lam"])
        except (TypeError, ValueError):
            raise HttpError(400, f"bad lam value: {payload['lam']!r}")
        result = await self._loop.run_in_executor(
            self._executor, self.router.refit, name, lam)
        return HttpResponse.json(result)

    async def _handle_update(self, request: HttpRequest,
                             name: str) -> HttpResponse:
        """Streaming update: Woodbury ``partial_fit`` + hot-swap.

        Body: ``{"add": {"X": [[...]], "y": [...]}, "remove": [i, ...],
        "recompress": "auto"|"force"|"off", "wait": bool}`` — at least
        one of ``add``/``remove`` is required.
        """
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "update requires a JSON object body")
        add = payload.get("add")
        remove = payload.get("remove")
        if not add and not remove:
            raise HttpError(
                400, 'update requires "add" ({"X": ..., "y": ...}) '
                     'and/or "remove" ([indices])')
        X_new = y_new = None
        if add:
            if not isinstance(add, dict) or "X" not in add or "y" not in add:
                raise HttpError(
                    400, '"add" must be an object with "X" and "y"')
            try:
                X_new = np.asarray(add["X"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f'add.X is not numeric: {exc}')
            if X_new.ndim == 1:
                X_new = X_new[None, :]
            y_new = np.asarray(add["y"])
            if X_new.shape[0] > self.max_batch:
                raise HttpError(
                    413, f"update of {X_new.shape[0]} rows exceeds "
                         f"server.max_batch={self.max_batch}; split it")
        if remove is not None:
            try:
                remove = [int(i) for i in remove]
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f'"remove" must be a list of row '
                                     f'indices: {exc}')
        recompress = payload.get("recompress")
        if recompress is not None and recompress not in ("auto", "force",
                                                         "off"):
            raise HttpError(400, f'"recompress" must be "auto", "force" or '
                                 f'"off", got {recompress!r}')
        result = await self._loop.run_in_executor(
            self._executor,
            functools.partial(self.router.update, name, X_new=X_new,
                              y_new=y_new, remove=remove,
                              recompress=recompress,
                              wait=bool(payload.get("wait", False))))
        return HttpResponse.json(result)

    def _resolve_model_name(self, payload: Dict) -> str:
        name = payload.get("model")
        if name:
            return str(name)
        served = self.router.names()
        default = self.config.serving.model
        if default in served:
            return default
        if len(served) == 1:
            return served[0]
        raise HttpError(
            400, f'multiple models are served ({served}); name one with '
                 f'the "model" field')

    async def _handle_predict(self, request: HttpRequest) -> HttpResponse:
        if self._shutting_down:
            raise HttpError(503, "server is draining",
                            headers={"Retry-After": "1"})
        if self._inflight >= self.max_queue:
            # Admission control: shed load immediately rather than build
            # an unbounded backlog behind the dispatcher.
            self._m_rejected.inc()
            raise HttpError(
                429, f"server is at capacity ({self.max_queue} requests "
                     f"in flight)", headers={"Retry-After": "1"})
        payload = request.json()
        if not isinstance(payload, dict) or "inputs" not in payload:
            raise HttpError(400, 'predict requires a JSON body with "inputs"')
        try:
            X = np.asarray(payload["inputs"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"inputs is not numeric: {exc}")
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[0] == 0:
            raise HttpError(
                400, f"inputs must be a non-empty 2-D array of query "
                     f"points, got shape {X.shape}")
        if X.shape[0] > self.max_batch:
            raise HttpError(
                413, f"batch of {X.shape[0]} rows exceeds server.max_batch="
                     f"{self.max_batch}; split the request")
        name = self._resolve_model_name(payload)
        self._inflight += 1
        self._m_inflight.set(self._inflight)
        try:
            predictions = await self._loop.run_in_executor(
                self._executor, self.router.predict, name, X)
        finally:
            self._inflight -= 1
            self._m_inflight.set(self._inflight)
        return HttpResponse.json({
            "model": name,
            "version": self.router.active_revision(name),
            "count": int(X.shape[0]),
            "predictions": np.asarray(predictions).tolist(),
        })

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        addr = f"{self.host}:{self.port}" if self.port else "unbound"
        return f"ServerApp({addr}, models={self.router.names()})"
