"""``repro.server`` — asyncio HTTP serving tier with blue/green hot-swap.

The online half of the train-offline / serve-online split, as an actual
network daemon.  Three layers, all standard library (no web framework):

* :mod:`repro.server.http` — hand-rolled HTTP/1.1 over asyncio streams:
  request parsing with hard header/body limits, JSON/text responses,
  keep-alive.
* :mod:`repro.server.router` — :class:`ModelRouter`, multi-tenant
  blue/green routing over a :class:`repro.serving.ModelStore`: each
  served model has a versioned active generation (a micro-batching
  :class:`repro.serving.PredictionService` over a
  :class:`repro.serving.PredictionEngine` or sharded backend), and a
  hot-swap atomically flips new traffic to a freshly loaded revision
  while in-flight requests drain on the old one — zero dropped requests.
* :mod:`repro.server.app` — :class:`ServerApp`, the event loop: routes
  (``POST /v1/predict``, ``/healthz``, ``/readyz``, ``/metrics``,
  ``/models`` + per-model status/swap/refit), admission control that
  sheds load with ``429 Too Many Requests`` past ``server.max_queue``
  in-flight requests, and graceful ``SIGTERM`` drain.

Boot it with ``repro serve`` (see ``docs/serving.md`` for the HTTP API
and the ``server.*`` config knobs), or embed it::

    from repro.runtime import resolve_runtime_config
    from repro.server import ServerApp

    config = resolve_runtime_config(config_path="repro.toml")
    ServerApp(config).run()   # blocks; SIGTERM drains gracefully
"""

from .http import (HttpError, HttpRequest, HttpResponse, read_request,
                   render_response)
from .router import ModelNotServed, ModelRouter, RouterError
from .app import ServerApp

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "render_response",
    "ModelRouter",
    "ModelNotServed",
    "RouterError",
    "ServerApp",
]
