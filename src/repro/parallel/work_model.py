"""Operation-count estimates for the HSS / H algorithm phases.

The distributed cost model is driven by *measured structure*: given an
actual compressed :class:`repro.hss.HSSMatrix` (ranks and block sizes per
node) it derives the floating point work of each phase — sampling, HSS
compression, ULV factorization, solve — and, per tree level, the data
volumes that must cross the network when the tree is distributed over many
processes.  Constant factors follow the standard dense-kernel counts
(``2mnk`` for a GEMM of that shape, ``2mn^2`` for a QR of a tall matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


def _gemm_flops(m: int, n: int, k: int) -> float:
    """Flops of a dense matrix product (m x k) @ (k x n)."""
    return 2.0 * m * n * k


def _qr_flops(m: int, n: int) -> float:
    """Flops of a Householder QR of an m x n matrix (m >= n)."""
    m, n = max(m, n), min(m, n)
    return 2.0 * m * n * n - (2.0 / 3.0) * n ** 3


@dataclass
class HSSWorkEstimate:
    """Per-phase flop counts and per-level volumes of one HSS matrix."""

    #: total flops of the randomized compression (IDs + local GEMMs),
    #: excluding the sampling product itself
    compression_flops: float = 0.0
    #: total flops of the ULV factorization
    factorization_flops: float = 0.0
    #: total flops of one ULV solve (single right-hand side)
    solve_flops: float = 0.0
    #: flops of one exact (dense) sampling sweep  A @ R
    dense_sampling_flops: float = 0.0
    #: flops of one H-matrix accelerated sampling sweep
    hmatrix_sampling_flops: float = 0.0
    #: per-level total flops of the factorization (level 0 = root)
    factorization_flops_per_level: Dict[int, float] = field(default_factory=dict)
    #: per-level number of tree nodes
    nodes_per_level: Dict[int, int] = field(default_factory=dict)
    #: per-level bytes exchanged between children and parents
    communication_bytes_per_level: Dict[int, float] = field(default_factory=dict)

    @property
    def total_flops(self) -> float:
        return (self.compression_flops + self.factorization_flops +
                self.solve_flops + self.dense_sampling_flops)


def estimate_hss_work(hss, n_random: int = 64) -> HSSWorkEstimate:
    """Estimate phase flop counts for a compressed HSS matrix.

    Parameters
    ----------
    hss:
        A built :class:`repro.hss.HSSMatrix`.
    n_random:
        Number of random vectors of the sampling sweep (STRUMPACK's ``d``);
        used for the sampling and compression estimates.

    Returns
    -------
    HSSWorkEstimate
    """
    est = HSSWorkEstimate()
    tree = hss.tree
    n = tree.n
    est.dense_sampling_flops = _gemm_flops(n, n_random, n)

    for node_id, data in enumerate(hss.node_data):
        nd = tree.node(node_id)
        level = nd.level
        est.nodes_per_level[level] = est.nodes_per_level.get(level, 0) + 1

        ru = data.row_rank
        rv = data.col_rank
        if nd.is_leaf:
            n_loc = nd.size
        else:
            c1, c2 = nd.left, nd.right
            n_loc = hss.node_data[c1].row_rank + hss.node_data[c2].row_rank

        # --- compression: row ID of the (n_loc x n_random) local sample
        est.compression_flops += _qr_flops(n_random, n_loc) + _gemm_flops(
            n_loc, n_random, max(ru, 1))

        # --- ULV factorization at this node: QR of U (n_loc x ru), LQ of the
        # eliminated rows ((n_loc - ru) x n_loc), update of D and V.
        elim = max(n_loc - ru, 0)
        est_factor = (_qr_flops(n_loc, max(ru, 1)) +
                      _qr_flops(n_loc, max(elim, 1)) +
                      _gemm_flops(n_loc, n_loc, n_loc) +
                      _gemm_flops(n_loc, max(rv, 1), n_loc))
        est.factorization_flops += est_factor
        est.factorization_flops_per_level[level] = (
            est.factorization_flops_per_level.get(level, 0.0) + est_factor)

        # --- solve: triangular solves + small GEMVs
        est.solve_flops += 2.0 * n_loc * n_loc + 4.0 * n_loc * max(ru, 1)

        # --- communication: the reduced block a child ships to its parent is
        # (ru x ru) for D-hat plus (ru x rv) for V-hat plus the rhs slice.
        comm_bytes = 8.0 * (ru * ru + ru * rv + ru)
        est.communication_bytes_per_level[level] = (
            est.communication_bytes_per_level.get(level, 0.0) + comm_bytes)

    return est


def estimate_sampling_work(n: int, n_random: int, hmatrix=None) -> Dict[str, float]:
    """Flops of one sampling sweep with and without the H matrix.

    Parameters
    ----------
    n:
        Matrix dimension.
    n_random:
        Number of random vectors.
    hmatrix:
        Optional built :class:`repro.hmatrix.HMatrix`; when given, the
        H-accelerated sweep cost is derived from its actual block structure.

    Returns
    -------
    dict
        ``{"dense": flops, "hmatrix": flops}``.
    """
    dense = _gemm_flops(n, n_random, n)
    if hmatrix is None:
        return {"dense": dense, "hmatrix": dense}
    h_flops = 0.0
    for blk in hmatrix.blocks:
        m, k = blk.shape
        if blk.dense is not None:
            h_flops += _gemm_flops(m, n_random, k)
        else:
            r = blk.lowrank.rank
            h_flops += _gemm_flops(r, n_random, k) + _gemm_flops(m, n_random, r)
    return {"dense": dense, "hmatrix": h_flops}


def estimate_hmatrix_work(hmatrix) -> float:
    """Flops of the H-matrix construction (ACA on admissible blocks).

    ACA of an ``m x k`` block at rank ``r`` touches ``r`` rows and columns
    and performs ``O(r^2 (m + k))`` update work; dense blocks cost their
    assembly (one kernel evaluation per entry, charged as ~10 flops each
    for the Gaussian kernel's exp).
    """
    total = 0.0
    for blk in hmatrix.blocks:
        m, k = blk.shape
        if blk.dense is not None:
            total += 10.0 * m * k
        else:
            r = max(blk.lowrank.rank, 1)
            total += 10.0 * r * (m + k) + 2.0 * r * r * (m + k)
    return total
