"""Machine model: per-core compute rate and alpha-beta network parameters.

The distributed cost model charges computation at a sustained per-core
floating point rate and communication with the classic ``alpha + beta *
message_size`` model.  The default constants approximate a Cori Haswell
node (dual 16-core Xeon E5-2698 v3 at 2.3 GHz, Cray Aries interconnect):
they do not need to be exact — the strong-scaling *shape* (when
communication starts to dominate) is what the model reproduces, and the
benchmarks also report model times normalised to the 32-core point, which
removes the absolute constants entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Analytic machine description used by the distributed cost model.

    Parameters
    ----------
    flops_per_second_per_core:
        Sustained (not peak) double-precision rate of a single core for the
        BLAS-3 dominated kernels of the HSS/H algorithms.
    network_latency:
        Per-message latency in seconds (the ``alpha`` term).
    network_inverse_bandwidth:
        Seconds per byte of message payload (the ``beta`` term).
    cores_per_node:
        Number of cores sharing a network interface; intra-node messages
        are charged a fraction of the network cost.
    intra_node_discount:
        Multiplier applied to communication between cores of the same node.
    """

    flops_per_second_per_core: float = 1.2e10
    network_latency: float = 2.0e-6
    network_inverse_bandwidth: float = 1.0 / 6.0e9
    cores_per_node: int = 32
    intra_node_discount: float = 0.2

    def __post_init__(self) -> None:
        if self.flops_per_second_per_core <= 0:
            raise ValueError("flops_per_second_per_core must be positive")
        if self.network_latency < 0 or self.network_inverse_bandwidth < 0:
            raise ValueError("network parameters must be non-negative")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if not 0.0 < self.intra_node_discount <= 1.0:
            raise ValueError("intra_node_discount must be in (0, 1]")

    # ------------------------------------------------------------------ costs
    def compute_time(self, flops: float, cores: int = 1) -> float:
        """Time to execute ``flops`` floating point operations on ``cores``."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return flops / (self.flops_per_second_per_core * cores)

    def message_time(self, nbytes: float, intra_node: bool = False) -> float:
        """Time to send one message of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t = self.network_latency + nbytes * self.network_inverse_bandwidth
        return t * self.intra_node_discount if intra_node else t

    def allreduce_time(self, nbytes: float, cores: int) -> float:
        """Time of an all-reduce over ``cores`` ranks (tree algorithm)."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        import math
        rounds = max(1, int(math.ceil(math.log2(cores)))) if cores > 1 else 0
        return rounds * self.message_time(nbytes)

    def with_(self, **kwargs) -> "MachineModel":
        """Copy with some parameters replaced."""
        return replace(self, **kwargs)


#: Default machine: a Cori Haswell-like system (the paper's platform).
CORI_HASWELL = MachineModel()
