"""Shared-memory parallel execution of independent block tasks.

The kernel-block assembly (dense leaves of the H matrix, diagonal blocks of
the HSS structure, test-kernel rows at prediction time) and the per-level
node work of the HSS construction / ULV factorization consist of many
independent GEMM-sized tasks.  NumPy releases the GIL inside BLAS, so a
thread pool provides genuine speed-ups for these tasks without the pickling
overhead of process pools.  :class:`BlockExecutor` is a thin wrapper around
:class:`concurrent.futures.ThreadPoolExecutor` that

* holds **one persistent pool** for its lifetime (the training path issues
  many small per-level maps; spinning a pool up and down per call is pure
  overhead),
* preserves task order, so parallel and serial runs produce bitwise
  identical results for deterministic tasks,
* propagates exceptions **eagerly**: the first failing task cancels all
  still-pending tasks and its exception is re-raised promptly,
* degrades to serial execution when a single worker is requested (or the
  task list is tiny), and
* is a context manager (``with BlockExecutor(4) as ex: ...``) whose exit
  shuts the pool down; :meth:`shutdown` can also be called explicitly, and
  a later :meth:`map` transparently re-creates the pool.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """Number of workers used when none is specified.

    Prefers the CPU affinity mask (``os.sched_getaffinity``) over
    ``os.cpu_count()``: under cgroup / taskset limits (CI runners,
    containers) the process may be pinned to far fewer cores than the
    machine exposes, and oversubscribing threads on those cores only adds
    contention.  Falls back to ``os.cpu_count()`` on platforms without
    affinity support (macOS, Windows).
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = 0
    if affinity > 0:
        return affinity
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers`` option value to a concrete thread count.

    ``None`` consults the ``REPRO_WORKERS`` environment variable (the CI
    matrix sets it to run the whole suite through the threaded paths) and
    defaults to 1 — serial — when unset, keeping single-threaded runs
    deterministic-by-default.  The variable must hold a positive integer;
    anything else (garbage, zero, negative) raises a :class:`ValueError`
    naming the variable instead of being silently ignored.  An explicit
    ``0`` argument means "all visible cores" per
    :func:`default_worker_count`; positive values are used as given and
    explicit negative values are rejected.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"invalid REPRO_WORKERS={env!r}: must be a positive "
                f"integer (unset it for the serial default)") from None
        if value <= 0:
            raise ValueError(
                f"invalid REPRO_WORKERS={env!r}: must be a positive "
                f"integer (pass workers=0 explicitly for all cores)")
        return value
    workers = int(workers)
    if workers < 0:
        raise ValueError("workers must be >= 0 or None")
    if workers == 0:
        return default_worker_count()
    return workers


class BlockExecutor:
    """Ordered, fail-fast parallel map over independent tasks.

    Parameters
    ----------
    workers:
        Number of worker threads; ``None`` uses all visible cores (see
        :func:`default_worker_count`), ``1`` runs serially (useful for
        debugging and for deterministic profiling).
    serial_threshold:
        Task counts at or below this threshold run serially regardless of
        the worker count (task submission would dominate).

    Notes
    -----
    The underlying :class:`~concurrent.futures.ThreadPoolExecutor` is
    created lazily on the first parallel :meth:`map` and reused by every
    subsequent call until :meth:`shutdown` (or context-manager exit).
    Submitting from multiple threads is safe; pool creation is guarded by a
    lock.
    """

    def __init__(self, workers: Optional[int] = None, serial_threshold: int = 2):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_worker_count()
        self.serial_threshold = int(serial_threshold)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-block")
            return self._pool

    def shutdown(self, wait: bool = True) -> None:
        """Join and release the worker threads (idempotent).

        A later :meth:`map` call lazily re-creates the pool, so a shut-down
        executor remains usable — shutdown just bounds thread lifetime.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "BlockExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def active(self) -> bool:
        """Whether a live thread pool is currently held."""
        return self._pool is not None

    # ------------------------------------------------------------------- map
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task, returning results in task order.

        If any task raises, all not-yet-started tasks are cancelled and the
        failure is re-raised immediately — remaining queued work is not
        executed first.  When several tasks fail near-simultaneously, the
        earliest *observed* failure in task order is raised (a slower
        failing task may still be running and lose the race).
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= self.serial_threshold:
            return [fn(t) for t in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, t) for t in tasks]
        try:
            wait(futures, return_when=FIRST_EXCEPTION)
            error: Optional[BaseException] = None
            for future in futures:
                if future.done() and not future.cancelled():
                    exc = future.exception()
                    if exc is not None:
                        error = exc
                        break
            if error is not None:
                raise error
            return [future.result() for future in futures]
        finally:
            # On failure (or an interrupt reaching the main thread) cancel
            # whatever has not started yet so the pool drains promptly.
            for future in futures:
                if not future.done():
                    future.cancel()

    def starmap(self, fn: Callable[..., R], tasks: Sequence[tuple]) -> List[R]:
        """Like :meth:`map` but unpacks each task tuple into arguments."""
        return self.map(lambda args: fn(*args), tasks)


#: Shared serial executor: ``workers == 1`` never creates a thread pool, so
#: one instance can safely serve as the default everywhere.
SERIAL_EXECUTOR = BlockExecutor(workers=1)


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T],
                 workers: Optional[int] = None) -> List[R]:
    """One-shot convenience wrapper around :class:`BlockExecutor`."""
    with BlockExecutor(workers=workers) as executor:
        return executor.map(fn, list(tasks))
