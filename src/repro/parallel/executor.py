"""Shared-memory parallel execution of independent block tasks.

The kernel-block assembly (dense leaves of the H matrix, diagonal blocks of
the HSS structure, test-kernel rows at prediction time) consists of many
independent GEMM-sized tasks.  NumPy releases the GIL inside BLAS, so a
thread pool provides genuine speed-ups for these tasks without the pickling
overhead of process pools.  :class:`BlockExecutor` is a thin wrapper around
:class:`concurrent.futures.ThreadPoolExecutor` that preserves task order,
propagates exceptions eagerly and degrades to serial execution when a
single worker is requested (or the task list is tiny).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """Number of workers used when none is specified (all visible cores)."""
    return max(1, os.cpu_count() or 1)


class BlockExecutor:
    """Ordered parallel map over independent tasks.

    Parameters
    ----------
    workers:
        Number of worker threads; ``None`` uses all visible cores, ``1``
        runs serially (useful for debugging and for deterministic
        profiling).
    serial_threshold:
        Task counts at or below this threshold run serially regardless of
        the worker count (thread-pool startup would dominate).
    """

    def __init__(self, workers: Optional[int] = None, serial_threshold: int = 2):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_worker_count()
        self.serial_threshold = int(serial_threshold)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task, returning results in task order."""
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= self.serial_threshold:
            return [fn(t) for t in tasks]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, tasks))

    def starmap(self, fn: Callable[..., R], tasks: Sequence[tuple]) -> List[R]:
        """Like :meth:`map` but unpacks each task tuple into arguments."""
        return self.map(lambda args: fn(*args), tasks)


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T],
                 workers: Optional[int] = None) -> List[R]:
    """One-shot convenience wrapper around :class:`BlockExecutor`."""
    return BlockExecutor(workers=workers).map(fn, list(tasks))
