"""Parallel execution substrate and distributed-memory performance model.

The paper's large-scale results (Table 4, Figure 8) come from a distributed
memory MPI code running on up to 1,024 cores of NERSC's Cori machine.  This
environment has neither MPI nor 1,024 cores, so the package provides two
complementary pieces (see DESIGN.md for the substitution rationale):

* :class:`BlockExecutor` — a real shared-memory thread pool used to
  assemble kernel blocks and H-matrix leaves in parallel (NumPy releases
  the GIL inside BLAS, so threads give genuine speedups for these
  GEMM-dominated tasks);
* :class:`MachineModel` / :class:`DistributedCostModel` /
  :func:`simulate_strong_scaling` — an analytic alpha–beta performance
  model of the distributed HSS/H algorithms, driven by the *measured*
  per-node operation counts of our own implementation, which reproduces
  the strong-scaling behaviour of the paper's Figure 8 and the per-phase
  timing breakdown of Table 4.
"""

from .machine import MachineModel, CORI_HASWELL
from .work_model import (
    HSSWorkEstimate,
    estimate_hss_work,
    estimate_hmatrix_work,
    estimate_sampling_work,
)
from .cost_model import DistributedCostModel, PhaseTimes
from .strong_scaling import simulate_strong_scaling, StrongScalingPoint
from .executor import (BlockExecutor, SERIAL_EXECUTOR, default_worker_count,
                       parallel_map, resolve_workers)

__all__ = [
    "MachineModel",
    "CORI_HASWELL",
    "HSSWorkEstimate",
    "estimate_hss_work",
    "estimate_hmatrix_work",
    "estimate_sampling_work",
    "DistributedCostModel",
    "PhaseTimes",
    "simulate_strong_scaling",
    "StrongScalingPoint",
    "BlockExecutor",
    "SERIAL_EXECUTOR",
    "default_worker_count",
    "resolve_workers",
    "parallel_map",
]
