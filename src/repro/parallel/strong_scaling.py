"""Strong-scaling simulation (Figure 8 of the paper).

Given the work estimate of an actually-built HSS matrix, sweep the core
count and record the modelled factorization time.  The expected behaviour
is the one shown in the paper: near-linear scaling while every process
still owns many tree nodes, flattening once communication and the
serialised top levels of the tree dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .cost_model import DistributedCostModel, PhaseTimes
from .machine import CORI_HASWELL, MachineModel
from .work_model import HSSWorkEstimate


@dataclass
class StrongScalingPoint:
    """One (cores, phase times) point of the strong-scaling sweep."""

    cores: int
    times: PhaseTimes

    @property
    def factorization_time(self) -> float:
        return self.times.factorization

    @property
    def parallel_efficiency(self) -> float:
        """Filled in by :func:`simulate_strong_scaling` relative to the first point."""
        return getattr(self, "_efficiency", 1.0)


def simulate_strong_scaling(
    work: HSSWorkEstimate,
    core_counts: Iterable[int] = (32, 64, 128, 256, 512, 1024),
    machine: MachineModel = CORI_HASWELL,
    n_sampling_sweeps: int = 1,
    hmatrix_flops: float = 0.0,
    hmatrix_sampling_flops: Optional[float] = None,
) -> List[StrongScalingPoint]:
    """Sweep the core count and model the phase times at each point.

    Returns the points in increasing core order; each point's
    ``parallel_efficiency`` is the factorization speed-up relative to the
    smallest core count divided by the ideal speed-up.
    """
    cores_list = sorted(set(int(c) for c in core_counts))
    if not cores_list or cores_list[0] < 1:
        raise ValueError("core_counts must contain positive integers")
    model = DistributedCostModel(work, machine=machine,
                                 n_sampling_sweeps=n_sampling_sweeps,
                                 hmatrix_flops=hmatrix_flops,
                                 hmatrix_sampling_flops=hmatrix_sampling_flops)
    points: List[StrongScalingPoint] = []
    for cores in cores_list:
        points.append(StrongScalingPoint(cores=cores, times=model.phase_times(cores)))
    base = points[0]
    for pt in points:
        ideal = pt.cores / base.cores
        actual = (base.factorization_time / pt.factorization_time
                  if pt.factorization_time > 0 else float("inf"))
        pt._efficiency = actual / ideal if ideal > 0 else 1.0
    return points
