"""Distributed-memory cost model for the HSS/H kernel solver phases.

The model follows the parallelisation described for STRUMPACK's dense HSS
code (Rouet et al., TOMS 2016 — reference [14] of the paper): the HSS tree
is distributed over the processes level by level.  Near the leaves there
are many more nodes than processes and the work is perfectly parallel; near
the root only a few (large) nodes remain, so the parallelism degenerates
and every level boundary costs one round of child-to-parent communication.
That tension — abundant leaf-level parallelism, serialised root levels,
per-level communication — is exactly what produces the strong-scaling
shape of the paper's Figure 8 ("At large core count, the number of degrees
of freedom per core decreases dramatically, while communication time starts
to dominate").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .machine import CORI_HASWELL, MachineModel
from .work_model import HSSWorkEstimate


@dataclass
class PhaseTimes:
    """Modelled wall-clock seconds of each phase at a given core count."""

    cores: int
    h_construction: float = 0.0
    sampling: float = 0.0
    hss_other: float = 0.0
    factorization: float = 0.0
    solve: float = 0.0

    @property
    def hss_construction(self) -> float:
        """Total HSS construction time (sampling + other), as in Table 4."""
        return self.sampling + self.hss_other

    @property
    def total(self) -> float:
        return (self.h_construction + self.sampling + self.hss_other +
                self.factorization + self.solve)

    def as_dict(self) -> Dict[str, float]:
        return {
            "cores": self.cores,
            "h_construction": self.h_construction,
            "hss_construction": self.hss_construction,
            "sampling": self.sampling,
            "hss_other": self.hss_other,
            "factorization": self.factorization,
            "solve": self.solve,
        }


class DistributedCostModel:
    """Predict distributed phase times from per-level work estimates.

    Parameters
    ----------
    work:
        The :class:`HSSWorkEstimate` of the (serially built) HSS matrix.
    machine:
        Machine parameters (defaults to the Cori-Haswell-like model).
    n_sampling_sweeps:
        How many sampling sweeps the adaptive construction performed.
    hmatrix_flops:
        Flops of the H-matrix construction (0 disables that phase).
    hmatrix_sampling_flops:
        Flops of one H-accelerated sampling sweep; when non-zero it is used
        in place of the dense sampling cost.
    """

    def __init__(self,
                 work: HSSWorkEstimate,
                 machine: MachineModel = CORI_HASWELL,
                 n_sampling_sweeps: int = 1,
                 hmatrix_flops: float = 0.0,
                 hmatrix_sampling_flops: Optional[float] = None):
        if n_sampling_sweeps < 1:
            raise ValueError("n_sampling_sweeps must be >= 1")
        self.work = work
        self.machine = machine
        self.n_sampling_sweeps = int(n_sampling_sweeps)
        self.hmatrix_flops = float(hmatrix_flops)
        self.hmatrix_sampling_flops = hmatrix_sampling_flops

    # ------------------------------------------------------------- internals
    def _tree_phase_time(self, flops_per_level: Dict[int, float],
                         cores: int) -> float:
        """Level-by-level execution time of a tree-structured phase.

        Levels with at least as many nodes as processes are embarrassingly
        parallel and communication-free (every subtree lives inside one
        process).  Levels above that cut have fewer nodes than processes:
        their work is shared with limited efficiency (parallel BLAS inside a
        node, modelled with a square-root law) and every node pays one
        child-to-parent network exchange per level.
        """
        machine = self.machine
        total = 0.0
        for level, flops in sorted(flops_per_level.items(), reverse=True):
            nodes = max(self.work.nodes_per_level.get(level, 1), 1)
            active = min(cores, nodes)
            # Work of the level is spread over the active processes; each
            # node's work can additionally use the idle cores once fewer
            # nodes than cores remain (STRUMPACK switches to parallel BLAS),
            # but with limited efficiency — model that with a sqrt law.
            per_node_cores = max(1, int((cores / nodes) ** 0.5)) if nodes < cores else 1
            total += machine.compute_time(flops, cores=active * per_node_cores)
            # Levels above the subtree-per-process cut pay one network round
            # of child-to-parent exchanges (message size: the reduced blocks
            # of one node).
            comm_bytes = self.work.communication_bytes_per_level.get(level, 0.0)
            if cores > 1 and nodes < cores and comm_bytes > 0:
                total += 2.0 * machine.message_time(comm_bytes / nodes)
        return total

    # ----------------------------------------------------------------- phases
    def sampling_time(self, cores: int) -> float:
        """Time of the randomized sampling sweeps at ``cores`` processes."""
        flops = (self.hmatrix_sampling_flops
                 if self.hmatrix_sampling_flops is not None
                 else self.work.dense_sampling_flops)
        flops *= self.n_sampling_sweeps
        t = self.machine.compute_time(flops, cores=cores)
        # The sample matrix S (n x d) is redistributed once per sweep.
        n_bytes = 8.0 * flops ** 0.5  # ~ O(n d) bytes, flops ~ n^2 d
        t += self.machine.allreduce_time(n_bytes, cores) * self.n_sampling_sweeps
        return t

    def phase_times(self, cores: int) -> PhaseTimes:
        """Full phase breakdown at the given core count (Table 4 rows)."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        machine = self.machine
        times = PhaseTimes(cores=cores)
        if self.hmatrix_flops > 0:
            # The paper's prototype H code scales poorly ("only capable of
            # effectively using a subset of the processes"); cap its useful
            # parallelism at one node.
            h_cores = min(cores, machine.cores_per_node)
            times.h_construction = machine.compute_time(self.hmatrix_flops,
                                                        cores=h_cores)
        times.sampling = self.sampling_time(cores)
        times.hss_other = self._tree_phase_time(
            {lvl: f for lvl, f in self.work.factorization_flops_per_level.items()},
            cores) * (self.work.compression_flops /
                      max(self.work.factorization_flops, 1.0))
        times.factorization = self._tree_phase_time(
            self.work.factorization_flops_per_level, cores)
        solve_per_level = {
            lvl: self.work.solve_flops * f / max(self.work.factorization_flops, 1.0)
            for lvl, f in self.work.factorization_flops_per_level.items()}
        times.solve = self._tree_phase_time(solve_per_level, cores)
        return times
