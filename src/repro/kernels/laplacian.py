"""Laplacian (exponential) kernel.

``K(x, y) = exp(-||x - y|| / h)``

Not used in the paper's headline experiments but provided as a drop-in
alternative: it shares the radial structure exploited by the clustering
preprocessing and the hierarchical formats, and exercises the code path
where the kernel needs the distance itself rather than its square.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_positive
from .base import Kernel, register_kernel


@register_kernel("laplacian")
class LaplacianKernel(Kernel):
    """Laplacian kernel with bandwidth ``h``."""

    def __init__(self, h: float = 1.0):
        self.h = check_positive(h, "h")

    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:
        d = np.sqrt(np.asarray(sq_dists, dtype=np.float64))
        return np.exp(-d / self.h)
