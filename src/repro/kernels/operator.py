"""Matrix-free kernel operators: the "partially matrix-free interface".

The HSS construction in STRUMPACK needs two things from the matrix being
compressed (Section 1.1 of the paper):

1. a black-box matrix times (multiple) vector multiplication routine, used
   by the randomized sampling phase, and
2. access to selected elements of the matrix, used to form the diagonal
   blocks ``D_i`` and the coupling blocks ``B_ij``.

:class:`KernelOperator` provides exactly that interface for a kernel matrix
defined by a point set and a radial kernel, without ever materialising the
full ``n x n`` matrix.  :class:`DenseMatrixOperator` wraps an explicit dense
matrix behind the same interface (used for testing and for the exact
baseline), and :class:`ShiftedKernelOperator` adds the ridge shift
``+ lambda I`` required by kernel ridge regression.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from ..obs import global_registry
from ..utils.validation import check_array_2d, check_non_negative
from .base import Kernel
from .distance import blockwise_sq_dists, pairwise_sq_dists


class KernelOperator:
    """Implicit representation of the kernel matrix of a point set.

    Parameters
    ----------
    X:
        Data points, shape ``(n, d)``.  The operator represents
        ``K[i, j] = kernel(X[i], X[j])``.
    kernel:
        A :class:`repro.kernels.Kernel` instance.
    block_size:
        Row-block size used by the tiled matvec; bounds peak memory at
        ``O(block_size * n)``.
    executor:
        Optional shared :class:`repro.parallel.BlockExecutor`.  When set
        together with ``col_tile``, every row block's product is split
        into column tiles evaluated as independent tasks on the executor
        (kernel tile assembly + partial GEMM per task) and the returned
        partials are accumulated **in tile order** on the calling thread —
        so any worker count produces bitwise-identical results to the
        serial tiled sweep.
    col_tile:
        Column-tile size of the tiled ``matmat``.  ``None`` (default)
        keeps the historical one-big-GEMM-per-row-block sweep; a positive
        value fixes the tile geometry independently of the worker count
        (the decomposition, and hence the floating-point accumulation
        order, never depends on how many threads execute it).

    Notes
    -----
    ``matmat`` cost is ``O(n^2 k / block)`` GEMM work.  For large ``n`` the
    H-matrix sampler (:class:`repro.hmatrix.HMatrixSampler`) should be used
    instead, which is the paper's main engineering contribution.
    """

    def __init__(self, X: np.ndarray, kernel: Kernel, block_size: int = 2048,
                 executor=None, col_tile: Optional[int] = None):
        self.X = check_array_2d(X, "X")
        self.kernel = kernel
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if col_tile is not None and col_tile < 1:
            raise ValueError("col_tile must be >= 1 or None")
        self.block_size = int(block_size)
        self.executor = executor
        self.col_tile = None if col_tile is None else int(col_tile)
        #: number of kernel element evaluations performed through ``block``
        self.element_evaluations = 0
        #: number of full matrix-vector style sweeps performed
        self.matvec_sweeps = 0
        # The counters are mutated from BlockExecutor worker threads during
        # parallel block assembly; ``+=`` on an int is not atomic, so updates
        # go through this lock.
        self._counter_lock = threading.Lock()
        reg = global_registry()
        self._m_elements = reg.counter(
            "repro_kernel_element_evaluations_total",
            "Kernel matrix entries evaluated through element extraction")
        self._m_sweeps = reg.counter(
            "repro_kernel_matvec_sweeps_total",
            "Full matrix-vector style sweeps over the kernel operator")

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple:
        n = self.X.shape[0]
        return (n, n)

    @property
    def n(self) -> int:
        """Number of data points (matrix dimension)."""
        return self.X.shape[0]

    @property
    def dtype(self):
        return np.dtype(np.float64)

    # -------------------------------------------------------------- elements
    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Extract the sub-block ``K[rows, cols]`` (element extraction)."""
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        with self._counter_lock:
            self.element_evaluations += int(rows.size) * int(cols.size)
        self._m_elements.inc(int(rows.size) * int(cols.size))
        return self.kernel.block(self.X, rows, cols)

    def diag(self) -> np.ndarray:
        """Diagonal of the kernel matrix (all ones for normalized kernels)."""
        return np.full(self.n, self.kernel.diagonal_value(), dtype=np.float64)

    def element(self, i: int, j: int) -> float:
        """Single entry ``K[i, j]``."""
        return float(self.block(np.array([i]), np.array([j]))[0, 0])

    # --------------------------------------------------------------- products
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Compute ``K @ v`` for a single vector without forming ``K``."""
        v = np.asarray(v, dtype=np.float64)
        if v.ndim == 1:
            return self.matmat(v[:, None]).ravel()
        raise ValueError("matvec expects a 1-D vector; use matmat for blocks")

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """Compute ``K.T @ v``; equal to :meth:`matvec` because K is symmetric."""
        return self.matvec(v)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """Compute ``K @ V`` with a row-blocked sweep (``V`` is ``(n, k)``).

        With :attr:`col_tile` set, each row block is further split into
        column tiles; every ``(row block, column tile)`` kernel tile plus
        its partial GEMM runs as an independent task on :attr:`executor`
        (serially when no executor is attached), and the partial products
        are summed in fixed tile order — the result is bitwise identical
        for any worker count because the tile geometry and the
        accumulation order are both independent of the executor.
        """
        V = np.asarray(V, dtype=np.float64)
        if V.ndim != 2 or V.shape[0] != self.n:
            raise ValueError(f"V must have shape ({self.n}, k), got {V.shape}")
        if self.col_tile is None:
            out = np.empty((self.n, V.shape[1]), dtype=np.float64)
            for rows, sq in blockwise_sq_dists(self.X, block_size=self.block_size):
                out[rows] = self.kernel._evaluate_sq(sq) @ V
        else:
            out = self._matmat_tiled(V)
        with self._counter_lock:
            self.matvec_sweeps += 1
        self._m_sweeps.inc()
        return out

    def _matmat_tiled(self, V: np.ndarray) -> np.ndarray:
        """Column-tiled ``K @ V``: one task per (row block, column tile)."""
        from ..parallel.executor import SERIAL_EXECUTOR

        n = self.n
        tile = self.col_tile
        starts = list(range(0, n, tile))

        def partial(task):
            r0, r1, c0, c1 = task
            sq = pairwise_sq_dists(self.X[r0:r1], self.X[c0:c1])
            return self.kernel._evaluate_sq(sq) @ V[c0:c1]

        ex = self.executor if self.executor is not None else SERIAL_EXECUTOR
        out = np.zeros((n, V.shape[1]), dtype=np.float64)
        for r0 in range(0, n, self.block_size):
            r1 = min(r0 + self.block_size, n)
            tasks = [(r0, r1, c0, min(c0 + tile, n)) for c0 in starts]
            partials = ex.map(partial, tasks)
            # Fixed-order reduction on the calling thread: the sum over
            # column tiles is committed left to right regardless of which
            # worker produced each partial.
            acc = partials[0]
            for block in partials[1:]:
                acc = acc + block
            out[r0:r1] = acc
        return out

    def rmatmat(self, V: np.ndarray) -> np.ndarray:
        """Compute ``K.T @ V``; equal to :meth:`matmat` because K is symmetric."""
        return self.matmat(V)

    def to_dense(self) -> np.ndarray:
        """Materialise the full kernel matrix (testing / small problems only)."""
        return self.kernel.matrix(self.X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(n={self.n}, d={self.X.shape[1]}, "
                f"kernel={self.kernel!r})")


class ShiftedKernelOperator(KernelOperator):
    """Kernel operator with a diagonal ridge shift: ``K + lambda I``.

    This is the matrix actually factored in Step 2 of Algorithm 1.  The
    shift only affects the diagonal, so ``block`` adds ``lambda`` on entries
    with equal row and column index and ``matmat`` adds ``lambda * V``.
    """

    def __init__(self, X: np.ndarray, kernel: Kernel, lam: float,
                 block_size: int = 2048, executor=None,
                 col_tile: Optional[int] = None):
        super().__init__(X, kernel, block_size=block_size, executor=executor,
                         col_tile=col_tile)
        self.lam = check_non_negative(lam, "lam")

    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        B = super().block(rows, cols)
        if self.lam != 0.0:
            eq = rows[:, None] == cols[None, :]
            if eq.any():
                B = B + self.lam * eq
        return B

    def diag(self) -> np.ndarray:
        return super().diag() + self.lam

    def matmat(self, V: np.ndarray) -> np.ndarray:
        return super().matmat(V) + self.lam * np.asarray(V, dtype=np.float64)

    def to_dense(self) -> np.ndarray:
        K = super().to_dense()
        K[np.diag_indices_from(K)] += self.lam
        return K


class DenseMatrixOperator:
    """Wrap an explicit dense matrix behind the partially matrix-free interface.

    Useful for unit tests (compress an arbitrary matrix) and as the exact
    baseline in the benchmark harness.
    """

    def __init__(self, A: np.ndarray):
        A = np.ascontiguousarray(A, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be a square matrix, got shape {A.shape}")
        self.A = A
        self.element_evaluations = 0
        self.matvec_sweeps = 0
        self._counter_lock = threading.Lock()

    @property
    def shape(self) -> tuple:
        return self.A.shape

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def dtype(self):
        return self.A.dtype

    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        with self._counter_lock:
            self.element_evaluations += int(rows.size) * int(cols.size)
        return self.A[np.ix_(rows, cols)]

    def diag(self) -> np.ndarray:
        return np.diag(self.A).copy()

    def element(self, i: int, j: int) -> float:
        return float(self.A[i, j])

    def _count_sweep(self) -> None:
        with self._counter_lock:
            self.matvec_sweeps += 1

    def matvec(self, v: np.ndarray) -> np.ndarray:
        self._count_sweep()
        return self.A @ np.asarray(v, dtype=np.float64)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        self._count_sweep()
        return self.A.T @ np.asarray(v, dtype=np.float64)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        self._count_sweep()
        return self.A @ np.asarray(V, dtype=np.float64)

    def rmatmat(self, V: np.ndarray) -> np.ndarray:
        self._count_sweep()
        return self.A.T @ np.asarray(V, dtype=np.float64)

    def to_dense(self) -> np.ndarray:
        return self.A.copy()
