"""Kernel functions and matrix-free kernel operators.

This package implements the kernels used in the paper (the Gaussian radial
basis function of Eq. (1.1) is the primary one) together with the *partially
matrix-free* interface that the HSS and H-matrix builders require: selected
element / block extraction plus matrix-vector products, without ever storing
the full ``n x n`` kernel matrix.
"""

from .base import Kernel, get_kernel, KERNEL_REGISTRY
from .gaussian import GaussianKernel
from .laplacian import LaplacianKernel
from .matern import Matern32Kernel, Matern52Kernel
from .polynomial import PolynomialKernel, LinearKernel
from .distance import (
    pairwise_sq_dists,
    pairwise_dists,
    blockwise_sq_dists,
    row_sq_dists,
)
from .operator import KernelOperator, ShiftedKernelOperator, DenseMatrixOperator

__all__ = [
    "Kernel",
    "get_kernel",
    "KERNEL_REGISTRY",
    "GaussianKernel",
    "LaplacianKernel",
    "Matern32Kernel",
    "Matern52Kernel",
    "PolynomialKernel",
    "LinearKernel",
    "pairwise_sq_dists",
    "pairwise_dists",
    "blockwise_sq_dists",
    "row_sq_dists",
    "KernelOperator",
    "ShiftedKernelOperator",
    "DenseMatrixOperator",
]
