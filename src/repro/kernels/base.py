"""Kernel function abstraction.

A :class:`Kernel` maps squared Euclidean distances to similarity scores.
Keeping the interface in terms of *squared* distances lets every kernel
reuse the same GEMM-based distance computation and avoids redundant
square roots for kernels (such as the Gaussian) that only need ``r^2``.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Type

import numpy as np

from .distance import pairwise_sq_dists, row_sq_dists


class Kernel(abc.ABC):
    """Abstract base class for radial kernels ``K(x, y) = f(||x - y||)``.

    Subclasses implement :meth:`_evaluate_sq`, mapping an array of squared
    distances to kernel values.  All public entry points (full matrices,
    rectangular blocks, single rows) are provided here.
    """

    #: short identifier used by :func:`get_kernel`
    name: str = "abstract"

    @abc.abstractmethod
    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:
        """Map squared distances to kernel values (vectorised)."""

    # ------------------------------------------------------------------ API
    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense kernel matrix between rows of ``X`` and rows of ``Y``."""
        return self.matrix(X, Y)

    def matrix(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense kernel matrix ``K[i, j] = K(X[i], Y[j])``."""
        return self._evaluate_sq(pairwise_sq_dists(X, Y))

    def block(self, X: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Sub-block ``K[rows, cols]`` of the kernel matrix of ``X``.

        This is the element-extraction half of the partially matrix-free
        interface: only ``len(rows) * len(cols)`` kernel evaluations are
        performed.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        return self._evaluate_sq(pairwise_sq_dists(X[rows], X[cols]))

    def row(self, x: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Kernel values between a single point ``x`` and all rows of ``Y``.

        Used at prediction time (Step 3 of Algorithm 1) to form the kernel
        vector ``K'(i)`` of a test point against the training set.
        """
        return self._evaluate_sq(row_sq_dists(x, Y))

    def diagonal_value(self) -> float:
        """Value of ``K(x, x)`` (1.0 for all normalized radial kernels)."""
        return float(self._evaluate_sq(np.zeros(1))[0])

    # ---------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.__dict__.items()))
        return f"{type(self).__name__}({params})"


KERNEL_REGISTRY: Dict[str, Callable[..., Kernel]] = {}


def register_kernel(name: str) -> Callable[[Type[Kernel]], Type[Kernel]]:
    """Class decorator adding a kernel class to :data:`KERNEL_REGISTRY`."""

    def deco(cls: Type[Kernel]) -> Type[Kernel]:
        KERNEL_REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_kernel(name: str, **params) -> Kernel:
    """Instantiate a kernel by name.

    Parameters
    ----------
    name:
        One of ``"gaussian"``, ``"laplacian"``, ``"matern32"``,
        ``"matern52"``, ``"polynomial"``, ``"linear"``.
    **params:
        Passed to the kernel constructor (e.g. ``h=1.5`` for the Gaussian).
    """
    try:
        cls = KERNEL_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(KERNEL_REGISTRY))
        raise ValueError(f"unknown kernel {name!r}; known kernels: {known}") from exc
    return cls(**params)
