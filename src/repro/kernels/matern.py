"""Matérn kernels (nu = 3/2 and nu = 5/2).

These are standard kernels in Gaussian-process regression with the same
radial, exponentially decaying structure as the Gaussian kernel, so the
clustering-based reordering and hierarchical compression studied in the
paper apply unchanged.  They are included as extension kernels and are
exercised by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_positive
from .base import Kernel, register_kernel

_SQRT3 = np.sqrt(3.0)
_SQRT5 = np.sqrt(5.0)


@register_kernel("matern32")
class Matern32Kernel(Kernel):
    """Matérn kernel with smoothness ``nu = 3/2`` and length scale ``h``."""

    def __init__(self, h: float = 1.0):
        self.h = check_positive(h, "h")

    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:
        r = np.sqrt(np.asarray(sq_dists, dtype=np.float64)) / self.h
        return (1.0 + _SQRT3 * r) * np.exp(-_SQRT3 * r)


@register_kernel("matern52")
class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness ``nu = 5/2`` and length scale ``h``."""

    def __init__(self, h: float = 1.0):
        self.h = check_positive(h, "h")

    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:
        sq = np.asarray(sq_dists, dtype=np.float64)
        r = np.sqrt(sq) / self.h
        return (1.0 + _SQRT5 * r + (5.0 / 3.0) * sq / (self.h * self.h)) * np.exp(-_SQRT5 * r)
