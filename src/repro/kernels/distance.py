"""Blocked pairwise distance computations.

All kernels in this library are functions of the Euclidean distance between
data points, so the distance computation is the single hottest primitive in
kernel-matrix assembly.  It is implemented with the classic
``||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y`` expansion, which turns the whole
computation into one GEMM plus rank-1 updates — the vectorised formulation
recommended for NumPy-based HPC code.

Negative values caused by floating point cancellation are clipped to zero so
that downstream ``sqrt``/``exp`` calls never see invalid inputs.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def _sq_norms(X: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms."""
    return np.einsum("ij,ij->i", X, X)


def pairwise_sq_dists(X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between rows of X and Y.

    Parameters
    ----------
    X:
        Array of shape ``(n, d)``.
    Y:
        Array of shape ``(m, d)``; defaults to ``X`` (symmetric case).

    Returns
    -------
    numpy.ndarray
        Array ``D`` of shape ``(n, m)`` with ``D[i, j] = ||X[i] - Y[j]||^2``.
    """
    X = np.asarray(X, dtype=np.float64)
    if Y is None or Y is X:
        sq = _sq_norms(X)
        D = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
        np.maximum(D, 0.0, out=D)
        np.fill_diagonal(D, 0.0)
        return D
    Y = np.asarray(Y, dtype=np.float64)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must have the same dimension, got {X.shape[1]} and {Y.shape[1]}")
    D = _sq_norms(X)[:, None] + _sq_norms(Y)[None, :] - 2.0 * (X @ Y.T)
    np.maximum(D, 0.0, out=D)
    return D


def pairwise_dists(X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense matrix of Euclidean distances between rows of X and Y."""
    return np.sqrt(pairwise_sq_dists(X, Y))


def row_sq_dists(x: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Squared distances from a single point ``x`` to every row of ``Y``."""
    x = np.asarray(x, dtype=np.float64).ravel()
    Y = np.asarray(Y, dtype=np.float64)
    if x.shape[0] != Y.shape[1]:
        raise ValueError(
            f"x has dimension {x.shape[0]} but Y has dimension {Y.shape[1]}")
    diff = Y - x[None, :]
    return np.einsum("ij,ij->i", diff, diff)


def blockwise_sq_dists(
    X: np.ndarray,
    Y: Optional[np.ndarray] = None,
    block_size: int = 2048,
) -> Iterator[Tuple[slice, np.ndarray]]:
    """Iterate over row blocks of the squared distance matrix.

    Yields ``(row_slice, block)`` pairs where ``block`` has shape
    ``(len(row_slice), m)``.  This keeps the peak memory at
    ``O(block_size * m)`` and is the building block of the tiled
    matrix-free matvec in :class:`repro.kernels.operator.KernelOperator`.
    """
    X = np.asarray(X, dtype=np.float64)
    Yv = X if Y is None else np.asarray(Y, dtype=np.float64)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n = X.shape[0]
    y_sq = _sq_norms(Yv)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        Xb = X[start:stop]
        D = _sq_norms(Xb)[:, None] + y_sq[None, :] - 2.0 * (Xb @ Yv.T)
        np.maximum(D, 0.0, out=D)
        yield slice(start, stop), D
