"""The Gaussian radial basis function kernel (Eq. (1.1) of the paper).

``K(x_i, x_j) = exp(-||x_i - x_j||^2 / (2 h^2))``

The bandwidth ``h`` interpolates between the identity matrix (``h -> 0``)
and the rank-one all-ones matrix (``h -> inf``); intermediate values —
the ones actually selected by cross-validation — are exactly the regime
where hierarchical low-rank structure, rather than global low rank,
is needed.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_positive
from .base import Kernel, register_kernel


@register_kernel("gaussian")
class GaussianKernel(Kernel):
    """Gaussian (RBF) kernel with bandwidth ``h``.

    Parameters
    ----------
    h:
        Bandwidth (Gaussian width).  Must be positive.

    Examples
    --------
    >>> import numpy as np
    >>> k = GaussianKernel(h=1.0)
    >>> X = np.array([[0.0], [1.0]])
    >>> K = k.matrix(X)
    >>> np.allclose(K, [[1.0, np.exp(-0.5)], [np.exp(-0.5), 1.0]])
    True
    """

    def __init__(self, h: float = 1.0):
        self.h = check_positive(h, "h")

    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:
        scale = -0.5 / (self.h * self.h)
        return np.exp(scale * np.asarray(sq_dists, dtype=np.float64))
