"""Polynomial and linear kernels.

These kernels are *not* radial: they depend on inner products rather than
distances.  They are provided for completeness of the KRR front-end (the
linear kernel recovers classical ridge regression) and intentionally bypass
the radial-distance machinery by overriding the matrix/block/row methods.
Because they are globally low-rank (rank <= d for the linear kernel), they
are also useful as sanity checks for the low-rank compression kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.validation import check_non_negative, check_positive
from .base import Kernel, register_kernel


@register_kernel("polynomial")
class PolynomialKernel(Kernel):
    """Polynomial kernel ``K(x, y) = (gamma x.y + c)^degree``."""

    def __init__(self, degree: int = 2, gamma: float = 1.0, coef0: float = 1.0):
        if int(degree) < 1:
            raise ValueError("degree must be >= 1")
        self.degree = int(degree)
        self.gamma = check_positive(gamma, "gamma")
        self.coef0 = check_non_negative(coef0, "coef0")

    def _evaluate_sq(self, sq_dists: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("polynomial kernels are not radial")

    def matrix(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Yv = X if Y is None else np.asarray(Y, dtype=np.float64)
        return (self.gamma * (X @ Yv.T) + self.coef0) ** self.degree

    def block(self, X: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return self.matrix(X[np.asarray(rows, dtype=np.intp)],
                           X[np.asarray(cols, dtype=np.intp)])

    def row(self, x: np.ndarray, Y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).ravel()
        Y = np.asarray(Y, dtype=np.float64)
        return (self.gamma * (Y @ x) + self.coef0) ** self.degree

    def diagonal_value(self) -> float:  # pragma: no cover - not well defined
        raise NotImplementedError("polynomial kernel diagonal depends on the point")


@register_kernel("linear")
class LinearKernel(PolynomialKernel):
    """Linear kernel ``K(x, y) = x.y`` (classical ridge regression)."""

    def __init__(self):
        super().__init__(degree=1, gamma=1.0, coef0=0.0)
