"""H-matrix accelerated sampling for the HSS construction.

The randomized HSS construction spends almost all of its time in the
black-box product ``K @ R`` when the exact kernel operator is used
(Table 4: "Sampling" dominates "HSS construction").  The paper's remedy is
to first compress ``K`` into an H matrix — quasi-linear cost — and use its
fast matvec for the sampling, while element extraction (diagonal blocks,
``B`` couplings) still goes to the *exact* kernel so no accuracy is lost
where it matters.

:class:`HMatrixSampler` packages that hybrid: products are delegated to the
H matrix, elements to the exact operator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.timing import TimingLog
from .hmatrix import HMatrix


class HMatrixSampler:
    """Sampling operator combining an H matrix (products) and an exact operator
    (element extraction).

    Parameters
    ----------
    hmatrix:
        The compressed H approximation of the matrix (permuted ordering).
    exact_operator:
        The exact partially matrix-free operator (same ordering); only its
        ``block`` method is used.
    executor:
        Optional shared :class:`repro.parallel.BlockExecutor`: the
        multi-RHS sampling sweeps then run the per-block GEMMs as
        independent tasks (bitwise identical to the serial sweep; see
        :meth:`repro.hmatrix.HMatrix.matvec`).
    """

    def __init__(self, hmatrix: HMatrix, exact_operator, executor=None):
        if hmatrix.n != (exact_operator.n if hasattr(exact_operator, "n")
                         else exact_operator.shape[0]):
            raise ValueError("H matrix and exact operator dimensions differ")
        self.hmatrix = hmatrix
        self.exact = exact_operator
        self.executor = executor
        self.matvec_sweeps = 0

    # ------------------------------------------------------------------ shape
    @property
    def n(self) -> int:
        return self.hmatrix.n

    @property
    def shape(self) -> tuple:
        return self.hmatrix.shape

    @property
    def element_evaluations(self) -> int:
        """Element evaluations are counted by the exact operator."""
        return getattr(self.exact, "element_evaluations", 0)

    # ---------------------------------------------------------------- access
    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Exact element extraction (delegated to the exact operator)."""
        return self.exact.block(rows, cols)

    def diag(self) -> np.ndarray:
        return self.exact.diag()

    def matvec(self, v: np.ndarray) -> np.ndarray:
        self.matvec_sweeps += 1
        return self.hmatrix.matvec(v, executor=self.executor)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        self.matvec_sweeps += 1
        return self.hmatrix.rmatvec(v, executor=self.executor)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        self.matvec_sweeps += 1
        return self.hmatrix.matmat(V, executor=self.executor)

    def rmatmat(self, V: np.ndarray) -> np.ndarray:
        self.matvec_sweeps += 1
        return self.hmatrix.rmatmat(V, executor=self.executor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HMatrixSampler(n={self.n}, hmatrix={self.hmatrix!r})"
