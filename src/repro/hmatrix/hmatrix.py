"""The compressed H matrix: leaf blocks, matvec, memory statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..lowrank.lowrank_matrix import LowRank
from ..utils.bytes import megabytes
from .block_tree import BlockClusterTree


@dataclass
class HBlock:
    """One leaf block of the H matrix.

    Exactly one of ``dense`` / ``lowrank`` is set, matching the
    admissibility flag of the corresponding block-cluster-tree node.
    """

    block_id: int
    row_slice: slice
    col_slice: slice
    dense: Optional[np.ndarray] = None
    lowrank: Optional[LowRank] = None

    def __post_init__(self) -> None:
        if (self.dense is None) == (self.lowrank is None):
            raise ValueError("exactly one of dense / lowrank must be provided")

    @property
    def shape(self) -> tuple:
        return (self.row_slice.stop - self.row_slice.start,
                self.col_slice.stop - self.col_slice.start)

    @property
    def rank(self) -> int:
        """Rank of the stored representation (full min-dim for dense blocks)."""
        if self.lowrank is not None:
            return self.lowrank.rank
        return min(self.shape)

    @property
    def nbytes(self) -> int:
        if self.dense is not None:
            return int(self.dense.nbytes)
        return self.lowrank.nbytes

    def product(self, x: np.ndarray) -> np.ndarray:
        """``block @ x[cols]`` (multi-rhs aware), returned for accumulation."""
        xs = x[self.col_slice]
        if self.dense is not None:
            return self.dense @ xs
        return self.lowrank.U @ (self.lowrank.V.T @ xs)

    def rproduct(self, x: np.ndarray) -> np.ndarray:
        """``block.T @ x[rows]``, returned for accumulation."""
        xs = x[self.row_slice]
        if self.dense is not None:
            return self.dense.T @ xs
        return self.lowrank.V @ (self.lowrank.U.T @ xs)

    def matvec_into(self, x: np.ndarray, out: np.ndarray) -> None:
        """Accumulate ``block @ x[cols]`` into ``out[rows]`` (multi-rhs aware)."""
        out[self.row_slice] += self.product(x)

    def rmatvec_into(self, x: np.ndarray, out: np.ndarray) -> None:
        """Accumulate ``block.T @ x[rows]`` into ``out[cols]``."""
        out[self.col_slice] += self.rproduct(x)


@dataclass
class HMatrixStatistics:
    """Memory / rank summary of an H matrix (Figure 7a's "H" series)."""

    n: int
    total_bytes: int
    max_rank: int
    dense_blocks: int
    admissible_blocks: int

    @property
    def memory_mb(self) -> float:
        return megabytes(self.total_bytes)


class HMatrix:
    """A kernel matrix compressed in the H format (strong admissibility).

    Parameters
    ----------
    block_tree, blocks:
        The block partition and its leaf blocks.
    executor:
        Optional :class:`repro.parallel.BlockExecutor`.  When set (or
        passed per call), the matvec sweeps evaluate the per-block GEMMs
        as independent tasks on the executor and accumulate the returned
        contributions **in block order** on the calling thread — so
        parallel and serial sweeps are bitwise identical.  This is what
        makes the multi-RHS sampling products of the randomized HSS
        construction scale with the worker threads instead of running as
        one serial block sweep.
    """

    def __init__(self, block_tree: BlockClusterTree, blocks: List[HBlock],
                 executor=None):
        self.block_tree = block_tree
        self.blocks = blocks
        self._n = block_tree.tree.n
        #: default executor of the matvec sweeps (``None`` = serial)
        self.executor = executor

    @property
    def shape(self) -> tuple:
        return (self._n, self._n)

    @property
    def n(self) -> int:
        return self._n

    @property
    def dtype(self):
        return np.dtype(np.float64)

    # --------------------------------------------------------------- products
    def _sweep(self, X: np.ndarray, transpose: bool, executor) -> np.ndarray:
        """One block sweep, optionally with executor-parallel block GEMMs.

        Contributions are always accumulated in block-list order on the
        calling thread, so any worker count produces the bitwise-identical
        result of the serial sweep (block row ranges overlap across tree
        levels, which rules out accumulating inside the workers).
        """
        out = np.zeros_like(X)
        ex = executor if executor is not None else self.executor
        if ex is not None and ex.workers > 1:
            if transpose:
                contribs = ex.map(lambda blk: blk.rproduct(X), self.blocks)
            else:
                contribs = ex.map(lambda blk: blk.product(X), self.blocks)
            for blk, c in zip(self.blocks, contribs):
                out[blk.col_slice if transpose else blk.row_slice] += c
        else:
            for blk in self.blocks:
                if transpose:
                    blk.rmatvec_into(X, out)
                else:
                    blk.matvec_into(X, out)
        return out

    def matvec(self, x: np.ndarray, executor=None) -> np.ndarray:
        """Compute ``A_perm @ x`` by summing leaf-block contributions."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        X = x[:, None] if single else x
        if X.shape[0] != self._n:
            raise ValueError(f"x has {X.shape[0]} rows, expected {self._n}")
        out = self._sweep(X, transpose=False, executor=executor)
        return out.ravel() if single else out

    def rmatvec(self, x: np.ndarray, executor=None) -> np.ndarray:
        """Compute ``A_perm.T @ x``."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        X = x[:, None] if single else x
        out = self._sweep(X, transpose=True, executor=executor)
        return out.ravel() if single else out

    def matmat(self, V: np.ndarray, executor=None) -> np.ndarray:
        """Blocked product ``A_perm @ V`` (same leaf sweep, multiple columns)."""
        return self.matvec(V, executor=executor)

    def rmatmat(self, V: np.ndarray, executor=None) -> np.ndarray:
        return self.rmatvec(V, executor=executor)

    def to_dense(self) -> np.ndarray:
        """Materialise the full matrix (testing / small problems only)."""
        A = np.zeros((self._n, self._n))
        for blk in self.blocks:
            if blk.dense is not None:
                A[blk.row_slice, blk.col_slice] = blk.dense
            else:
                A[blk.row_slice, blk.col_slice] = blk.lowrank.to_dense()
        return A

    # ------------------------------------------------------------ statistics
    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    @property
    def max_rank(self) -> int:
        """Largest rank among the admissible (low-rank) blocks."""
        ranks = [b.rank for b in self.blocks if b.lowrank is not None]
        return max(ranks) if ranks else 0

    def statistics(self) -> HMatrixStatistics:
        return HMatrixStatistics(
            n=self._n,
            total_bytes=self.nbytes,
            max_rank=self.max_rank,
            dense_blocks=sum(1 for b in self.blocks if b.dense is not None),
            admissible_blocks=sum(1 for b in self.blocks if b.lowrank is not None),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HMatrix(n={self._n}, blocks={len(self.blocks)}, "
                f"max_rank={self.max_rank}, "
                f"memory={megabytes(self.nbytes):.2f} MB)")
