"""Axis-aligned bounding boxes of cluster-tree nodes.

Strong admissibility needs two geometric quantities per cluster: its
diameter and its distance to another cluster.  We use axis-aligned bounding
boxes, the standard choice in H-matrix codes: diameters and box-to-box
distances are cheap (O(d)) and conservative (box diameter >= point-set
diameter, box distance <= point-set distance), so admissibility decisions
made with boxes are never *less* safe than with exact point sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..clustering.tree import ClusterTree
from ..utils.validation import check_array_2d


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a point set."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(upper < lower):
            raise ValueError("upper must be >= lower componentwise")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """Bounding box of a set of points (rows)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        return cls(points.min(axis=0), points.max(axis=0))

    @property
    def diameter(self) -> float:
        """Euclidean length of the box diagonal."""
        return float(np.linalg.norm(self.upper - self.lower))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lower + self.upper)

    def distance(self, other: "BoundingBox") -> float:
        """Euclidean distance between two boxes (0 if they overlap)."""
        gap = np.maximum(
            np.maximum(self.lower - other.upper, other.lower - self.upper), 0.0)
        return float(np.linalg.norm(gap))


@dataclass(frozen=True)
class ClusterGeometry:
    """Geometric summary of a cluster: bounding box, centroid and RMS radius.

    The bounding box drives the textbook strong admissibility condition;
    the centroid / RMS radius pair drives the less conservative
    "centroid" criterion that practical kernel H-matrix codes use in high
    dimensions, where axis-aligned boxes of distinct clusters almost always
    overlap even though the clusters themselves are well separated.
    """

    box: BoundingBox
    centroid: np.ndarray
    radius: float
    size: int

    @classmethod
    def of_points(cls, points: np.ndarray) -> "ClusterGeometry":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        centroid = points.mean(axis=0)
        diffs = points - centroid
        radius = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs).mean()))
        return cls(box=BoundingBox.of_points(points), centroid=centroid,
                   radius=radius, size=points.shape[0])

    @classmethod
    def merge(cls, a: "ClusterGeometry", b: "ClusterGeometry") -> "ClusterGeometry":
        """Geometry of the union of two clusters (exact box, exact centroid,
        radius merged with the parallel-axis rule)."""
        box = BoundingBox(np.minimum(a.box.lower, b.box.lower),
                          np.maximum(a.box.upper, b.box.upper))
        total = a.size + b.size
        centroid = (a.size * a.centroid + b.size * b.centroid) / total
        # mean squared distance to the new centroid, via the parallel axis rule
        da = float(np.dot(a.centroid - centroid, a.centroid - centroid))
        db = float(np.dot(b.centroid - centroid, b.centroid - centroid))
        msq = (a.size * (a.radius ** 2 + da) + b.size * (b.radius ** 2 + db)) / total
        return cls(box=box, centroid=centroid, radius=float(np.sqrt(msq)), size=total)

    def centroid_distance(self, other: "ClusterGeometry") -> float:
        return float(np.linalg.norm(self.centroid - other.centroid))


def cluster_geometries(X_permuted: np.ndarray, tree: ClusterTree) -> Dict[int, ClusterGeometry]:
    """Geometric summaries of every cluster-tree node (bottom-up, O(n log n))."""
    X_permuted = check_array_2d(X_permuted, "X_permuted")
    if X_permuted.shape[0] != tree.n:
        raise ValueError(
            f"X has {X_permuted.shape[0]} rows but the tree covers {tree.n} points")
    geoms: Dict[int, ClusterGeometry] = {}
    for node_id in tree.postorder():
        nd = tree.node(node_id)
        if nd.is_leaf:
            geoms[node_id] = ClusterGeometry.of_points(X_permuted[nd.start:nd.stop])
        else:
            geoms[node_id] = ClusterGeometry.merge(geoms[nd.left], geoms[nd.right])
    return geoms


def cluster_bounding_boxes(X_permuted: np.ndarray, tree: ClusterTree) -> Dict[int, BoundingBox]:
    """Bounding boxes of every cluster-tree node.

    Parameters
    ----------
    X_permuted:
        Data points *already in the permuted ordering* of ``tree`` (i.e.
        ``X_original[tree.perm]``), so node ranges slice it directly.
    tree:
        The cluster tree.

    Returns
    -------
    dict
        Mapping node id -> :class:`BoundingBox`.  Computed bottom-up so
        every point is touched only once per tree level.
    """
    X_permuted = check_array_2d(X_permuted, "X_permuted")
    if X_permuted.shape[0] != tree.n:
        raise ValueError(
            f"X has {X_permuted.shape[0]} rows but the tree covers {tree.n} points")
    boxes: Dict[int, BoundingBox] = {}
    for node_id in tree.postorder():
        nd = tree.node(node_id)
        if nd.is_leaf:
            boxes[node_id] = BoundingBox.of_points(X_permuted[nd.start:nd.stop])
        else:
            b1, b2 = boxes[nd.left], boxes[nd.right]
            boxes[node_id] = BoundingBox(np.minimum(b1.lower, b2.lower),
                                         np.maximum(b1.upper, b2.upper))
    return boxes
