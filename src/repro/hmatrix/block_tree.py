"""Block cluster tree with strong admissibility.

The H-matrix partition is a quad-tree over pairs of cluster-tree nodes
``(s, t)``: a pair is either

* **admissible** — the clusters are well separated
  (``min(diam(s), diam(t)) <= eta * dist(s, t)``) and the block
  ``A(I_s, I_t)`` is stored as a low-rank factorization,
* **a dense leaf** — the block is small (either cluster is a leaf of the
  cluster tree or the block is below the leaf-size threshold) and stored
  densely,
* **subdivided** — otherwise it is split into the four children pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..clustering.tree import ClusterTree
from .bbox import BoundingBox, ClusterGeometry


def strong_admissibility(box_s: BoundingBox, box_t: BoundingBox, eta: float) -> bool:
    """Textbook strong admissibility on bounding boxes.

    ``min(diam(s), diam(t)) <= eta * dist(s, t)``; blocks touching
    (distance zero) are never admissible.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    dist = box_s.distance(box_t)
    if dist <= 0.0:
        return False
    return min(box_s.diameter, box_t.diameter) <= eta * dist


def centroid_admissibility(geom_s: ClusterGeometry, geom_t: ClusterGeometry,
                           eta: float) -> bool:
    """Centroid / RMS-radius admissibility for high-dimensional data.

    ``dist(centroid_s, centroid_t) >= eta * (radius_s + radius_t)`` with the
    RMS radius of each cluster.  Axis-aligned boxes of distinct clusters in
    high dimension almost always overlap (their distance is zero) even when
    the clusters are far apart, so the textbook criterion admits nothing;
    the centroid criterion is the standard practical fallback (the paper's
    prototype uses a comparable "hybrid" selection of well separated
    sub-blocks) and the subsequent ACA still controls the actual error.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    dist = geom_s.centroid_distance(geom_t)
    return dist >= eta * (geom_s.radius + geom_t.radius)


@dataclass
class BlockNode:
    """One node of the block cluster tree (a pair of cluster-tree nodes)."""

    row_node: int
    col_node: int
    admissible: bool = False
    is_leaf: bool = False
    children: List[int] = field(default_factory=list)
    level: int = 0


class BlockClusterTree:
    """The hierarchy of row-cluster x column-cluster blocks.

    Parameters
    ----------
    tree:
        The (single) cluster tree used for both rows and columns — kernel
        matrices are square and symmetrically permuted.
    geometries:
        Per-node :class:`repro.hmatrix.bbox.ClusterGeometry` (see
        :func:`repro.hmatrix.cluster_geometries`).
    eta:
        Admissibility parameter (see the two criteria above).
    leaf_size:
        Blocks whose row and column clusters are both at most this size are
        stored densely even if not admissible.
    criterion:
        ``"centroid"`` (default; suited to high-dimensional kernel data) or
        ``"box"`` (textbook bounding-box strong admissibility).
    """

    def __init__(self, tree: ClusterTree, geometries: Dict[int, ClusterGeometry],
                 eta: float = 1.5, leaf_size: int = 64,
                 criterion: str = "centroid"):
        if eta <= 0:
            raise ValueError("eta must be positive")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if criterion not in ("centroid", "box"):
            raise ValueError("criterion must be 'centroid' or 'box'")
        self.tree = tree
        self.geometries = geometries
        self.eta = float(eta)
        self.leaf_size = int(leaf_size)
        self.criterion = criterion
        self.blocks: List[BlockNode] = []
        self._build()

    def _admissible(self, s: int, t: int) -> bool:
        gs, gt = self.geometries[s], self.geometries[t]
        if self.criterion == "box":
            return strong_admissibility(gs.box, gt.box, self.eta)
        return centroid_admissibility(gs, gt, self.eta)

    def _build(self) -> None:
        tree = self.tree
        root = tree.root
        self.blocks.append(BlockNode(row_node=root, col_node=root, level=0))
        # Work stack of (block_id, row cluster node, column cluster node).
        stack: List[Tuple[int, int, int]] = [(0, root, root)]
        while stack:
            block_id, s, t = stack.pop()
            block = self.blocks[block_id]
            ns, nt = tree.node(s), tree.node(t)
            if s != t and self._admissible(s, t):
                block.admissible = True
                block.is_leaf = True
                continue
            small = ns.size <= self.leaf_size and nt.size <= self.leaf_size
            if small or (ns.is_leaf and nt.is_leaf):
                block.admissible = False
                block.is_leaf = True
                continue
            # Subdivide whichever sides still have children; when only one
            # cluster is a leaf the other side is split alone, so inadmissible
            # leaf x large pairings never become huge dense blocks.
            s_children = (s,) if ns.is_leaf else (ns.left, ns.right)
            t_children = (t,) if nt.is_leaf else (nt.left, nt.right)
            for s_child in s_children:
                for t_child in t_children:
                    child_id = len(self.blocks)
                    self.blocks.append(BlockNode(row_node=s_child, col_node=t_child,
                                                 level=block.level + 1))
                    block.children.append(child_id)
                    stack.append((child_id, s_child, t_child))

    # --------------------------------------------------------------- queries
    def leaves(self) -> List[int]:
        """Indices of leaf blocks (dense or admissible)."""
        return [i for i, b in enumerate(self.blocks) if b.is_leaf]

    def admissible_leaves(self) -> List[int]:
        return [i for i, b in enumerate(self.blocks) if b.is_leaf and b.admissible]

    def dense_leaves(self) -> List[int]:
        return [i for i, b in enumerate(self.blocks) if b.is_leaf and not b.admissible]

    def block_ranges(self, block_id: int) -> Tuple[slice, slice]:
        """Row and column index ranges (permuted ordering) of a block."""
        b = self.blocks[block_id]
        rn, cn = self.tree.node(b.row_node), self.tree.node(b.col_node)
        return slice(rn.start, rn.stop), slice(cn.start, cn.stop)

    def coverage_check(self) -> bool:
        """Verify the leaves tile the whole matrix exactly once.

        Returns ``True`` when every matrix entry is covered by exactly one
        leaf block; used by the test-suite as a structural invariant.
        """
        n = self.tree.n
        # Accumulate covered areas rather than building an n x n boolean
        # matrix so the check also runs for larger n; leaves never overlap by
        # construction (each block is subdivided into disjoint children).
        total = 0
        for i in self.leaves():
            rows, cols = self.block_ranges(i)
            total += (rows.stop - rows.start) * (cols.stop - cols.start)
        return total == n * n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockClusterTree(blocks={len(self.blocks)}, "
                f"admissible={len(self.admissible_leaves())}, "
                f"dense={len(self.dense_leaves())})")
