"""H matrices with strong admissibility.

Contrary to HSS (weak admissibility: *every* off-diagonal block is low
rank), the H format only compresses blocks whose clusters are well
separated geometrically (Section 3.2 of the paper).  That keeps the ranks
of compressed blocks small even for high-dimensional kernels, so H
construction and mat-vec are quasi-linear — but H inversion is expensive,
which is why the paper uses the H matrix *only* to accelerate the sampling
phase of the HSS construction, not as a solver.

Public pieces:

* :class:`BlockClusterTree` — the hierarchy of (row cluster, column
  cluster) pairs with the strong admissibility condition
  ``min(diam(s), diam(t)) <= eta * dist(s, t)``,
* :class:`HMatrix` — ACA-compressed admissible blocks + dense inadmissible
  leaves, with fast matvec and memory statistics,
* :func:`build_hmatrix` — construction from a kernel operator,
* :class:`HMatrixSampler` — adapter exposing the H matrix through the
  sampling interface expected by :func:`repro.hss.build_hss_randomized`.
"""

from .bbox import (BoundingBox, ClusterGeometry, cluster_bounding_boxes,
                   cluster_geometries)
from .block_tree import (BlockClusterTree, BlockNode, centroid_admissibility,
                         strong_admissibility)
from .hmatrix import HMatrix, HBlock
from .build import build_hmatrix
from .sampler import HMatrixSampler

__all__ = [
    "BoundingBox",
    "ClusterGeometry",
    "cluster_bounding_boxes",
    "cluster_geometries",
    "BlockClusterTree",
    "BlockNode",
    "strong_admissibility",
    "centroid_admissibility",
    "HMatrix",
    "HBlock",
    "build_hmatrix",
    "HMatrixSampler",
]
