"""H-matrix construction from a (partially matrix-free) kernel operator.

Admissible blocks are compressed with partially pivoted ACA driven by the
operator's element extraction — only a few rows and columns of each block
are ever evaluated, which is what makes the H construction quasi-linear and
is the reason the paper uses it to accelerate the HSS sampling stage.
Inadmissible leaf blocks are extracted densely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..clustering.tree import ClusterTree
from ..config import HMatrixOptions
from ..lowrank.aca import aca
from ..utils.timing import TimingLog
from ..utils.validation import check_array_2d
from .bbox import cluster_geometries
from .block_tree import BlockClusterTree
from .hmatrix import HBlock, HMatrix


def build_hmatrix(
    operator,
    X_permuted: np.ndarray,
    tree: ClusterTree,
    options: Optional[HMatrixOptions] = None,
    timing: Optional[TimingLog] = None,
) -> HMatrix:
    """Compress the kernel matrix of ``X_permuted`` into an H matrix.

    Parameters
    ----------
    operator:
        Partially matrix-free operator (``block(rows, cols)``) representing
        the matrix **in the permuted ordering** of ``tree``.
    X_permuted:
        The reordered data points (used only for the geometric admissibility
        condition).
    tree:
        Cluster tree shared with the HSS construction.
    options:
        :class:`repro.config.HMatrixOptions`.
    timing:
        Optional log; an ``h_construction`` phase is added.

    Returns
    -------
    HMatrix
    """
    opts = options if options is not None else HMatrixOptions()
    X_permuted = check_array_2d(X_permuted, "X_permuted")
    log = timing if timing is not None else TimingLog()

    with log.phase("h_construction"):
        geometries = cluster_geometries(X_permuted, tree)
        btree = BlockClusterTree(tree, geometries, eta=opts.admissibility_eta,
                                 leaf_size=opts.leaf_size,
                                 criterion=opts.admissibility)
        blocks = []
        for block_id in btree.leaves():
            rows, cols = btree.block_ranges(block_id)
            row_idx = np.arange(rows.start, rows.stop, dtype=np.intp)
            col_idx = np.arange(cols.start, cols.stop, dtype=np.intp)
            node = btree.blocks[block_id]
            if not node.admissible:
                dense = np.asarray(operator.block(row_idx, col_idx), dtype=np.float64)
                blocks.append(HBlock(block_id, rows, cols, dense=dense))
                continue

            def row_fn(i: int, _rows=row_idx, _cols=col_idx) -> np.ndarray:
                return np.asarray(
                    operator.block(_rows[i:i + 1], _cols), dtype=np.float64).ravel()

            def col_fn(j: int, _rows=row_idx, _cols=col_idx) -> np.ndarray:
                return np.asarray(
                    operator.block(_rows, _cols[j:j + 1]), dtype=np.float64).ravel()

            result = aca(row_idx.size, col_idx.size, row_fn, col_fn,
                         rel_tol=opts.rel_tol, max_rank=opts.max_rank)
            lowrank = result.lowrank
            # If ACA did not converge within the rank budget, fall back to a
            # dense block when that is actually cheaper; correctness first.
            if not result.converged and opts.max_rank is None:
                dense_bytes = row_idx.size * col_idx.size * 8
                if lowrank.nbytes >= dense_bytes:
                    dense = np.asarray(operator.block(row_idx, col_idx),
                                       dtype=np.float64)
                    blocks.append(HBlock(block_id, rows, cols, dense=dense))
                    continue
            blocks.append(HBlock(block_id, rows, cols, lowrank=lowrank))
    return HMatrix(btree, blocks)
