"""H-matrix construction from a (partially matrix-free) kernel operator.

Admissible blocks are compressed with partially pivoted ACA driven by the
operator's element extraction — only a few rows and columns of each block
are ever evaluated, which is what makes the H construction quasi-linear and
is the reason the paper uses it to accelerate the HSS sampling stage.
Inadmissible leaf blocks are extracted densely.

Every leaf block is independent of every other, so the assembly is a single
parallel map over the block-tree leaves (the operator's element counters
are thread-safe); results are collected in leaf order, so parallel and
serial builds produce identical H matrices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..clustering.tree import ClusterTree
from ..config import HMatrixOptions
from ..lowrank.aca import aca
from ..parallel.executor import BlockExecutor, resolve_workers
from ..utils.timing import TimingLog
from ..utils.validation import check_array_2d
from .bbox import cluster_geometries
from .block_tree import BlockClusterTree
from .hmatrix import HBlock, HMatrix


def _assemble_leaf(operator, btree: BlockClusterTree, block_id: int,
                   opts: HMatrixOptions) -> HBlock:
    """Extract (dense) or compress (ACA) one leaf block of the partition."""
    rows, cols = btree.block_ranges(block_id)
    row_idx = np.arange(rows.start, rows.stop, dtype=np.intp)
    col_idx = np.arange(cols.start, cols.stop, dtype=np.intp)
    node = btree.blocks[block_id]
    if not node.admissible:
        dense = np.asarray(operator.block(row_idx, col_idx), dtype=np.float64)
        return HBlock(block_id, rows, cols, dense=dense)

    def row_fn(i: int) -> np.ndarray:
        return np.asarray(
            operator.block(row_idx[i:i + 1], col_idx), dtype=np.float64).ravel()

    def col_fn(j: int) -> np.ndarray:
        return np.asarray(
            operator.block(row_idx, col_idx[j:j + 1]), dtype=np.float64).ravel()

    result = aca(row_idx.size, col_idx.size, row_fn, col_fn,
                 rel_tol=opts.rel_tol, max_rank=opts.max_rank)
    lowrank = result.lowrank
    # If ACA did not converge within the rank budget, fall back to a
    # dense block when that is actually cheaper; correctness first.
    if not result.converged and opts.max_rank is None:
        dense_bytes = row_idx.size * col_idx.size * 8
        if lowrank.nbytes >= dense_bytes:
            dense = np.asarray(operator.block(row_idx, col_idx),
                               dtype=np.float64)
            return HBlock(block_id, rows, cols, dense=dense)
    return HBlock(block_id, rows, cols, lowrank=lowrank)


def build_hmatrix(
    operator,
    X_permuted: np.ndarray,
    tree: ClusterTree,
    options: Optional[HMatrixOptions] = None,
    timing: Optional[TimingLog] = None,
    executor: Optional[BlockExecutor] = None,
    block_tree: Optional[BlockClusterTree] = None,
) -> HMatrix:
    """Compress the kernel matrix of ``X_permuted`` into an H matrix.

    Parameters
    ----------
    operator:
        Partially matrix-free operator (``block(rows, cols)``) representing
        the matrix **in the permuted ordering** of ``tree``.  Its ``block``
        method must be thread-safe when more than one worker is used.
    X_permuted:
        The reordered data points (used only for the geometric admissibility
        condition).
    tree:
        Cluster tree shared with the HSS construction.
    options:
        :class:`repro.config.HMatrixOptions`; ``options.workers`` selects
        the parallelism when no ``executor`` is passed.
    timing:
        Optional log; an ``h_construction`` phase is added.
    executor:
        Optional shared :class:`repro.parallel.BlockExecutor`; callers
        running several training phases should pass one executor so the
        thread pool is reused across phases.
    block_tree:
        Optional pre-built :class:`repro.hmatrix.BlockClusterTree` of an
        earlier build over the *same* ``(X_permuted, tree, options)``.  The
        admissibility partition is purely geometric (kernel-independent),
        so a bandwidth change can reuse it and skip the geometry pass —
        only the block numerics are redone.

    Returns
    -------
    HMatrix
    """
    opts = options if options is not None else HMatrixOptions()
    X_permuted = check_array_2d(X_permuted, "X_permuted")
    log = timing if timing is not None else TimingLog()
    own_executor = executor is None
    ex = executor if executor is not None else BlockExecutor(
        workers=resolve_workers(opts.workers))

    try:
        with log.phase("h_construction"):
            if block_tree is not None:
                btree = block_tree
            else:
                geometries = cluster_geometries(X_permuted, tree)
                btree = BlockClusterTree(tree, geometries,
                                         eta=opts.admissibility_eta,
                                         leaf_size=opts.leaf_size,
                                         criterion=opts.admissibility)
            blocks = ex.map(
                lambda block_id: _assemble_leaf(operator, btree, block_id, opts),
                list(btree.leaves()))
    finally:
        if own_executor:
            ex.shutdown()
    return HMatrix(btree, blocks)
