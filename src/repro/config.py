"""Global configuration objects shared across the library.

The defaults mirror the settings used throughout the paper:

* HSS leaf size of 16 (Section 4.3: "chosen to be 16 for HSS"),
* compression tolerance of 0.1 (Section 5.2: "With STRUMPACK tolerance set
  to be at most 0.1, the prediction accuracy does not seem to depend on the
  preprocessing methods"),
* Gaussian kernel with bandwidth ``h`` and ridge parameter ``lambda``
  chosen per dataset (Table 2 / Table 3).

Configuration objects are plain frozen dataclasses so they can be hashed,
compared and safely shared between threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class HSSOptions:
    """Options controlling HSS compression and factorization.

    Parameters
    ----------
    leaf_size:
        Maximum size of a diagonal (leaf) block.  The paper uses 16; larger
        leaves reduce tree depth (and Python overhead) at the cost of larger
        dense diagonal blocks.
    rel_tol:
        Relative tolerance used by the low-rank compression of off-diagonal
        (Hankel) blocks.  This is the analogue of STRUMPACK's
        ``--hss_rel_tol``.
    abs_tol:
        Absolute tolerance floor used by the compression.
    max_rank:
        Hard cap on the rank of any off-diagonal block.  ``None`` means no
        cap (ranks are still bounded by the block size).
    initial_samples:
        Number of random vectors used at the start of the adaptive
        randomized construction (STRUMPACK's ``--hss_d0``).
    sample_increment:
        Minimum number of random vectors added whenever the adaptive
        construction detects that the current sample does not capture the
        range (STRUMPACK's ``--hss_dd``); the sample at least doubles at
        every enlargement so high-rank problems converge in O(log n) rounds.
    max_adaptive_rounds:
        Safety bound on the number of sampling enlargement rounds.  The
        default of 12 allows the geometric growth to reach the full matrix
        dimension for any practical problem size.
    oversampling:
        Extra samples beyond the detected rank kept to make the range
        estimate robust.
    symmetric:
        If ``True`` the builder assumes ``A == A.T`` and reuses the row
        compression for the columns, halving the work.  Kernel matrices are
        symmetric so this defaults to ``True``.
    workers:
        Worker threads used by the level-parallel construction and ULV
        factorization.  ``None`` defers to the ``REPRO_WORKERS``
        environment variable (serial when unset), ``0`` uses all visible
        cores, positive values are taken literally — see
        :func:`repro.parallel.resolve_workers`.  Parallel and serial runs
        produce bitwise-identical factorizations.
    """

    leaf_size: int = 16
    rel_tol: float = 1e-1
    abs_tol: float = 1e-8
    max_rank: Optional[int] = None
    initial_samples: int = 32
    sample_increment: int = 16
    max_adaptive_rounds: int = 12
    oversampling: int = 8
    symmetric: bool = True
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.rel_tol <= 0:
            raise ValueError(f"rel_tol must be positive, got {self.rel_tol}")
        if self.abs_tol < 0:
            raise ValueError(f"abs_tol must be non-negative, got {self.abs_tol}")
        if self.initial_samples < 1:
            raise ValueError("initial_samples must be >= 1")
        if self.sample_increment < 1:
            raise ValueError("sample_increment must be >= 1")
        if self.max_rank is not None and self.max_rank < 1:
            raise ValueError("max_rank must be >= 1 or None")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 or None")

    def with_(self, **kwargs) -> "HSSOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class HMatrixOptions:
    """Options controlling the H-matrix (strong admissibility) compression.

    Parameters
    ----------
    leaf_size:
        Maximum size of an inadmissible dense block.
    admissibility_eta:
        Admissibility parameter ``eta``.  With the ``"box"`` criterion a
        block ``(s, t)`` is admissible when
        ``min(diam(s), diam(t)) <= eta * dist(s, t)``; with the default
        ``"centroid"`` criterion when the centroid distance exceeds
        ``eta * (radius_s + radius_t)``.
    admissibility:
        ``"centroid"`` (default, suited to high-dimensional kernel data) or
        ``"box"`` (textbook strong admissibility on bounding boxes).
    rel_tol:
        Relative stopping tolerance of the ACA compression of admissible
        blocks.
    max_rank:
        Hard cap on the ACA rank of an admissible block.
    workers:
        Worker threads used by the parallel leaf-block assembly; same
        semantics as :attr:`HSSOptions.workers`.
    """

    leaf_size: int = 64
    admissibility_eta: float = 1.0
    admissibility: str = "centroid"
    rel_tol: float = 1e-2
    max_rank: Optional[int] = None
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.admissibility_eta <= 0:
            raise ValueError("admissibility_eta must be positive")
        if self.admissibility not in ("centroid", "box"):
            raise ValueError("admissibility must be 'centroid' or 'box'")
        if self.rel_tol <= 0:
            raise ValueError("rel_tol must be positive")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 or None")

    def with_(self, **kwargs) -> "HMatrixOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClusteringOptions:
    """Options controlling the preprocessing / reordering step.

    Parameters
    ----------
    method:
        One of ``"natural"``, ``"two_means"``, ``"kd"``, ``"pca"``,
        ``"ball"``, ``"agglomerative"`` (see :mod:`repro.clustering`).
    leaf_size:
        Recursion stops when clusters reach this size; this becomes the HSS
        leaf size when the resulting tree drives the HSS partition.
    max_iter:
        Maximum number of Lloyd iterations for the two-means splitter.
    balance_threshold:
        K-d tree mean-splitting falls back to the median when one side is
        more than ``balance_threshold`` times larger than the other
        (the paper uses 100).
    seed:
        Seed for the random choices (two-means initialisation).
    """

    method: str = "two_means"
    leaf_size: int = 16
    max_iter: int = 20
    balance_threshold: float = 100.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.balance_threshold < 1:
            raise ValueError("balance_threshold must be >= 1")


@dataclass(frozen=True)
class KRROptions:
    """Options for kernel ridge regression classification (Algorithm 1).

    Parameters
    ----------
    h:
        Gaussian kernel bandwidth.
    lam:
        Ridge regularization parameter ``lambda``.
    solver:
        ``"dense"`` (exact Cholesky), ``"hss"`` (compressed ULV solve) or
        ``"cg"`` (conjugate gradient on the exact kernel).
    kernel:
        Kernel name understood by :func:`repro.kernels.get_kernel`.
    """

    h: float = 1.0
    lam: float = 1.0
    solver: str = "hss"
    kernel: str = "gaussian"

    def __post_init__(self) -> None:
        if self.h <= 0:
            raise ValueError("h must be positive")
        if self.lam < 0:
            raise ValueError("lam must be non-negative")
        if self.solver not in ("dense", "hss", "cg"):
            raise ValueError(f"unknown solver {self.solver!r}")


DEFAULT_HSS_OPTIONS = HSSOptions()
DEFAULT_HMATRIX_OPTIONS = HMatrixOptions()
DEFAULT_CLUSTERING_OPTIONS = ClusteringOptions()
DEFAULT_KRR_OPTIONS = KRROptions()
