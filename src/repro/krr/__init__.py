"""Kernel ridge regression for classification (Algorithm 1 of the paper).

The package provides:

* interchangeable solvers for the training system ``(K + lambda I) w = y``
  (:class:`DenseSolver` — exact Cholesky baseline, :class:`HSSSolver` — the
  compressed ULV direct solver, optionally with H-matrix accelerated
  sampling, and :class:`CGSolver` — matrix-free conjugate gradients),
* :class:`KernelRidgeClassifier` — the two-class classifier of Algorithm 1,
* :class:`OneVsAllClassifier` — the multi-class extension (Section 2),
* :class:`KernelRidgeRegressor` — plain regression with the same solvers,
* :class:`KRRPipeline` — the full pipeline including the clustering
  preprocessing (Step 0), used by every experiment in the benchmark
  harness,
* accuracy metrics (Eq. (2.1)).
"""

from .solvers import (DenseSolver, HSSSolver, CGSolver, make_solver,
                      solver_from_config, SolveReport)
from .classifier import KernelRidgeClassifier
from .multiclass import OneVsAllClassifier
from .regression import KernelRidgeRegressor
from .metrics import accuracy, confusion_matrix, error_rate
from .pipeline import KRRPipeline, PipelineReport

__all__ = [
    "DenseSolver",
    "HSSSolver",
    "CGSolver",
    "make_solver",
    "solver_from_config",
    "SolveReport",
    "KernelRidgeClassifier",
    "OneVsAllClassifier",
    "KernelRidgeRegressor",
    "accuracy",
    "confusion_matrix",
    "error_rate",
    "KRRPipeline",
    "PipelineReport",
]
