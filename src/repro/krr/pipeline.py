"""End-to-end KRR experiment pipeline.

:class:`KRRPipeline` bundles the full Algorithm-1 workflow — clustering
preprocessing, kernel construction, compressed factorization, training
solve, prediction, evaluation — and reports exactly the quantities the
paper's tables are built from: memory (MB), maximum rank, accuracy (%),
and per-phase timings.  The benchmark harness (one module per table /
figure in :mod:`repro.experiments`) is a thin layer over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..config import ClusteringOptions, HMatrixOptions, HSSOptions
from ..utils.timing import TimingLog
from .classifier import KernelRidgeClassifier
from .metrics import accuracy
from .solvers import HSSSolver, KernelSystemSolver, make_solver


@dataclass
class PipelineReport:
    """Everything the paper reports about one train/test run."""

    dataset: str = ""
    clustering: str = ""
    solver: str = ""
    kernel: str = "gaussian"
    h: float = 0.0
    lam: float = 0.0
    n_train: int = 0
    n_test: int = 0
    dim: int = 0
    accuracy: float = 0.0
    memory_mb: float = 0.0
    hss_memory_mb: float = 0.0
    hmatrix_memory_mb: float = 0.0
    max_rank: int = 0
    #: worker threads used by the training phases (1 = serial)
    workers: int = 1
    #: worker processes (subtree shards) used by the training phases
    shards: int = 1
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy_percent(self) -> float:
        """Accuracy in percent, as printed in the paper's tables."""
        return 100.0 * self.accuracy

    def phase(self, name: str) -> float:
        return self.timings.get(name, 0.0)

    def row(self) -> Dict[str, object]:
        """Flat dictionary suitable for tabular printing / CSV export."""
        out = {
            "dataset": self.dataset,
            "clustering": self.clustering,
            "solver": self.solver,
            "kernel": self.kernel,
            "h": self.h,
            "lambda": self.lam,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "dim": self.dim,
            "accuracy_percent": round(self.accuracy_percent, 2),
            "memory_mb": round(self.memory_mb, 3),
            "hss_memory_mb": round(self.hss_memory_mb, 3),
            "hmatrix_memory_mb": round(self.hmatrix_memory_mb, 3),
            "max_rank": self.max_rank,
            "workers": self.workers,
            "shards": self.shards,
        }
        for name, sec in sorted(self.timings.items()):
            out[f"time_{name}_s"] = round(sec, 4)
        return out


class KRRPipeline:
    """Run the full KRR classification experiment on one dataset.

    Parameters
    ----------
    h, lam:
        Kernel bandwidth and ridge parameter.
    clustering:
        Ordering method name (``"natural"``, ``"two_means"``, ``"kd"``,
        ``"pca"``, ...).
    solver:
        ``"dense"``, ``"hss"`` or ``"cg"``.
    leaf_size:
        Cluster-tree / HSS leaf size.
    hss_options, hmatrix_options:
        Compression options used when ``solver == "hss"``.
    use_hmatrix_sampling:
        Whether the HSS sampling goes through the H matrix (paper default).
    seed:
        Seed shared by all random components.
    workers:
        Worker threads for the training phases of the HSS solver (parallel
        and serial runs produce identical reports apart from timings).
        ``None`` defers to the option objects / ``REPRO_WORKERS``; see
        :func:`repro.parallel.resolve_workers`.
    shards:
        Worker *processes* for the training phases, each owning a subtree
        of the cluster tree as in the paper's MPI runs (requires the
        ``"hss"`` solver).  ``None`` defers to ``REPRO_SHARDS`` (1 when
        unset); with more than one shard the training solve goes through
        :class:`repro.distributed.DistributedSolver` and the reported
        ``shards`` field records the process count.  Sharded and serial
        runs agree within the compression tolerance (see
        :mod:`repro.distributed`).
    coupling_rel_tol, coupling_max_rank, cut_level:
        Inter-shard coupling compression knobs forwarded to the
        distributed solver (ignored when ``shards`` resolves to 1).
    grid:
        Optional warm :class:`repro.distributed.WorkerGrid` for the
        sharded path: repeated :meth:`run` calls (hyper-parameter sweeps)
        then reuse its worker processes instead of respawning them.  The
        grid must have been built over the same data, clustering, leaf
        size, seed and shard count (see
        :meth:`repro.distributed.WorkerGrid.from_data`); it is never shut
        down by the pipeline.  Ignored when ``shards`` resolves to 1.
    kernel:
        Kernel family name understood by :func:`repro.kernels.get_kernel`
        (default Gaussian, as in the paper).
    """

    def __init__(
        self,
        h: float = 1.0,
        lam: float = 1.0,
        clustering: str = "two_means",
        solver: str = "hss",
        leaf_size: int = 16,
        hss_options: Optional[HSSOptions] = None,
        hmatrix_options: Optional[HMatrixOptions] = None,
        use_hmatrix_sampling: bool = True,
        seed=0,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        coupling_rel_tol: Optional[float] = None,
        coupling_max_rank: Optional[int] = None,
        cut_level: Optional[int] = None,
        grid=None,
        kernel: str = "gaussian",
    ):
        self.h = float(h)
        self.lam = float(lam)
        self.clustering = clustering
        self.solver_name = solver
        self.kernel_name = str(kernel)
        self.leaf_size = int(leaf_size)
        self.hss_options = hss_options
        self.hmatrix_options = hmatrix_options
        self.use_hmatrix_sampling = bool(use_hmatrix_sampling)
        self.seed = seed
        self.workers = workers
        self.shards = shards
        self.coupling_rel_tol = coupling_rel_tol
        self.coupling_max_rank = coupling_max_rank
        self.cut_level = cut_level
        self.grid = grid
        self.classifier_: Optional[KernelRidgeClassifier] = None
        self.report_: Optional[PipelineReport] = None

    @classmethod
    def from_config(cls, config, h: Optional[float] = None,
                    lam: Optional[float] = None,
                    grid=None) -> "KRRPipeline":
        """Build a pipeline from a :class:`repro.runtime.RuntimeConfig`.

        Maps the config's sections onto the constructor arguments — the
        two paths are equivalent, so a pipeline built here produces
        bitwise-identical results to the same explicit constructor call
        (enforced by ``tests/test_runtime_config.py``).  Explicit
        constructor-style overrides always win over the config.

        Parameters
        ----------
        config:
            The resolved :class:`repro.runtime.RuntimeConfig`.
        h, lam:
            Optional hyper-parameter overrides (e.g. the dataset's paper
            values, or a tuning result) taking precedence over the
            config's kernel section.
        grid:
            Optional warm :class:`repro.distributed.WorkerGrid` for the
            sharded path, forwarded as-is.

        Returns
        -------
        KRRPipeline
            The configured pipeline.
        """
        d = config.distributed
        return cls(
            h=float(h) if h is not None else config.kernel.h,
            lam=float(lam) if lam is not None else config.kernel.lam,
            clustering=config.clustering.method,
            solver=config.solver.name,
            leaf_size=config.clustering.leaf_size,
            hss_options=config.hss_options(),
            hmatrix_options=config.hmatrix_options(),
            use_hmatrix_sampling=config.solver.use_hmatrix_sampling,
            seed=config.clustering.seed,
            workers=d.workers,
            shards=d.shards,
            coupling_rel_tol=d.coupling_rel_tol,
            coupling_max_rank=d.coupling_max_rank,
            cut_level=d.cut_level,
            grid=grid,
            kernel=config.kernel.name,
        )

    def _build_solver(self) -> Union[str, KernelSystemSolver]:
        from ..distributed.plan import resolve_shards
        n_shards = resolve_shards(self.shards)
        if n_shards > 1:
            if self.solver_name != "hss":
                raise ValueError(
                    f"process sharding requires the 'hss' solver, got "
                    f"{self.solver_name!r}")
            from ..distributed.solver import DistributedSolver
            return DistributedSolver(
                shards=n_shards,
                hss_options=self.hss_options,
                hmatrix_options=self.hmatrix_options,
                use_hmatrix_sampling=self.use_hmatrix_sampling,
                seed=self.seed,
                workers=self.workers,
                coupling_rel_tol=self.coupling_rel_tol,
                coupling_max_rank=self.coupling_max_rank,
                cut_level=self.cut_level,
                grid=self.grid)
        if self.solver_name == "hss":
            return HSSSolver(hss_options=self.hss_options,
                             hmatrix_options=self.hmatrix_options,
                             use_hmatrix_sampling=self.use_hmatrix_sampling,
                             seed=self.seed,
                             workers=self.workers)
        return make_solver(self.solver_name)

    def run(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        dataset_name: str = "",
    ) -> PipelineReport:
        """Train, predict and evaluate; return the full report."""
        log = TimingLog()
        clf = KernelRidgeClassifier(
            h=self.h, lam=self.lam, solver=self._build_solver(),
            clustering=self.clustering, kernel=self.kernel_name,
            leaf_size=self.leaf_size, seed=self.seed)
        with log.phase("train_total"):
            clf.fit(X_train, y_train)
        with log.phase("predict_total"):
            y_pred = clf.predict(X_test)
        acc = accuracy(np.asarray(y_test, dtype=np.float64), y_pred)
        self.classifier_ = clf

        report = PipelineReport(
            dataset=dataset_name,
            clustering=self.clustering,
            solver=self.solver_name,
            kernel=self.kernel_name,
            h=self.h,
            lam=self.lam,
            n_train=int(np.asarray(X_train).shape[0]),
            n_test=int(np.asarray(X_test).shape[0]),
            dim=int(np.asarray(X_train).shape[1]),
            accuracy=acc,
        )
        solve_report = clf.report
        report.memory_mb = solve_report.memory_mb
        report.hss_memory_mb = solve_report.hss_memory_mb
        report.hmatrix_memory_mb = solve_report.hmatrix_memory_mb
        report.max_rank = solve_report.max_rank
        report.workers = solve_report.workers
        report.shards = solve_report.shards
        report.timings = dict(solve_report.timings)
        report.timings.update(log.as_dict())
        self.report_ = report
        return report

    def refit(
        self,
        lam: float,
        X_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        dataset_name: Optional[str] = None,
    ) -> PipelineReport:
        """Re-train the last :meth:`run`'s classifier at a new ``lam``.

        The kernel compression (and, on the sharded path, the worker
        grid's resident per-shard compressions) is reused; only the
        shift-dependent factorization and the training solve are redone —
        see :meth:`repro.krr.KernelRidgeClassifier.refit`.  This is the
        cheap inner step of a regularization sweep: run once, then refit
        per λ.

        Parameters
        ----------
        lam:
            The new ridge parameter.
        X_test, y_test:
            Optional test set; when both are given the refitted model is
            re-evaluated and the returned report carries the new accuracy
            (otherwise the accuracy field is ``nan``).
        dataset_name:
            Optional dataset tag of the returned report; defaults to the
            last run's.

        Returns
        -------
        PipelineReport
            A fresh report for the refitted model; its timings are the
            refit's own phases (factorization + solve + prediction), so
            comparing it against the cold run's report shows the saving
            directly.
        """
        if self.classifier_ is None:
            raise RuntimeError("pipeline must run() before refit()")
        log = TimingLog()
        with log.phase("train_total"):
            self.classifier_.refit(float(lam))
        # Adopted only after the classifier refit succeeded.
        self.lam = float(lam)
        acc = float("nan")
        n_test = 0
        if X_test is not None and y_test is not None:
            with log.phase("predict_total"):
                y_pred = self.classifier_.predict(X_test)
            acc = accuracy(np.asarray(y_test, dtype=np.float64), y_pred)
            n_test = int(np.asarray(X_test).shape[0])

        previous = self.report_
        solve_report = self.classifier_.report
        report = PipelineReport(
            dataset=(dataset_name if dataset_name is not None
                     else (previous.dataset if previous else "")),
            clustering=self.clustering,
            solver=self.solver_name,
            kernel=self.kernel_name,
            h=self.h,
            lam=self.lam,
            n_train=(previous.n_train if previous else 0),
            n_test=n_test,
            dim=(previous.dim if previous else 0),
            accuracy=acc,
            memory_mb=solve_report.memory_mb,
            hss_memory_mb=solve_report.hss_memory_mb,
            hmatrix_memory_mb=solve_report.hmatrix_memory_mb,
            max_rank=solve_report.max_rank,
            workers=solve_report.workers,
            shards=solve_report.shards,
        )
        report.timings = dict(solve_report.timings)
        report.timings.update(log.as_dict())
        self.report_ = report
        return report

    def refit_kernel(
        self,
        h: float,
        X_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        dataset_name: Optional[str] = None,
    ) -> PipelineReport:
        """Re-train the last :meth:`run`'s classifier at a new bandwidth.

        The clustering, permutation and H-matrix admissibility partition
        stay resident; only the kernel-dependent numerics are rebuilt —
        see :meth:`repro.krr.KernelRidgeClassifier.refit_kernel`.  This is
        the *h*-move of a 2-D hyperparameter sweep: cheaper than a cold
        :meth:`run`, dearer than a λ-only :meth:`refit`.

        Parameters
        ----------
        h:
            The new kernel bandwidth (same kernel family).
        X_test, y_test:
            Optional test set; when both are given the refitted model is
            re-evaluated and the returned report carries the new accuracy
            (otherwise the accuracy field is ``nan``).
        dataset_name:
            Optional dataset tag of the returned report; defaults to the
            last run's.

        Returns
        -------
        PipelineReport
            A fresh report for the refitted model; its timings are the
            recompression's own phases, so comparing against the cold
            run's report shows the structure-reuse saving directly.
        """
        if self.classifier_ is None:
            raise RuntimeError("pipeline must run() before refit_kernel()")
        log = TimingLog()
        with log.phase("train_total"):
            self.classifier_.refit_kernel(float(h))
        # Adopted only after the classifier rebuild succeeded.
        self.h = float(h)
        acc = float("nan")
        n_test = 0
        if X_test is not None and y_test is not None:
            with log.phase("predict_total"):
                y_pred = self.classifier_.predict(X_test)
            acc = accuracy(np.asarray(y_test, dtype=np.float64), y_pred)
            n_test = int(np.asarray(X_test).shape[0])

        previous = self.report_
        solve_report = self.classifier_.report
        report = PipelineReport(
            dataset=(dataset_name if dataset_name is not None
                     else (previous.dataset if previous else "")),
            clustering=self.clustering,
            solver=self.solver_name,
            kernel=self.kernel_name,
            h=self.h,
            lam=self.lam,
            n_train=(previous.n_train if previous else 0),
            n_test=n_test,
            dim=(previous.dim if previous else 0),
            accuracy=acc,
            memory_mb=solve_report.memory_mb,
            hss_memory_mb=solve_report.hss_memory_mb,
            hmatrix_memory_mb=solve_report.hmatrix_memory_mb,
            max_rank=solve_report.max_rank,
            workers=solve_report.workers,
            shards=solve_report.shards,
        )
        report.timings = dict(solve_report.timings)
        report.timings.update(log.as_dict())
        self.report_ = report
        return report

    def partial_fit(
        self,
        X_new: Optional[np.ndarray] = None,
        y_new: Optional[np.ndarray] = None,
        remove=None,
        X_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        dataset_name: Optional[str] = None,
    ) -> PipelineReport:
        """Stream rows into / out of the last :meth:`run`'s classifier.

        The update lands as a Woodbury correction around the resident
        factors (:meth:`repro.krr.KernelRidgeClassifier.partial_fit`) —
        no recompression, no re-factorization.  The returned report's
        timings are the update's own phases, so comparing against the
        cold run's report shows the streaming saving directly; its
        ``n_train`` reflects the *effective* training set.

        Parameters
        ----------
        X_new, y_new:
            Rows to append and their ±1 labels (given together).
        remove:
            Indices into the current training ordering to drop.
        X_test, y_test:
            Optional test set for re-evaluation (accuracy is ``nan``
            when omitted).
        dataset_name:
            Optional dataset tag; defaults to the last run's.

        Returns
        -------
        PipelineReport
            A fresh report for the updated model.
        """
        if self.classifier_ is None:
            raise RuntimeError("pipeline must run() before partial_fit()")
        log = TimingLog()
        with log.phase("update_total"):
            self.classifier_.partial_fit(X_new=X_new, y_new=y_new,
                                         remove=remove)
        acc = float("nan")
        n_test = 0
        if X_test is not None and y_test is not None:
            with log.phase("predict_total"):
                y_pred = self.classifier_.predict(X_test)
            acc = accuracy(np.asarray(y_test, dtype=np.float64), y_pred)
            n_test = int(np.asarray(X_test).shape[0])

        previous = self.report_
        solve_report = self.classifier_.report
        report = PipelineReport(
            dataset=(dataset_name if dataset_name is not None
                     else (previous.dataset if previous else "")),
            clustering=self.clustering,
            solver=self.solver_name,
            kernel=self.kernel_name,
            h=self.h,
            lam=self.lam,
            n_train=int(self.classifier_.X_train_.shape[0]),
            n_test=n_test,
            dim=(previous.dim if previous else 0),
            accuracy=acc,
            memory_mb=solve_report.memory_mb,
            hss_memory_mb=solve_report.hss_memory_mb,
            hmatrix_memory_mb=solve_report.hmatrix_memory_mb,
            max_rank=solve_report.max_rank,
            workers=solve_report.workers,
            shards=solve_report.shards,
        )
        report.timings = log.as_dict()
        self.report_ = report
        return report

    # ------------------------------------------------------------ observability
    def dump_metrics(self, path: str) -> str:
        """Export the process's merged telemetry snapshot to ``path``.

        Convenience hook over :func:`repro.obs.dump_metrics`: writes the
        global registry's merged view (including any per-shard snapshots a
        distributed fit absorbed) — Prometheus text for ``.prom`` /
        ``.txt`` paths, JSON otherwise — and returns the path.

        Parameters
        ----------
        path:
            Destination file path.
        """
        from ..obs import dump_metrics
        return dump_metrics(path)

    # -------------------------------------------------------------- persistence
    def save(self, path: str, metadata: Optional[dict] = None,
             include_factorization: bool = True):
        """Persist the classifier trained by the last :meth:`run`.

        The :class:`PipelineReport` of that run (dataset, accuracy, memory,
        maximum rank, timings) is flattened into the artifact metadata, so
        a :class:`repro.serving.ModelStore` listing shows the headline
        numbers without opening the archive.
        """
        if self.classifier_ is None:
            raise RuntimeError("pipeline must run() before save()")
        from ..serving import metadata_from_report
        meta = metadata_from_report(self.report_) if self.report_ is not None else {}
        meta.update(metadata or {})
        return self.classifier_.save(path, metadata=meta,
                                     include_factorization=include_factorization)

    @staticmethod
    def load(path: str) -> KernelRidgeClassifier:
        """Load a classifier saved by :meth:`save` (ready to predict/serve)."""
        return KernelRidgeClassifier.load(path)
