"""Solvers for the KRR training system ``(K + lambda I) w = y``.

Step 2 of Algorithm 1 is the only expensive step of kernel ridge
regression, and the paper's observation is that it does not need many
digits of accuracy — the weight vector only feeds a sign computation — so
an approximate but fast solver (HSS + ULV) can replace the exact dense
factorization.  Three interchangeable solvers are provided:

* :class:`DenseSolver` — exact Cholesky factorization of the full kernel
  matrix (the "not compressed" baseline of Table 2),
* :class:`HSSSolver` — the paper's approach: HSS compression via adaptive
  randomized sampling (optionally accelerated with an H matrix), ULV
  factorization, triangular solves,
* :class:`CGSolver` — matrix-free conjugate gradients on the exact kernel
  operator, a common alternative baseline (and the "iterative solution"
  the paper's conclusion mentions as future work for preconditioning).

Every solver exposes the same three-phase interface: ``fit`` (build /
compress / factor), ``solve`` (per right-hand side) and a
:class:`SolveReport` with the phase timings, memory and rank statistics
used by the benchmark harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.linalg
import scipy.sparse.linalg

from ..clustering.tree import ClusterTree
from ..config import HMatrixOptions, HSSOptions
from ..hss.compressed import CompressedKernel, compress_kernel
from ..hss.streaming import StreamingULVSolver
from ..hss.ulv import ULVFactorization
from ..kernels.base import Kernel
from ..kernels.operator import ShiftedKernelOperator
from ..parallel.executor import BlockExecutor, resolve_workers
from ..utils.bytes import megabytes
from ..utils.timing import TimingLog
from ..utils.validation import check_array_2d, check_non_negative


@dataclass
class SolveReport:
    """Per-phase timings and compression statistics of one training solve."""

    solver: str = ""
    timings: Dict[str, float] = field(default_factory=dict)
    memory_mb: float = 0.0
    hss_memory_mb: float = 0.0
    hmatrix_memory_mb: float = 0.0
    max_rank: int = 0
    random_vectors: int = 0
    iterations: int = 0
    #: worker threads used by the training phases (1 = serial)
    workers: int = 1
    #: worker processes (subtree shards) used by the training phases
    shards: int = 1
    #: λ-only refits performed since the last full fit (0 = cold state);
    #: after a refit, ``timings`` holds that refit's phases only
    refits: int = 0

    def phase(self, name: str) -> float:
        """Accumulated seconds of the named phase (0.0 if absent)."""
        return self.timings.get(name, 0.0)

    @property
    def total_time(self) -> float:
        return float(sum(self.timings.values()))


class KernelSystemSolver(abc.ABC):
    """Common interface of the training-system solvers."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.report = SolveReport(solver=self.name)
        self._fitted = False
        #: ridge shift of the current factorization (set by fit / refit)
        self.lam_: Optional[float] = None
        #: streaming wrapper once partial_fit has been called (else None)
        self._stream: Optional[StreamingULVSolver] = None

    @abc.abstractmethod
    def _fit_impl(self, X_permuted: np.ndarray, tree: Optional[ClusterTree],
                  kernel: Kernel, lam: float) -> None:
        """Build and factor the (approximate) kernel system."""

    @abc.abstractmethod
    def _solve_impl(self, y: np.ndarray) -> np.ndarray:
        """Solve for one or more right-hand sides (permuted ordering)."""

    def fit(self, X_permuted: np.ndarray, tree: Optional[ClusterTree],
            kernel: Kernel, lam: float) -> "KernelSystemSolver":
        """Prepare the factorization of ``K(X_permuted) + lam I``.

        Parameters
        ----------
        X_permuted:
            Training points, already reordered by the clustering step.
        tree:
            The cluster tree of the reordering (may be ``None`` for solvers
            that do not need it, e.g. the dense baseline).
        kernel:
            Kernel function.
        lam:
            Ridge parameter.
        """
        X_permuted = check_array_2d(X_permuted, "X_permuted")
        check_non_negative(lam, "lam")
        self.report = SolveReport(solver=self.name)
        self._stream = None  # a cold fit starts a fresh streaming history
        self._fit_impl(X_permuted, tree, kernel, lam)
        self._fitted = True
        self.lam_ = float(lam)
        return self

    def refit(self, lam: float) -> "KernelSystemSolver":
        """Re-factor the already-fitted system at a new ridge shift.

        The expensive λ-independent state — the kernel compression for the
        HSS solver, the kernel matrix for the dense solver, the matrix-free
        operator for CG — is reused untouched; only the shift-dependent
        factorization is redone.  The result is numerically identical to a
        cold :meth:`fit` at the same ``lam`` (bitwise for the serial
        solvers), at a fraction of the cost.  After a refit,
        ``report.timings`` holds the refit's own phases (so the saving is
        directly observable) while the compression statistics (memory,
        ranks, random vectors) are retained, and ``report.refits`` counts
        the λ-only refits since the last full fit.

        Parameters
        ----------
        lam:
            The new ridge parameter.

        Returns
        -------
        KernelSystemSolver
            ``self``, re-factored at ``lam``.

        Raises
        ------
        RuntimeError
            If the solver has not been fitted, or its λ-independent state
            is unavailable (e.g. a legacy artifact whose compression has
            the old shift baked in).
        """
        if not self._fitted:
            raise RuntimeError("solver must be fitted before calling refit()")
        check_non_negative(lam, "lam")
        refits = self.report.refits + 1
        self._refit_impl(float(lam))
        if self._stream is not None:
            # The base factors changed shift: drop the lam-dependent
            # correction caches (the wrapper re-reads the factors through
            # its base-solve closure, so nothing else is stale).
            self._stream.refit(float(lam))
        self.report.refits = refits
        self.lam_ = float(lam)
        return self

    def _refit_impl(self, lam: float) -> None:
        """Shift-only re-factorization; overridden by refit-capable solvers."""
        raise NotImplementedError(
            f"the {self.name!r} solver does not support lambda-only refits")

    def refit_kernel(self, kernel: Kernel,
                     lam: Optional[float] = None) -> "KernelSystemSolver":
        """Rebuild the fitted system for a *new kernel* on the same data.

        The kernel-independent structure — the cluster tree, permutation
        and H-matrix admissibility partition for the HSS solver, the
        retained training points for the dense solver, the matrix-free
        operator for CG — is reused; only the kernel-dependent numerics
        are redone.  For the HSS solver the result is bitwise identical
        to a cold :meth:`fit` of the new kernel on the same tree (see
        :meth:`repro.hss.CompressedKernel.recompress`), at a fraction of
        the cost: this is the cheap *h*-move of a bandwidth sweep, the
        middle rung of the move-cost ladder λ ≪ h ≪ cold.

        Parameters
        ----------
        kernel:
            The new kernel (typically the same family at a different
            bandwidth).
        lam:
            Optional new ridge shift; ``None`` keeps the current ``lam_``.

        Returns
        -------
        KernelSystemSolver
            ``self``, re-fitted for ``kernel``.

        Raises
        ------
        RuntimeError
            If the solver has not been fitted, or retains no state to
            rebuild from (e.g. a factor-only legacy artifact).
        """
        if not self._fitted:
            raise RuntimeError(
                "solver must be fitted before calling refit_kernel()")
        new_lam = self.lam_ if lam is None else float(lam)
        check_non_negative(new_lam, "lam")
        # A kernel change invalidates any streamed Woodbury corrections:
        # they were built against the old kernel's factors.
        self._stream = None
        self._refit_kernel_impl(kernel, float(new_lam))
        # The rebuilt numerics are a fresh λ-free state: the refit counter
        # restarts exactly as after a cold fit.
        self.report.refits = 0
        self.lam_ = float(new_lam)
        return self

    def _refit_kernel_impl(self, kernel: Kernel, lam: float) -> None:
        """Kernel-swap re-fit; overridden by structure-reusing solvers."""
        raise NotImplementedError(
            f"the {self.name!r} solver does not support kernel refits")

    def partial_fit(self, X_add=None, remove=None) -> "KernelSystemSolver":
        """Stream rows into / out of the fitted system without re-factoring.

        Mutations are applied as Woodbury corrections around the existing
        factors (see :class:`repro.hss.StreamingULVSolver`): removals
        first, then additions.  Subsequent :meth:`solve` calls expect
        right-hand sides in the *effective* ordering — the kept original
        rows (original order) followed by every added row, in insertion
        order.

        Parameters
        ----------
        X_add:
            Rows to append, shape ``(m, d)`` (``None`` / empty = none).
        remove:
            Indices into the current effective ordering to drop
            (``None`` / empty = none).

        Returns
        -------
        KernelSystemSolver
            ``self``, serving the updated system.

        Raises
        ------
        RuntimeError
            If unfitted, or the solver retains no training points to
            build correction blocks from (e.g. the CG baseline, or a
            factor-only legacy artifact).
        """
        if not self._fitted:
            raise RuntimeError(
                "solver must be fitted before calling partial_fit()")
        stream = self._ensure_stream()
        if remove is not None and np.asarray(remove).size:
            stream.remove_rows(remove)
        if X_add is not None and np.asarray(X_add).size:
            stream.add_rows(np.asarray(X_add, dtype=np.float64))
        return self

    @property
    def stream(self) -> Optional[StreamingULVSolver]:
        """The streaming wrapper (``None`` until :meth:`partial_fit`)."""
        return self._stream

    def _ensure_stream(self) -> StreamingULVSolver:
        if self._stream is None:
            context = getattr(self, "_stream_context", None)
            if context is None:
                raise RuntimeError(
                    f"the {self.name!r} solver does not support streaming "
                    "updates (no training points retained to build "
                    "correction blocks from)")
            X_base, kernel = context
            self._stream = StreamingULVSolver(
                self._stream_base_solve, X_base, kernel, self.lam_)
        return self._stream

    def _stream_base_solve(self, b: np.ndarray) -> np.ndarray:
        """Multi-RHS solve against the *base* factors (streaming hook)."""
        return self._solve_impl(np.asarray(b, dtype=np.float64))

    def solve(self, y: np.ndarray) -> np.ndarray:
        """Solve the fitted system for right-hand side(s) ``y``.

        With streamed updates in effect the right-hand side lives in the
        effective ordering (kept rows, then added rows) and the solve
        routes through the Woodbury correction; otherwise this is the
        plain base solve.
        """
        if not self._fitted:
            raise RuntimeError("solver must be fitted before calling solve()")
        y = np.asarray(y, dtype=np.float64)
        if self._stream is not None and self._stream.active:
            return self._stream.solve(y)
        return self._solve_impl(y)


class DenseSolver(KernelSystemSolver):
    """Exact dense Cholesky solver (the uncompressed baseline).

    Memory is ``O(n^2)`` and factorization ``O(n^3)``; the paper uses this
    as the accuracy reference ("this accuracy matches the accuracy we get
    using the full non-compressed kernel matrix", Section 5.2).  ``fit``
    keeps only the factor (as before the refit split); the first λ-only
    :meth:`~KernelSystemSolver.refit` rebuilds the λ-free kernel matrix
    from the retained training points and keeps it for subsequent refits,
    so sweep users pay the extra ``O(n^2)`` residency and fit-once users
    do not.
    """

    name = "dense"

    def _fit_impl(self, X_permuted, tree, kernel, lam) -> None:
        log = TimingLog()
        with log.phase("construction"):
            K = kernel.matrix(X_permuted)
            K[np.diag_indices_from(K)] += lam
        with log.phase("factorization"):
            self._cho = scipy.linalg.cho_factor(K, lower=True)
        # The λ-free matrix is NOT retained (fit-once users keep the old
        # memory profile); refits rebuild it lazily from this context.
        self._K = None
        self._refit_context = (X_permuted, kernel)
        self._stream_context = self._refit_context
        self.report.timings = log.as_dict()
        self.report.memory_mb = megabytes(K.nbytes)

    def _refit_impl(self, lam: float) -> None:
        log = TimingLog()
        if getattr(self, "_K", None) is None:
            # First refit (or restored from an artifact): rebuild the
            # λ-free kernel matrix once from the stored training points;
            # further refits reuse it and pay only the factorization.
            context = getattr(self, "_refit_context", None)
            if context is None:
                raise RuntimeError(
                    "dense solver holds no kernel matrix and no training "
                    "points to rebuild it from; a full fit is required")
            X_permuted, kernel = context
            with log.phase("construction"):
                self._K = kernel.matrix(X_permuted)
        with log.phase("factorization"):
            A = self._K.copy()
            A[np.diag_indices_from(A)] += lam
            self._cho = scipy.linalg.cho_factor(A, lower=True)
        self.report.timings = log.as_dict()

    def _refit_kernel_impl(self, kernel: Kernel, lam: float) -> None:
        context = getattr(self, "_refit_context", None)
        if context is None:
            raise RuntimeError(
                "dense solver retains no training points to rebuild the "
                "kernel matrix from; a full fit is required")
        X_permuted, _ = context
        log = TimingLog()
        with log.phase("construction"):
            self._K = kernel.matrix(X_permuted)
        with log.phase("factorization"):
            A = self._K.copy()
            A[np.diag_indices_from(A)] += lam
            self._cho = scipy.linalg.cho_factor(A, lower=True)
        self._refit_context = (X_permuted, kernel)
        self._stream_context = self._refit_context
        self.report.timings = log.as_dict()

    def _solve_impl(self, y: np.ndarray) -> np.ndarray:
        log = TimingLog()
        with log.phase("solve"):
            w = scipy.linalg.cho_solve(self._cho, y)
        for name, sec in log.as_dict().items():
            self.report.timings[name] = self.report.timings.get(name, 0.0) + sec
        return w


class HSSSolver(KernelSystemSolver):
    """HSS-compressed direct solver (the paper's method).

    Training is two decoupled stages: a λ-free *compression* of the kernel
    (H matrix + randomized HSS, via :func:`repro.hss.compress_kernel` —
    the expensive part, independent of the ridge parameter) and the ULV
    *factorization* of ``K + lam I``, which applies the shift to the
    compressed representation at factor time.  A λ-only
    :meth:`~KernelSystemSolver.refit` therefore reuses the resident
    :class:`repro.hss.CompressedKernel` and redoes only the ``O(n r^2)``
    ULV — :attr:`compression_count` stays at 1 across a whole λ sweep.

    Parameters
    ----------
    hss_options:
        Compression options (tolerance 0.1 by default, as in the paper).
    use_hmatrix_sampling:
        If ``True`` (default) an H matrix of the kernel is built first and
        its fast matvec drives the randomized HSS sampling (Section 3.2);
        if ``False`` the exact ``O(n^2)`` kernel product is used (its
        ``matmat`` runs column-tiled on the shared executor).
    hmatrix_options:
        Options of the auxiliary H matrix.
    seed:
        Seed of the random sampling.
    workers:
        Worker threads shared by every training phase (H assembly, HSS
        compression, ULV factorization and solve).  ``None`` falls back to
        ``hss_options.workers``; see :func:`repro.parallel.resolve_workers`
        for the resolution rules.  One persistent
        :class:`repro.parallel.BlockExecutor` spans the solver's lifetime,
        so the thread pool is reused across the many per-level maps.
    matmat_col_tile:
        Column-tile size of the exact kernel operator's sampling
        ``matmat`` (only exercised when ``use_hmatrix_sampling`` is
        ``False``).  The tile geometry is fixed independently of the
        worker count, so serial and parallel runs stay bitwise identical.
    """

    name = "hss"

    #: default column-tile size of the exact-sampling matmat (chosen so a
    #: tile row fits in cache for the paper's dimensionalities)
    DEFAULT_MATMAT_COL_TILE = 1024

    def __init__(self,
                 hss_options: Optional[HSSOptions] = None,
                 use_hmatrix_sampling: bool = True,
                 hmatrix_options: Optional[HMatrixOptions] = None,
                 seed=0,
                 workers: Optional[int] = None,
                 matmat_col_tile: Optional[int] = DEFAULT_MATMAT_COL_TILE):
        super().__init__()
        self.hss_options = hss_options if hss_options is not None else HSSOptions()
        self.hmatrix_options = (hmatrix_options if hmatrix_options is not None
                                else HMatrixOptions())
        self.use_hmatrix_sampling = bool(use_hmatrix_sampling)
        self.seed = seed
        self.workers = workers
        self.matmat_col_tile = matmat_col_tile
        #: λ-free compression of the last fit (reused by refits)
        self.compressed_: Optional[CompressedKernel] = None
        self.hss_ = None
        self.hmatrix_ = None
        self.factorization_ = None
        #: number of full kernel compressions performed (refits add none)
        self.compression_count = 0
        #: whether the resident HSS generators are λ-free (False only for
        #: legacy artifacts that baked the shift in at compression time)
        self._hss_lam_free = True
        self._executor: Optional[BlockExecutor] = None
        #: λ -> ULVFactorization cache filled by :meth:`prefactor`
        self._prefactored: Dict[float, ULVFactorization] = {}

    def _resolve_workers(self) -> int:
        spec = self.workers
        if spec is None:
            spec = self.hss_options.workers
        if spec is None:
            spec = self.hmatrix_options.workers
        return resolve_workers(spec)

    def _fit_impl(self, X_permuted, tree, kernel, lam) -> None:
        if tree is None:
            raise ValueError("HSSSolver requires the cluster tree of the reordering")
        log = TimingLog()
        n_workers = self._resolve_workers()
        self.report.workers = n_workers
        if self._executor is not None:
            self._executor.shutdown()
        self._executor = BlockExecutor(workers=n_workers)
        self._prefactored = {}
        try:
            self.compressed_ = compress_kernel(
                X_permuted, tree, kernel,
                hss_options=self.hss_options,
                hmatrix_options=self.hmatrix_options,
                use_hmatrix_sampling=self.use_hmatrix_sampling,
                seed=self.seed, timing=log, executor=self._executor,
                matmat_col_tile=self.matmat_col_tile)
            self.compression_count += 1
            self._hss_lam_free = True
            self.hss_ = self.compressed_.hss
            self.hmatrix_ = self.compressed_.hmatrix
            self.factorization_ = ULVFactorization.factor(
                self.compressed_, lam=lam, timing=log,
                executor=self._executor)
        except BaseException:
            # Failed fits must not orphan a live thread pool.
            self._executor.shutdown()
            raise
        self._stream_context = (X_permuted, kernel)
        build = self.compressed_.report
        self.report.timings = log.as_dict()
        self.report.hmatrix_memory_mb = build.hmatrix_memory_mb
        self.report.hss_memory_mb = build.hss_memory_mb
        self.report.memory_mb = build.memory_mb
        self.report.max_rank = build.max_rank
        self.report.random_vectors = build.random_vectors

    def _check_lam_free(self) -> None:
        if self.hss_ is None:
            raise RuntimeError(
                "HSS solver holds no compression (factor-only artifact); "
                "a full fit is required")
        if not self._hss_lam_free:
            raise RuntimeError(
                "this model's HSS compression has the ridge shift baked in "
                "(legacy artifact written before the compress-once/"
                "refit-many split); lambda-only refits require retraining "
                "with the current version (re-saving cannot remove the "
                "baked-in shift)")

    def _refit_impl(self, lam: float) -> None:
        self._check_lam_free()
        cached = getattr(self, "_prefactored", None)
        if cached:
            hit = cached.get(float(lam))
            if hit is not None:
                # Adopt the batch-built factorization (bitwise identical
                # to factoring here — see ULVFactorization.factor_many);
                # the refit itself then costs nothing.
                self.factorization_ = hit
                self.report.timings = {"factorization": 0.0}
                return
        if self._executor is None:
            self._executor = BlockExecutor(workers=self._resolve_workers())
        log = TimingLog()
        try:
            self.factorization_ = ULVFactorization(
                self.hss_, timing=log, executor=self._executor, lam=lam)
        except BaseException:
            # Failed refits must not orphan a live thread pool (same
            # invariant as the fit path).
            self._executor.shutdown()
            raise
        self.report.timings = log.as_dict()

    def prefactor(self, lams) -> "HSSSolver":
        """Batch-factor the resident compression at several ridge shifts.

        One :meth:`repro.hss.ULVFactorization.factor_many` sweep shares
        the λ-independent elimination setup (QR of the row bases,
        internal-node assemblies) across all shifts; subsequent
        :meth:`~KernelSystemSolver.refit` calls at any of the given λ
        values adopt the cached factorization for free.  The cache is
        dropped on the next :meth:`~KernelSystemSolver.fit` or
        :meth:`~KernelSystemSolver.refit_kernel`.

        Parameters
        ----------
        lams:
            Ridge shifts to pre-factor.

        Returns
        -------
        HSSSolver
            ``self``, with the λ cache populated.
        """
        if not self._fitted:
            raise RuntimeError(
                "solver must be fitted before calling prefactor()")
        self._check_lam_free()
        lams = [float(l) for l in lams]
        for lam in lams:
            check_non_negative(lam, "lam")
        if self._executor is None:
            self._executor = BlockExecutor(workers=self._resolve_workers())
        log = TimingLog()
        try:
            source = self.compressed_ if self.compressed_ is not None \
                else self.hss_
            factors = ULVFactorization.factor_many(
                source, lams, timing=log, executor=self._executor)
        except BaseException:
            self._executor.shutdown()
            raise
        self._prefactored = dict(zip(lams, factors))
        for name, sec in log.as_dict().items():
            self.report.timings[name] = \
                self.report.timings.get(name, 0.0) + sec
        return self

    def _refit_kernel_impl(self, kernel: Kernel, lam: float) -> None:
        self._check_lam_free()
        context = getattr(self, "_stream_context", None)
        if context is None:
            raise RuntimeError(
                "HSS solver retains no training points to recompress "
                "from; a full fit is required")
        X_permuted, _ = context
        if self._executor is None:
            self._executor = BlockExecutor(workers=self._resolve_workers())
        log = TimingLog()
        try:
            structure = (self.compressed_.structure
                         if self.compressed_ is not None else None)
            if structure is not None:
                # Structure-reuse h-move: redo only the kernel-dependent
                # numerics on the resident admissibility partition.
                self.compressed_ = self.compressed_.recompress(
                    kernel, timing=log, executor=self._executor)
            else:
                # Restored artifact (the structure is not persisted):
                # fall back to a cold compression on the resident tree.
                self.compressed_ = compress_kernel(
                    X_permuted, self.hss_.tree, kernel,
                    hss_options=self.hss_options,
                    hmatrix_options=self.hmatrix_options,
                    use_hmatrix_sampling=self.use_hmatrix_sampling,
                    seed=self.seed, timing=log, executor=self._executor,
                    matmat_col_tile=self.matmat_col_tile)
            self.compression_count += 1
            self._hss_lam_free = True
            self.hss_ = self.compressed_.hss
            self.hmatrix_ = self.compressed_.hmatrix
            self._prefactored = {}
            self.factorization_ = ULVFactorization.factor(
                self.compressed_, lam=lam, timing=log,
                executor=self._executor)
        except BaseException:
            self._executor.shutdown()
            raise
        self._stream_context = (X_permuted, kernel)
        build = self.compressed_.report
        self.report.timings = log.as_dict()
        self.report.hmatrix_memory_mb = build.hmatrix_memory_mb
        self.report.hss_memory_mb = build.hss_memory_mb
        self.report.memory_mb = build.memory_mb
        self.report.max_rank = build.max_rank
        self.report.random_vectors = build.random_vectors

    def _solve_impl(self, y: np.ndarray) -> np.ndarray:
        log = TimingLog()
        w = self.factorization_.solve(y, timing=log)
        for name, sec in log.as_dict().items():
            self.report.timings[name] = self.report.timings.get(name, 0.0) + sec
        return w

    def close(self) -> None:
        """Release the worker threads (later solves re-create them lazily)."""
        if self._executor is not None:
            self._executor.shutdown()


class CGSolver(KernelSystemSolver):
    """Conjugate-gradient solver on the exact (matrix-free) kernel operator."""

    name = "cg"

    def __init__(self, tol: float = 1e-6, max_iter: Optional[int] = None):
        super().__init__()
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.tol = float(tol)
        self.max_iter = max_iter

    def _fit_impl(self, X_permuted, tree, kernel, lam) -> None:
        log = TimingLog()
        with log.phase("construction"):
            self._operator = ShiftedKernelOperator(X_permuted, kernel, lam)
        self.report.timings = log.as_dict()
        self.report.memory_mb = megabytes(X_permuted.nbytes)

    def _refit_impl(self, lam: float) -> None:
        # CG keeps no factorization; the shift is a field of the
        # matrix-free operator, so a refit is a scalar update.
        self._operator.lam = lam
        self.report.timings = {}

    def _refit_kernel_impl(self, kernel: Kernel, lam: float) -> None:
        # Equally trivial for the matrix-free operator: both the kernel
        # and the shift are fields read per matvec.
        self._operator.kernel = kernel
        self._operator.lam = lam
        self.report.timings = {}

    def _solve_impl(self, y: np.ndarray) -> np.ndarray:
        op = self._operator
        linop = scipy.sparse.linalg.LinearOperator(
            shape=op.shape, matvec=op.matvec, rmatvec=op.rmatvec, dtype=np.float64)
        log = TimingLog()
        single = y.ndim == 1
        Y = y[:, None] if single else y
        out = np.empty_like(Y)
        iterations = 0
        with log.phase("solve"):
            for j in range(Y.shape[1]):
                counter = _IterationCounter()
                w, info = scipy.sparse.linalg.cg(linop, Y[:, j], rtol=self.tol,
                                                 maxiter=self.max_iter,
                                                 callback=counter)
                if info > 0:
                    # Did not converge within maxiter; keep the best iterate —
                    # KRR only needs the sign of the decision values.
                    pass
                elif info < 0:
                    raise RuntimeError(f"CG failed with illegal input (info={info})")
                out[:, j] = w
                iterations = max(iterations, counter.count)
        self.report.iterations = iterations
        for name, sec in log.as_dict().items():
            self.report.timings[name] = self.report.timings.get(name, 0.0) + sec
        return out.ravel() if single else out


class _IterationCounter:
    """Callback counting CG iterations."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, _xk) -> None:
        self.count += 1


def make_solver(name: str, **kwargs) -> KernelSystemSolver:
    """Instantiate a solver by name (``"dense"``, ``"hss"`` or ``"cg"``)."""
    name = str(name).strip().lower()
    if name == "dense":
        return DenseSolver(**kwargs)
    if name == "hss":
        return HSSSolver(**kwargs)
    if name == "cg":
        return CGSolver(**kwargs)
    raise ValueError(f"unknown solver {name!r}; expected 'dense', 'hss' or 'cg'")


def build_training_solver(spec, seed=0, workers: Optional[int] = None,
                          shards: Optional[int] = None,
                          solver_options: Optional[Dict] = None,
                          grid=None) -> KernelSystemSolver:
    """Resolve a classifier's solver spec honouring its parallelism knobs.

    The shared dispatch behind :class:`repro.krr.KernelRidgeClassifier`
    and :class:`repro.krr.OneVsAllClassifier`: a pre-constructed solver
    instance passes through untouched; the ``"hss"`` name picks up the
    ``seed`` / ``workers`` knobs and — when ``shards`` resolves to more
    than one process (see :func:`repro.distributed.resolve_shards`) —
    routes the training solve through the process-sharded
    :class:`repro.distributed.DistributedSolver` instead.

    Parameters
    ----------
    spec:
        Solver name (``"dense"``, ``"hss"``, ``"cg"``) or a
        :class:`KernelSystemSolver` instance.
    seed:
        Default seed injected into named ``"hss"`` solvers.
    workers:
        Worker-thread knob for the ``"hss"`` training path (``None``
        defers to the option objects / ``REPRO_WORKERS``).
    shards:
        Worker-process knob; ``None`` defers to ``REPRO_SHARDS``.
    solver_options:
        Extra keyword arguments for the named solver's constructor
        (explicit keys win over the knobs above).  Sharded-only options
        (``grid``, ``collect_factors``, ``coupling_rel_tol``,
        ``coupling_max_rank``, ``cut_level``, ``response_timeout``,
        ``start_method``) are ignored when ``shards`` resolves to 1,
        mirroring :class:`repro.krr.KRRPipeline`'s contract for its
        coupling knobs.
    grid:
        Optional warm :class:`repro.distributed.WorkerGrid` forwarded to
        the distributed solver (ignored on the single-process path).

    Returns
    -------
    KernelSystemSolver
        The ready-to-fit training solver.
    """
    if isinstance(spec, KernelSystemSolver):
        return spec
    opts = dict(solver_options or {})
    if str(spec).strip().lower() == "hss":
        opts.setdefault("seed", seed)
        if workers is not None:
            opts.setdefault("workers", workers)
        from ..distributed.plan import resolve_shards
        n_shards = resolve_shards(
            shards if shards is not None else opts.get("shards"))
        if n_shards > 1:
            # shards > 1 routes the hss training solve through the
            # process-sharded path (coupling knobs ride in solver_options).
            from ..distributed.solver import DistributedSolver
            opts.setdefault("shards", n_shards)
            if grid is not None:
                opts.setdefault("grid", grid)
            return DistributedSolver(**opts)
        # Single-process path: drop the sharded-only knobs (documented as
        # ignored when shards resolves to 1) instead of crashing HSSSolver.
        for key in ("shards", "grid", "collect_factors", "coupling_rel_tol",
                    "coupling_max_rank", "cut_level", "response_timeout",
                    "start_method"):
            opts.pop(key, None)
    return make_solver(spec, **opts)


def solver_from_config(config, grid=None) -> KernelSystemSolver:
    """Build the training solver a :class:`repro.runtime.RuntimeConfig` implies.

    The config-spine twin of :func:`build_training_solver`: the solver
    name, compression options, seed and workers/shards knobs all come
    from the config's sections, and ``shards > 1`` routes through the
    process-sharded :class:`repro.distributed.DistributedSolver` exactly
    like the constructor path.

    Parameters
    ----------
    config:
        The resolved :class:`repro.runtime.RuntimeConfig`.
    grid:
        Optional warm :class:`repro.distributed.WorkerGrid` for the
        sharded path.

    Returns
    -------
    KernelSystemSolver
        The ready-to-fit training solver.
    """
    d = config.distributed
    solver_options = {}
    if config.solver.name == "hss":
        solver_options = {
            "hss_options": config.hss_options(),
            "hmatrix_options": config.hmatrix_options(),
            "use_hmatrix_sampling": config.solver.use_hmatrix_sampling,
            "coupling_rel_tol": d.coupling_rel_tol,
            "coupling_max_rank": d.coupling_max_rank,
            "cut_level": d.cut_level,
        }
    return build_training_solver(config.solver.name,
                                 seed=config.clustering.seed,
                                 workers=d.workers, shards=d.shards,
                                 solver_options=solver_options, grid=grid)
