"""Classification metrics.

The paper's accuracy metric (Eq. (2.1)) is simply the fraction of correctly
predicted test labels.  A confusion matrix and error rate are provided for
the examples and for sanity checks on the one-vs-all multi-class setting
(where accuracy "might differ significantly if one would predict some other
class" — Section 5.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly predicted labels (Eq. (2.1) of the paper)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty label vectors")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of mispredicted labels (``1 - accuracy``)."""
    return 1.0 - accuracy(y_true, y_pred)


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix and the label values indexing it.

    Returns
    -------
    (matrix, labels):
        ``matrix[i, j]`` counts samples with true label ``labels[i]``
        predicted as ``labels[j]``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}")
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, labels
