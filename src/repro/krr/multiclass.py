"""One-vs-all multi-class kernel ridge regression (Section 2 of the paper).

"To distinguish between c > 2 classes, we would need to construct c binary
classifiers, that differ from the Algorithm 1 only in Step 4", with the
absolute decision value interpreted as a confidence and the predicted class
taken as the argmax over the per-class confidences.

The per-class binary classifiers share the same clustering and kernel
hyper-parameters; when the underlying solver is the HSS one, the expensive
compression and factorization depend only on ``(h, lambda)`` and therefore
can be shared across all the classes: only the right-hand side changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..clustering.api import ClusteringResult, cluster
from ..config import ClusteringOptions
from ..kernels.base import Kernel, get_kernel
from ..kernels.distance import blockwise_sq_dists
from ..utils.validation import check_array_2d, check_vector
from .solvers import KernelSystemSolver, build_training_solver


class OneVsAllClassifier:
    """Multi-class classifier built from shared-factorization binary KRR.

    Parameters
    ----------
    h, lam, solver, clustering, kernel, leaf_size, seed, workers, shards,
    solver_options:
        Same meaning as for :class:`repro.krr.KernelRidgeClassifier` —
        ``shards > 1`` routes the shared training solve through the
        process-sharded :class:`repro.distributed.DistributedSolver`.

    Notes
    -----
    The training system ``(K + lambda I)`` does not depend on the class, so
    a *single* factorization is computed and reused to solve for the ``c``
    one-vs-all weight vectors — the natural multi-class extension of the
    paper's pipeline, and much cheaper than fitting ``c`` independent
    classifiers.  All ``c`` right-hand sides are solved in one multi-RHS
    call, which on the distributed path costs a single coordinator round
    trip against the already-factorized capacitance system instead of one
    per class.
    """

    def __init__(
        self,
        h: float = 1.0,
        lam: float = 1.0,
        solver: Union[str, KernelSystemSolver] = "hss",
        clustering: Union[str, ClusteringOptions] = "two_means",
        kernel: Union[str, Kernel, None] = None,
        leaf_size: int = 16,
        seed=0,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        solver_options: Optional[dict] = None,
    ):
        self.h = float(h)
        self.lam = float(lam)
        self.leaf_size = int(leaf_size)
        self.seed = seed
        self.workers = workers
        self.shards = shards
        if isinstance(kernel, Kernel):
            self.kernel = kernel
        elif kernel is None:
            self.kernel = get_kernel("gaussian", h=self.h)
        else:
            self.kernel = get_kernel(kernel, h=self.h)
        self._solver_spec = solver
        self._solver_options = dict(solver_options or {})
        self._clustering_spec = clustering
        self.classes_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None  # (n_train, n_classes)
        self.X_train_: Optional[np.ndarray] = None
        self.solver_: Optional[KernelSystemSolver] = None
        self.clustering_: Optional[ClusteringResult] = None
        #: permuted ±1 one-vs-all targets (n_train x n_classes), kept so
        #: λ-only refits can re-solve all classes in one multi-RHS call
        self._targets_perm: Optional[np.ndarray] = None
        #: drift bookkeeping of the last partial_fit (None = never streamed)
        self.stream_info_: Optional[dict] = None

    def _make_solver(self) -> KernelSystemSolver:
        return build_training_solver(self._solver_spec, seed=self.seed,
                                     workers=self.workers, shards=self.shards,
                                     solver_options=self._solver_options)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsAllClassifier":
        """Train on integer / string class labels (2 or more classes)."""
        X = check_array_2d(X, "X")
        y = np.asarray(y)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D with one label per row of X")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two distinct classes")

        if isinstance(self._clustering_spec, ClusteringOptions):
            self.clustering_ = cluster(X, options=self._clustering_spec)
        else:
            self.clustering_ = cluster(X, method=self._clustering_spec,
                                       leaf_size=self.leaf_size, seed=self.seed)
        X_perm = self.clustering_.X
        y_perm = y[self.clustering_.perm]

        self.solver_ = self._make_solver()
        self.solver_.fit(X_perm, self.clustering_.tree, self.kernel, self.lam)

        # One ±1 right-hand side per class, all solved against the shared
        # factorization in a single multi-RHS call — on the distributed
        # path this is one coordinator round trip for every class at once.
        targets = np.where(y_perm[:, None] == self.classes_[None, :], 1.0, -1.0)
        self.weights_ = np.ascontiguousarray(
            self.solver_.solve(targets), dtype=np.float64)
        self.X_train_ = X_perm
        self._targets_perm = targets
        self.stream_info_ = None
        # Training is done: release any solver worker threads (a later
        # solver_.solve() lazily re-creates the pool).
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def partial_fit(self, X_new=None, y_new=None, remove=None,
                    budget=None) -> "OneVsAllClassifier":
        """Stream rows into / out of the fitted ensemble without refitting.

        Same contract as
        :meth:`repro.krr.KernelRidgeClassifier.partial_fit`, with class
        labels instead of ±1 targets: removals (indices into the current
        ``X_train_`` ordering) are applied first, then the appended rows'
        labels are expanded into ±1 one-vs-all target rows against the
        *fitted* ``classes_`` — labels unseen at :meth:`fit` time are
        rejected (a new class changes the weight matrix shape and needs a
        full refit).  All ``c`` weight vectors are re-solved in one
        multi-RHS pass through the Woodbury correction.
        """
        from .classifier import KernelRidgeClassifier
        KernelRidgeClassifier._check_streamable(self)
        if self._targets_perm is None:
            raise RuntimeError(
                "no training targets available for partial_fit (artifact "
                "saved by an older version); call fit() instead")
        X_new, _, idx = KernelRidgeClassifier._validate_update(
            self, X_new, y_new, remove)
        t_add = None
        if X_new is not None:
            y_add = np.asarray(y_new)
            if y_add.ndim != 1 or y_add.shape[0] != X_new.shape[0]:
                raise ValueError(
                    "y_new must be 1-D with one label per row of X_new")
            unseen = np.setdiff1d(np.unique(y_add), self.classes_)
            if unseen.size:
                raise ValueError(
                    f"labels {unseen.tolist()} were not present at fit "
                    "time; adding a new class requires a full fit()")
            t_add = np.where(y_add[:, None] == self.classes_[None, :],
                             1.0, -1.0)
        targets = self._targets_perm
        if idx is not None and idx.size:
            targets = np.delete(targets, idx, axis=0)
        if t_add is not None:
            targets = np.vstack([targets, t_add])
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        weights = KernelRidgeClassifier._apply_stream_update(
            self, X_new, targets, idx)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        stream = self.solver_.stream
        if budget is not None:
            stream.budget = budget
        self._targets_perm = targets
        KernelRidgeClassifier._finish_stream_update(
            self, stream, weights, targets)
        return self

    def recompress(self) -> "OneVsAllClassifier":
        """Cold-refit on the current effective training set.

        Bitwise identical to a cold :meth:`fit` on the effective data in
        its current row order (the clustering is deterministic per row
        order); drops every streamed correction.
        """
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError(
                "classifier must be fitted before recompress()")
        if self._targets_perm is None:
            raise RuntimeError(
                "no training targets available for recompress (artifact "
                "saved by an older version); call fit() instead")
        from ..hss.streaming import record_recompression
        labels = self.classes_[np.argmax(self._targets_perm, axis=1)]
        self.fit(self.X_train_.copy(), labels)
        record_recompression()
        return self

    def refit(self, lam: float) -> "OneVsAllClassifier":
        """Re-train all classes at a new ridge parameter without recompressing.

        The shared factorization is refitted once
        (:meth:`repro.krr.solvers.KernelSystemSolver.refit`) and all ``c``
        one-vs-all weight vectors are re-solved in a single multi-RHS
        call, so a λ sweep over a multi-class model costs one compression
        total plus one ULV + one multi-RHS solve per value.

        Parameters
        ----------
        lam:
            The new ridge parameter.

        Returns
        -------
        OneVsAllClassifier
            ``self``, refitted at ``lam``.
        """
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError("classifier must be fitted before refit()")
        if self._targets_perm is None:
            raise RuntimeError(
                "no training targets available for refit (artifact saved "
                "by an older version); call fit() instead")
        lam = float(lam)
        self.solver_.refit(lam)
        weights = np.ascontiguousarray(
            self.solver_.solve(self._targets_perm), dtype=np.float64)
        # λ and weights adopted together, only after refit + solve succeed.
        self.lam = lam
        self.weights_ = weights
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def decision_function(self, X_test: np.ndarray, block_size: int = 1024) -> np.ndarray:
        """Per-class confidence scores ``|w_c . K'(x')|`` (paper's Section 2)."""
        if self.weights_ is None:
            raise RuntimeError("classifier must be fitted before predicting")
        X_test = check_array_2d(X_test, "X_test")
        scores = np.empty((X_test.shape[0], self.classes_.size), dtype=np.float64)
        for rows, sq in blockwise_sq_dists(X_test, self.X_train_, block_size=block_size):
            scores[rows] = self.kernel._evaluate_sq(sq) @ self.weights_
        return scores

    def predict(self, X_test: np.ndarray) -> np.ndarray:
        """Predicted class labels: argmax of the per-class decision scores.

        The paper's Section 2 writes the per-class confidence as
        ``|w(c) . K'(i)|``; we use the signed score, which coincides with
        the usual one-vs-all rule and with the sign rule in the two-class
        case (a strongly negative score indicates the point does *not*
        belong to the class, so its absolute value should not be rewarded).
        """
        raw = self.decision_function(X_test)
        return self.classes_[np.argmax(raw, axis=1)]

    def score(self, X_test: np.ndarray, y_test: np.ndarray) -> float:
        """Multi-class accuracy."""
        y_test = np.asarray(y_test)
        from .metrics import accuracy
        return accuracy(y_test, self.predict(X_test))

    # ---------------------------------------------------------- persistence
    def save(self, path: str, metadata: Optional[dict] = None,
             include_factorization: bool = True):
        """Persist the fitted ensemble to a checksummed ``.npz`` artifact.

        See :func:`repro.serving.save_model`.
        """
        from ..serving import save_model
        return save_model(self, path, metadata=metadata,
                          include_factorization=include_factorization)

    @classmethod
    def load(cls, path: str) -> "OneVsAllClassifier":
        """Load an ensemble saved with :meth:`save` (checksum-verified)."""
        from ..serving import load_model_as
        return load_model_as(path, cls)

    @property
    def report(self):
        """The :class:`repro.krr.SolveReport` of the shared training solve."""
        if self.solver_ is None:
            raise RuntimeError("classifier must be fitted first")
        return self.solver_.report
