"""Kernel ridge regression for real-valued targets.

The paper is about classification, but the training stage (Step 2 of
Algorithm 1) is identical for regression — only Step 4 (thresholding)
disappears.  Having a regressor alongside the classifier lets the test
suite check the solvers against analytic regression solutions and makes the
library usable for the broader class of kernel methods mentioned in the
introduction.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..clustering.api import ClusteringResult, cluster
from ..config import ClusteringOptions
from ..kernels.base import Kernel, get_kernel
from ..kernels.distance import blockwise_sq_dists
from ..utils.validation import (check_array_2d, check_non_negative,
                                check_positive, check_same_dimension,
                                check_vector)
from .solvers import KernelSystemSolver, build_training_solver


class KernelRidgeRegressor:
    """Kernel ridge regression with interchangeable hierarchical solvers.

    Parameters mirror :class:`repro.krr.KernelRidgeClassifier` (including
    the ``workers`` / ``shards`` parallelism knobs — the training stage is
    identical); the target vector ``y`` is real-valued.
    """

    def __init__(
        self,
        h: float = 1.0,
        lam: float = 1.0,
        solver: Union[str, KernelSystemSolver] = "hss",
        clustering: Union[str, ClusteringOptions] = "two_means",
        kernel: Union[str, Kernel, None] = None,
        leaf_size: int = 16,
        seed=0,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        solver_options: Optional[dict] = None,
    ):
        self.h = check_positive(h, "h")
        self.lam = check_non_negative(lam, "lam")
        self.leaf_size = int(leaf_size)
        self.seed = seed
        self.workers = workers
        self.shards = shards
        if isinstance(kernel, Kernel):
            self.kernel = kernel
        elif kernel is None:
            self.kernel = get_kernel("gaussian", h=self.h)
        else:
            self.kernel = get_kernel(kernel, h=self.h)
        self._solver_spec = solver
        self._solver_options = dict(solver_options or {})
        self._clustering_spec = clustering
        self.solver_: Optional[KernelSystemSolver] = None
        self.clustering_: Optional[ClusteringResult] = None
        self.weights_: Optional[np.ndarray] = None
        self.X_train_: Optional[np.ndarray] = None
        #: permuted training targets, kept so λ-only refits can re-solve
        self._y_perm: Optional[np.ndarray] = None

    def _make_solver(self) -> KernelSystemSolver:
        return build_training_solver(self._solver_spec, seed=self.seed,
                                     workers=self.workers, shards=self.shards,
                                     solver_options=self._solver_options)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeRegressor":
        """Fit the regressor on real-valued targets."""
        X = check_array_2d(X, "X")
        y = check_vector(y, "y", length=X.shape[0])
        if isinstance(self._clustering_spec, ClusteringOptions):
            self.clustering_ = cluster(X, options=self._clustering_spec)
        else:
            self.clustering_ = cluster(X, method=self._clustering_spec,
                                       leaf_size=self.leaf_size, seed=self.seed)
        X_perm = self.clustering_.X
        y_perm = self.clustering_.tree.permute_vector(y)
        self.solver_ = self._make_solver()
        self.solver_.fit(X_perm, self.clustering_.tree, self.kernel, self.lam)
        self.weights_ = self.solver_.solve(y_perm)
        self.X_train_ = X_perm
        self._y_perm = y_perm
        # Training is done: release any solver worker threads/processes
        # (a later solver_.solve() re-creates or falls back as needed).
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def refit(self, lam: float) -> "KernelRidgeRegressor":
        """Re-train at a new ridge parameter without recompressing.

        Mirrors :meth:`repro.krr.KernelRidgeClassifier.refit`: the
        solver's λ-independent state is reused and only the factorization
        plus the training solve are redone.

        Parameters
        ----------
        lam:
            The new ridge parameter.

        Returns
        -------
        KernelRidgeRegressor
            ``self``, refitted at ``lam``.
        """
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError("regressor must be fitted before refit()")
        lam = check_non_negative(lam, "lam")
        self.solver_.refit(lam)
        weights = self.solver_.solve(self._y_perm)
        # λ and weights adopted together, only after refit + solve succeed.
        self.lam = lam
        self.weights_ = weights
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def predict(self, X_test: np.ndarray, block_size: int = 1024) -> np.ndarray:
        """Predicted real values for the test points."""
        if self.weights_ is None:
            raise RuntimeError("regressor must be fitted before predicting")
        X_test = check_array_2d(X_test, "X_test")
        check_same_dimension(X_test, self.X_train_, ("X_test", "X_train"))
        out = np.empty(X_test.shape[0], dtype=np.float64)
        for rows, sq in blockwise_sq_dists(X_test, self.X_train_, block_size=block_size):
            out[rows] = self.kernel._evaluate_sq(sq) @ self.weights_
        return out

    def score(self, X_test: np.ndarray, y_test: np.ndarray) -> float:
        """Coefficient of determination (R^2) on a test set."""
        y_test = check_vector(y_test, "y_test")
        pred = self.predict(X_test)
        ss_res = float(np.sum((y_test - pred) ** 2))
        ss_tot = float(np.sum((y_test - y_test.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    @property
    def report(self):
        """The :class:`repro.krr.SolveReport` of the training solve."""
        if self.solver_ is None:
            raise RuntimeError("regressor must be fitted first")
        return self.solver_.report
