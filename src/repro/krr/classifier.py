"""Two-class kernel ridge regression classifier (Algorithm 1 of the paper).

The classifier performs all five steps of Algorithm 1:

0. preprocessing: reorder the training points with a clustering method so
   that nearby points get nearby indices (Section 4),
1. (implicitly) define the kernel matrix of the reordered training data,
2. solve ``(K + lambda I) w = y`` with the selected solver,
3. compute the kernel vector of every test point against the training set,
4. predict ``sign(w . K'(x'))``.

Labels are ±1 as in the paper; :class:`repro.krr.OneVsAllClassifier`
extends this to multi-class problems.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..clustering.api import ClusteringResult, cluster
from ..config import ClusteringOptions
from ..kernels.base import Kernel, get_kernel
from ..kernels.distance import blockwise_sq_dists
from ..utils.validation import (check_array_2d, check_labels_binary,
                                check_non_negative, check_positive,
                                check_same_dimension)
from .solvers import KernelSystemSolver, build_training_solver


class KernelRidgeClassifier:
    """Gaussian kernel ridge regression classifier with ±1 labels.

    Parameters
    ----------
    h:
        Gaussian bandwidth (ignored if an explicit ``kernel`` is given).
    lam:
        Ridge regularization parameter ``lambda``.
    solver:
        Solver name (``"dense"``, ``"hss"``, ``"cg"``) or a pre-constructed
        :class:`repro.krr.solvers.KernelSystemSolver` instance.
    clustering:
        Name of the preprocessing ordering (``"two_means"``, ``"kd"``,
        ``"pca"``, ``"natural"``, ...) or a :class:`ClusteringOptions`.
    kernel:
        Kernel name or :class:`repro.kernels.Kernel` instance;
        default Gaussian with bandwidth ``h``.
    leaf_size:
        Leaf size of the cluster / HSS tree (paper default 16).
    seed:
        Seed controlling the random parts (two-means seeding, HSS sampling).
    workers:
        Worker threads for the training phases when ``solver`` is the
        ``"hss"`` name (the only solver with a threaded training path;
        ignored for ``"dense"`` / ``"cg"`` and for pre-constructed solver
        instances, which carry their own setting).  ``None`` defers to
        ``REPRO_WORKERS`` / serial; see
        :func:`repro.parallel.resolve_workers`.
    shards:
        Worker *processes* for the training phases when ``solver`` is the
        ``"hss"`` name: the training solve then runs through
        :class:`repro.distributed.DistributedSolver`, each process owning
        a subtree of the cluster tree.  ``None`` defers to
        ``REPRO_SHARDS`` (single process when unset); see
        :func:`repro.distributed.resolve_shards`.  Prediction is
        unaffected — the trained weights live in this process either way.
    solver_options:
        Extra keyword arguments forwarded to
        :func:`repro.krr.solvers.build_training_solver` when ``solver`` is
        given by name (e.g. ``hss_options``, or ``grid`` /
        ``collect_factors`` for the sharded path).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import gaussian_mixture
    >>> X, y = gaussian_mixture(n=200, d=4, seed=0)
    >>> clf = KernelRidgeClassifier(h=1.0, lam=1.0, solver="dense")
    >>> _ = clf.fit(X, y)
    >>> acc = (clf.predict(X) == y).mean()
    >>> acc > 0.9
    True
    """

    def __init__(
        self,
        h: float = 1.0,
        lam: float = 1.0,
        solver: Union[str, KernelSystemSolver] = "hss",
        clustering: Union[str, ClusteringOptions] = "two_means",
        kernel: Union[str, Kernel, None] = None,
        leaf_size: int = 16,
        seed=0,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        solver_options: Optional[dict] = None,
    ):
        self.h = check_positive(h, "h")
        self.lam = check_non_negative(lam, "lam")
        self.leaf_size = int(leaf_size)
        self.seed = seed
        self.workers = workers
        self.shards = shards
        if isinstance(kernel, Kernel):
            self.kernel = kernel
        elif kernel is None:
            self.kernel = get_kernel("gaussian", h=self.h)
        else:
            self.kernel = get_kernel(kernel, h=self.h)
        self._solver_spec = solver
        self._solver_options = dict(solver_options or {})
        self._clustering_spec = clustering
        # Fitted state
        self.solver_: Optional[KernelSystemSolver] = None
        self.clustering_: Optional[ClusteringResult] = None
        self.weights_: Optional[np.ndarray] = None
        self.X_train_: Optional[np.ndarray] = None
        #: permuted ±1 training targets, kept so λ-only refits can re-solve
        self._y_perm: Optional[np.ndarray] = None
        #: drift bookkeeping of the last partial_fit (None = never streamed)
        self.stream_info_: Optional[dict] = None

    # ------------------------------------------------------------------ fit
    def _make_solver(self) -> KernelSystemSolver:
        return build_training_solver(self._solver_spec, seed=self.seed,
                                     workers=self.workers, shards=self.shards,
                                     solver_options=self._solver_options)

    def _run_clustering(self, X: np.ndarray) -> ClusteringResult:
        if isinstance(self._clustering_spec, ClusteringOptions):
            return cluster(X, options=self._clustering_spec)
        return cluster(X, method=self._clustering_spec, leaf_size=self.leaf_size,
                       seed=self.seed)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeClassifier":
        """Train on ``(X, y)`` with ±1 labels.

        The data is reordered (Step 0), the training system is factored
        (Step 2) and the weight vector is stored in the permuted ordering,
        together with the permuted training points needed at prediction
        time.
        """
        X = check_array_2d(X, "X")
        y = check_labels_binary(y, "y")
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")

        self.clustering_ = self._run_clustering(X)
        X_perm = self.clustering_.X
        y_perm = self.clustering_.permute_labels(y)

        self.solver_ = self._make_solver()
        self.solver_.fit(X_perm, self.clustering_.tree, self.kernel, self.lam)
        self.weights_ = self.solver_.solve(y_perm)
        self.X_train_ = X_perm
        self._y_perm = y_perm
        self.stream_info_ = None
        # Training is done: release any solver worker threads.  A later
        # solver_.solve() (e.g. re-solving for a new right-hand side)
        # lazily re-creates the pool.
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def refit(self, lam: float) -> "KernelRidgeClassifier":
        """Re-train at a new ridge parameter without recompressing.

        The clustering, the kernel and the solver's λ-independent state
        (the :class:`repro.hss.CompressedKernel` for the HSS path, the
        kernel matrix for the dense path) are reused; only the
        shift-dependent factorization and the training solve are redone,
        so a λ sweep costs one compression plus one cheap refit per value.
        The resulting weights are identical to a cold :meth:`fit` at the
        same ``lam`` (bitwise for the serial solvers).  Also works on a
        model reloaded from an artifact saved by this version (the
        permuted training targets ride in the archive).

        Parameters
        ----------
        lam:
            The new ridge parameter.

        Returns
        -------
        KernelRidgeClassifier
            ``self``, refitted at ``lam``.

        Raises
        ------
        RuntimeError
            If the model is unfitted, the solver does not support
            λ-only refits, or a legacy artifact lacks the training
            targets / a λ-free compression.
        """
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError("classifier must be fitted before refit()")
        if self._y_perm is None:
            raise RuntimeError(
                "no training targets available for refit (artifact saved "
                "by an older version); call fit() instead")
        lam = check_non_negative(lam, "lam")
        self.solver_.refit(lam)
        weights = self.solver_.solve(self._y_perm)
        # Only adopt the new λ and weights together, once both the solver
        # refit and the re-solve succeeded; a failure in either must not
        # leave the model reporting a λ its weights do not have.
        self.lam = lam
        self.weights_ = weights
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    def refit_kernel(self, h, lam: Optional[float] = None
                     ) -> "KernelRidgeClassifier":
        """Re-train at a new bandwidth without redoing the structure.

        The clustering, permutation and — for the HSS path — the H-matrix
        admissibility partition are kernel-independent and stay resident;
        only the kernel-dependent numerics are rebuilt (see
        :meth:`repro.krr.solvers.KernelSystemSolver.refit_kernel`).  The
        resulting weights are identical to a cold :meth:`fit` at the same
        ``(h, lam)`` (bitwise for the serial solvers) at a fraction of the
        cost: this is the *h*-move of a 2-D hyperparameter sweep, sitting
        between the cheap λ-only :meth:`refit` and a full cold fit.

        Parameters
        ----------
        h:
            New bandwidth (same kernel family), or a
            :class:`repro.kernels.Kernel` instance to swap in directly.
        lam:
            Optional new ridge parameter; ``None`` keeps the current one.

        Returns
        -------
        KernelRidgeClassifier
            ``self``, refitted for the new kernel.

        Raises
        ------
        RuntimeError
            If the model is unfitted, the solver does not support kernel
            refits, or a legacy artifact lacks the training targets.
        """
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError(
                "classifier must be fitted before refit_kernel()")
        if self._y_perm is None:
            raise RuntimeError(
                "no training targets available for refit_kernel (artifact "
                "saved by an older version); call fit() instead")
        stream = self.solver_.stream
        if stream is not None and stream.active:
            raise RuntimeError(
                "streamed updates are in effect; the Woodbury corrections "
                "were built against the old kernel and cannot survive a "
                "kernel change — call recompress() first")
        if isinstance(h, Kernel):
            kernel = h
            new_h = float(getattr(kernel, "h", self.h))
        else:
            new_h = check_positive(h, "h")
            kernel = get_kernel(self.kernel.name, h=new_h)
        new_lam = self.lam if lam is None else check_non_negative(lam, "lam")
        self.solver_.refit_kernel(kernel, new_lam)
        weights = self.solver_.solve(self._y_perm)
        # Adopt kernel, h, λ and weights together only after both the
        # solver rebuild and the re-solve succeeded (same invariant as
        # refit()).
        self.kernel = kernel
        self.h = new_h
        self.lam = new_lam
        self.weights_ = weights
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()
        return self

    # ------------------------------------------------------------- streaming
    def _check_streamable(self) -> None:
        if self.solver_ is None or self.weights_ is None:
            raise RuntimeError(
                "classifier must be fitted before streaming updates")

    def _validate_update(self, X_new, y_new, remove):
        """Shared add/remove validation; returns ``(X_new, y_add, idx)``."""
        if (X_new is None) != (y_new is None):
            raise ValueError("X_new and y_new must be given together")
        y_add = None
        if X_new is not None:
            X_new = check_array_2d(X_new, "X_new")
            check_same_dimension(X_new, self.X_train_, ("X_new", "X_train"))
        idx = None
        if remove is not None:
            raw = np.asarray(remove, dtype=np.intp).ravel()
            idx = np.unique(raw)
            if idx.size != raw.size:
                raise ValueError("remove contains duplicate indices")
            n = self.X_train_.shape[0]
            if idx.size and (idx[0] < 0 or idx[-1] >= n):
                raise ValueError(
                    f"remove indices must lie in [0, {n}), got "
                    f"[{idx[0]}, {idx[-1]}]")
        if X_new is None and (idx is None or not idx.size):
            raise ValueError(
                "nothing to update: pass X_new/y_new and/or remove")
        return X_new, y_add, idx

    def _apply_stream_update(self, X_new, y_eff, idx):
        """Mutate the solver and re-solve; roll the stream back on failure."""
        prev = None
        if self.solver_.stream is not None:
            prev = self.solver_.stream.state_arrays()
        try:
            self.solver_.partial_fit(X_add=X_new, remove=idx)
            return self.solver_.solve(y_eff)
        except BaseException:
            stream = self.solver_.stream
            if stream is not None:
                if prev is not None:
                    stream.restore_state(**prev)
                else:
                    stream.restore_state(
                        np.arange(stream.n_base, dtype=np.intp),
                        np.empty((0, stream.X_base.shape[1])))
            raise

    def _finish_stream_update(self, stream, weights, y_eff) -> None:
        """Adopt the updated state and record drift bookkeeping."""
        self.X_train_ = stream.X_effective
        self.weights_ = weights
        budget = stream.budget
        residual = None
        if budget.residual_tol > 0:
            residual = stream.residual_estimate(weights, y_eff)
        breached, reason = budget.check(stream, residual)
        self.stream_info_ = dict(stream.drift_stats())
        self.stream_info_.update(
            {"breached": breached, "breach_reason": reason,
             "residual": residual})
        close = getattr(self.solver_, "close", None)
        if close is not None:
            close()

    def partial_fit(self, X_new=None, y_new=None, remove=None,
                    budget=None) -> "KernelRidgeClassifier":
        """Stream rows into / out of the fitted model without refitting.

        Removals (``remove``, indices into the *current* training-set
        ordering — the rows of ``X_train_``) are applied first, then
        ``(X_new, y_new)`` rows are appended; both land as Woodbury
        corrections around the existing factors and the weight vector is
        re-solved against the updated system (see
        :class:`repro.hss.StreamingULVSolver`).  ``stream_info_`` records
        the resulting correction rank and whether the drift budget is
        breached — a breached budget calls for :meth:`recompress`.

        Parameters
        ----------
        X_new, y_new:
            Rows to append and their ±1 labels (given together).
        remove:
            Indices into the current training ordering to drop.
        budget:
            Optional :class:`repro.hss.DriftBudget` overriding the
            stream's thresholds.

        Returns
        -------
        KernelRidgeClassifier
            ``self``, serving the updated training set.
        """
        self._check_streamable()
        if self._y_perm is None:
            raise RuntimeError(
                "no training targets available for partial_fit (artifact "
                "saved by an older version); call fit() instead")
        X_new, y_add, idx = self._validate_update(X_new, y_new, remove)
        if X_new is not None:
            y_add = check_labels_binary(y_new, "y_new")
            if y_add.shape[0] != X_new.shape[0]:
                raise ValueError(
                    f"X_new has {X_new.shape[0]} rows but y_new has "
                    f"{y_add.shape[0]} entries")
        y_eff = self._y_perm
        if idx is not None and idx.size:
            y_eff = np.delete(y_eff, idx, axis=0)
        if y_add is not None:
            y_eff = np.concatenate([y_eff, y_add])
        weights = self._apply_stream_update(X_new, y_eff, idx)
        stream = self.solver_.stream
        if budget is not None:
            stream.budget = budget
        self._y_perm = y_eff
        self._finish_stream_update(stream, weights, y_eff)
        return self

    def recompress(self) -> "KernelRidgeClassifier":
        """Cold-refit on the current effective training set.

        Re-clusters, recompresses and re-factors from scratch, dropping
        every streamed correction.  Because the clustering is
        deterministic in the row order, the result is bitwise identical
        to a cold :meth:`fit` on ``(X_train_, labels)`` in the same row
        order — this is the drift-budget escape hatch, and what the
        serving tier hot-swaps in after a breach.
        """
        self._check_streamable()
        if self._y_perm is None:
            raise RuntimeError(
                "no training targets available for recompress (artifact "
                "saved by an older version); call fit() instead")
        from ..hss.streaming import record_recompression
        self.fit(self.X_train_.copy(), self._y_perm.copy())
        record_recompression()
        return self

    # -------------------------------------------------------------- predict
    def decision_function(self, X_test: np.ndarray, block_size: int = 1024) -> np.ndarray:
        """Real-valued scores ``w . K'(x')`` for every test point (Step 3/4).

        Computed in row blocks so the ``m x n`` test kernel matrix is never
        fully materialised.
        """
        if self.weights_ is None:
            raise RuntimeError("classifier must be fitted before predicting")
        X_test = check_array_2d(X_test, "X_test")
        check_same_dimension(X_test, self.X_train_, ("X_test", "X_train"))
        scores = np.empty(X_test.shape[0], dtype=np.float64)
        for rows, sq in blockwise_sq_dists(X_test, self.X_train_, block_size=block_size):
            scores[rows] = self.kernel._evaluate_sq(sq) @ self.weights_
        return scores

    def predict(self, X_test: np.ndarray) -> np.ndarray:
        """Predicted ±1 labels (Step 4: the sign of the decision values)."""
        scores = self.decision_function(X_test)
        labels = np.where(scores >= 0.0, 1.0, -1.0)
        return labels

    def score(self, X_test: np.ndarray, y_test: np.ndarray) -> float:
        """Prediction accuracy on a labelled test set (Eq. (2.1))."""
        y_test = check_labels_binary(y_test, "y_test")
        from .metrics import accuracy
        return accuracy(y_test, self.predict(X_test))

    # ---------------------------------------------------------- persistence
    def save(self, path: str, metadata: Optional[dict] = None,
             include_factorization: bool = True):
        """Persist the fitted classifier to a checksummed ``.npz`` artifact.

        See :func:`repro.serving.save_model`; the returned
        :class:`repro.serving.ModelArtifact` describes the written file.
        """
        from ..serving import save_model
        return save_model(self, path, metadata=metadata,
                          include_factorization=include_factorization)

    @classmethod
    def load(cls, path: str) -> "KernelRidgeClassifier":
        """Load a classifier saved with :meth:`save` (checksum-verified).

        The reloaded model reproduces the original's predictions exactly.
        """
        from ..serving import load_model_as
        return load_model_as(path, cls)

    # ------------------------------------------------------------ reporting
    @property
    def report(self):
        """The :class:`repro.krr.SolveReport` of the training solve."""
        if self.solver_ is None:
            raise RuntimeError("classifier must be fitted first")
        return self.solver_.report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        solver = (self._solver_spec if isinstance(self._solver_spec, str)
                  else type(self._solver_spec).__name__)
        return (f"KernelRidgeClassifier(h={self.h}, lam={self.lam}, "
                f"solver={solver!r}, clustering={self._clustering_spec!r})")
