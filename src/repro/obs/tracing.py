"""Span-based tracing: nested phase trees with wall-clock timings.

A span is one timed region of work (``trace.span("hss.build")``).  Spans
opened while another span is active on the same thread become children, so
a pipeline run produces a tree mirroring the call structure::

    train_total                 1.742s
      kernel.compress           1.381s
        h_construction          0.612s
        hss_sampling            0.655s
      ulv_factorization         0.236s

The tracer keeps a bounded ring buffer of completed *root* spans (a root is
a span opened with no active parent), queryable via
:meth:`Tracer.recent_roots`.  Span bookkeeping is thread-local, so
concurrent threads trace independent trees without locking each other.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "trace"]


@dataclass
class Span:
    """One timed region of work, possibly with nested child spans.

    Parameters
    ----------
    name:
        Span name, conventionally dotted (``"hss.build"``).
    start:
        ``time.perf_counter()`` at span entry.
    elapsed:
        Wall seconds from entry to exit (0 while the span is open).
    children:
        Spans opened (and closed) while this span was active.
    """

    name: str
    start: float = 0.0
    elapsed: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def as_dict(self) -> Dict:
        """Plain-dict form of the span tree (JSON-serializable)."""
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "children": [c.as_dict() for c in self.children],
        }

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def format(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the span tree."""
        lines = [f"{'  ' * indent}{self.name:<32s} {self.elapsed * 1e3:10.3f} ms"]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


class Tracer:
    """Thread-local span stack plus a shared ring buffer of finished roots.

    Parameters
    ----------
    max_roots:
        Number of most recent completed root spans retained for
        :meth:`recent_roots`.
    """

    def __init__(self, max_roots: int = 256):
        self._local = threading.local()
        self._roots: "deque[Span]" = deque(maxlen=int(max_roots))
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a span around the ``with`` body; nests under any open span.

        Parameters
        ----------
        name:
            Span name, conventionally dotted (``"serving.batch"``).
        """
        stack = self._stack()
        node = Span(name=name, start=time.perf_counter())
        stack.append(node)
        try:
            yield node
        finally:
            node.elapsed = time.perf_counter() - node.start
            stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                with self._lock:
                    self._roots.append(node)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def recent_roots(self, n: Optional[int] = None) -> List[Span]:
        """The most recent completed root spans, oldest first.

        Parameters
        ----------
        n:
            Number of roots to return (``None`` → all retained).
        """
        with self._lock:
            roots = list(self._roots)
        return roots if n is None else roots[-int(n):]

    def clear(self) -> None:
        """Drop all retained root spans (open spans are unaffected)."""
        with self._lock:
            self._roots.clear()


#: The process-wide tracer used by :func:`repro.utils.timing.TimingLog.phase`
#: and the serving/pipeline instrumentation.
trace = Tracer()
