"""``repro.obs`` — unified metrics, span tracing and scrape-ready exporters.

One dependency-free telemetry subsystem threaded through the whole stack:

* **Metrics** — a process-wide :class:`MetricsRegistry` of thread-safe
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` metrics (fixed
  log-scale buckets, so shard snapshots merge exactly), with labeled
  families for per-model / per-shard / per-phase breakdowns.  Every layer
  records into :func:`global_registry`: phase timings
  (``repro_phase_seconds_total``), kernel evaluation counters, transport
  bytes, serving latency histograms.
* **Tracing** — ``trace.span("hss.build")`` context managers build nested
  phase trees (:class:`Span`), and the serving layer stamps each request
  with a :class:`RequestRecord` status trail.
* **Exporters** — ``registry.snapshot()`` (plain dict), ``to_json()``,
  ``to_prometheus()`` (text exposition) and :func:`dump_metrics`; the
  minimal :func:`parse_prometheus` parser round-trips the exposition in
  tests and CI.

Quick start::

    import repro.obs as obs

    reg = obs.global_registry()
    served = reg.counter("myapp_served_total", "Requests served")
    served.inc()
    with obs.trace.span("work"):
        ...
    print(reg.to_prometheus())

Disable process-wide with ``obs.set_enabled(False)`` (or the
``REPRO_OBS_DISABLED=1`` environment variable): :func:`global_registry`
then hands out no-op metrics, so instrumented code runs unchanged.

See ``docs/observability.md`` for the metric catalog.
"""

from .export import (
    configured_dump_path,
    dump_metrics,
    parse_prometheus,
    snapshot_to_prometheus,
    summarize_snapshot,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    global_registry,
    is_enabled,
    merge_snapshots,
    set_enabled,
)
from .requests_log import RequestRecord, RequestTrail
from .tracing import Span, Tracer, trace


def configure(enabled=None, dump_path=None) -> None:
    """Apply runtime-config observability settings process-wide.

    The hook the ``repro`` CLI (and any embedding application) uses to
    thread a :class:`repro.runtime.RuntimeConfig`'s ``[obs]`` section into
    this subsystem: the enable switch maps to :func:`set_enabled` and the
    dump path becomes the default destination of :func:`dump_metrics`.

    Parameters
    ----------
    enabled:
        ``True`` / ``False`` flips metrics collection via
        :func:`set_enabled`; ``None`` leaves the current state.
    dump_path:
        Default path for :func:`dump_metrics` calls without an explicit
        path (``""`` clears it back to the ``REPRO_METRICS_DUMP``
        environment fallback); ``None`` leaves the current value.
    """
    from . import export as _export

    if enabled is not None:
        set_enabled(bool(enabled))
    if dump_path is not None:
        _export._configured_dump_path = str(dump_path)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "RequestRecord",
    "RequestTrail",
    "Span",
    "Tracer",
    "configure",
    "configured_dump_path",
    "dump_metrics",
    "global_registry",
    "is_enabled",
    "merge_snapshots",
    "parse_prometheus",
    "record_phase",
    "set_enabled",
    "snapshot_to_prometheus",
    "summarize_snapshot",
    "trace",
]

_PHASE_HELP = "Cumulative wall-clock seconds per algorithmic phase"


def record_phase(name: str, seconds: float) -> None:
    """Record phase wall-clock into ``repro_phase_seconds_total{phase=...}``.

    The hook behind :meth:`repro.utils.timing.TimingLog.add`; call it
    directly for phase-shaped work that does not go through a
    :class:`~repro.utils.timing.TimingLog`.

    Parameters
    ----------
    name:
        Phase name (becomes the ``phase`` label value).
    seconds:
        Wall-clock seconds to add.
    """
    global_registry().counter(
        "repro_phase_seconds_total", _PHASE_HELP, labelnames=("phase",)
    ).labels(phase=name).inc(float(seconds))
