"""Exporters: Prometheus text exposition, JSON dumps and compact summaries.

The Prometheus renderer follows the text exposition format (``# HELP`` /
``# TYPE`` headers, ``name{labels} value`` samples, histograms expanded to
cumulative ``_bucket{le=...}`` plus ``_sum`` / ``_count``).  A minimal
:func:`parse_prometheus` parser round-trips that output in tests and CI so
silent metric renames or format regressions fail loudly.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Dict, Optional, Tuple

from .registry import DEFAULT_BUCKETS, _parse_sample_name, _serialize_labels

__all__ = [
    "snapshot_to_prometheus",
    "parse_prometheus",
    "dump_metrics",
    "summarize_snapshot",
]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def snapshot_to_prometheus(snapshot: Dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Parameters
    ----------
    snapshot:
        A dict from :meth:`repro.obs.MetricsRegistry.snapshot` (or
        ``local_snapshot``).

    Returns
    -------
    str
        The exposition text, newline-terminated.
    """
    help_map = snapshot.get("help", {})
    bounds = snapshot.get("bounds", list(DEFAULT_BUCKETS))
    lines = []
    headered = set()

    def header(name: str, kind: str) -> None:
        if name in headered:
            return
        headered.add(name)
        text = help_map.get(name)
        if text:
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")

    for kind_key, kind in (("counters", "counter"), ("gauges", "gauge")):
        for sample in sorted(snapshot.get(kind_key, {})):
            name, _ = _parse_sample_name(sample)
            header(name, kind)
            lines.append(f"{sample} {_format_value(snapshot[kind_key][sample])}")

    for sample in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][sample]
        name, labels = _parse_sample_name(sample)
        header(name, "histogram")
        cumulative = 0
        for bound, count in zip(list(bounds) + [math.inf], hist["buckets"]):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(bound)
            lines.append(
                f"{name}_bucket{_serialize_labels(bucket_labels)} {cumulative}"
            )
        suffix = _serialize_labels(labels)
        lines.append(f"{name}_sum{suffix} {_format_value(hist['sum'])}")
        lines.append(f"{name}_count{suffix} {hist['count']}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition into ``{serialized_sample: value}``.

    A deliberately minimal parser: enough to round-trip
    :func:`snapshot_to_prometheus` output and to assert in CI that the
    export is well-formed.  Raises :class:`ValueError` on any line that is
    neither a comment nor a valid sample.

    Parameters
    ----------
    text:
        Prometheus text-format exposition.

    Returns
    -------
    dict
        Mapping of serialized sample name (``name{k="v"}``) to value.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        labels = {}
        if m.group("labels"):
            matched_len = 0
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels[lm.group(1)] = (
                    lm.group(2).replace(r"\"", '"').replace(r"\\", "\\")
                )
                matched_len = lm.end()
            leftover = m.group("labels")[matched_len:].strip(" ,")
            if leftover:
                raise ValueError(
                    f"malformed labels on line {lineno}: {line!r}"
                )
        raw = m.group("value")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        else:
            value = float(raw)  # raises ValueError on garbage
        samples[m.group("name") + _serialize_labels(labels)] = value
    return samples


def summarize_snapshot(snapshot: Dict) -> Dict:
    """Compact summary of a snapshot for embedding in BENCH json.

    Counters and gauges pass through; each histogram collapses to
    ``{"count", "sum", "p50", "p95"}`` (percentiles are upper bucket
    bounds of the shared table).

    Parameters
    ----------
    snapshot:
        A dict from :meth:`repro.obs.MetricsRegistry.snapshot`.

    Returns
    -------
    dict
        ``{"counters", "gauges", "histograms"}`` with collapsed histograms.
    """
    bounds = list(snapshot.get("bounds", DEFAULT_BUCKETS))

    def pct(hist: Dict, q: float) -> float:
        total = hist["count"]
        if total == 0:
            return 0.0
        target = max(1, math.ceil(total * q / 100.0))
        running = 0
        for i, c in enumerate(hist["buckets"]):
            running += c
            if running >= target:
                return bounds[i] if i < len(bounds) else math.inf
        return math.inf  # pragma: no cover - counts always sum to total

    out: Dict = {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {},
    }
    for sample, hist in snapshot.get("histograms", {}).items():
        out["histograms"][sample] = {
            "count": hist["count"],
            "sum": hist["sum"],
            "p50": pct(hist, 50.0),
            "p95": pct(hist, 95.0),
        }
    return out


#: process-wide default dump destination, set by :func:`repro.obs.configure`
_configured_dump_path = ""


def configured_dump_path() -> str:
    """The process's default metrics dump destination.

    Returns
    -------
    str
        The path set by :func:`repro.obs.configure`, else the
        ``REPRO_METRICS_DUMP`` environment variable, else ``""``.
    """
    return (_configured_dump_path
            or os.environ.get("REPRO_METRICS_DUMP", "").strip())


def dump_metrics(path: Optional[str] = None, registry=None) -> str:
    """Write the registry's merged snapshot to ``path`` and return the path.

    The format follows the extension: ``.prom`` / ``.txt`` → Prometheus
    text exposition, anything else → indented JSON.  The write is atomic
    (temp file + ``os.replace``).

    Parameters
    ----------
    path:
        Destination file path; ``None`` falls back to
        :func:`configured_dump_path` (set via :func:`repro.obs.configure`
        — e.g. from a ``repro.toml``'s ``obs.dump_path`` — or the
        ``REPRO_METRICS_DUMP`` environment variable) and raises
        :class:`ValueError` when neither is configured.
    registry:
        Registry to export (``None`` → the global registry).

    Returns
    -------
    str
        The resolved destination path, for chaining.
    """
    from . import global_registry

    if path is None:
        path = configured_dump_path()
        if not path:
            raise ValueError(
                "dump_metrics() needs a path: none given and no default "
                "configured (repro.obs.configure(dump_path=...) / "
                "REPRO_METRICS_DUMP)")
    if registry is None:
        registry = global_registry()
    ext = os.path.splitext(path)[1].lower()
    if ext in (".prom", ".txt"):
        payload = registry.to_prometheus()
    else:
        payload = json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
    os.replace(tmp, path)
    return path
