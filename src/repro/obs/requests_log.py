"""Per-request status trail for the serving layer.

Every request admitted by :class:`repro.serving.PredictionService` gets a
process-unique ``request_id`` and a :class:`RequestRecord` tracking its
life cycle — enqueue, batch assembly, evaluation, completion — with a
``perf_counter`` timestamp at each transition.  Completed records land in
a bounded :class:`RequestTrail` ring buffer, queryable via
``service.recent_requests()``, so "what happened to the last N requests"
is answerable without logs.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["RequestRecord", "RequestTrail"]

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Next process-unique request id (monotonically increasing)."""
    return next(_request_ids)


@dataclass
class RequestRecord:
    """Life-cycle record of one serving request.

    Timestamps are ``time.perf_counter()`` values; latencies are their
    differences (``t_complete - t_enqueue`` is the request latency).

    Parameters
    ----------
    request_id:
        Process-unique id assigned at submission.
    status:
        One of ``"queued"``, ``"batched"``, ``"completed"``, ``"failed"``.
    t_enqueue:
        When the request entered the service queue.
    t_batch:
        When the dispatcher pulled it into a micro-batch (0 until then).
    t_complete:
        When its future resolved (0 until then).
    batch_size:
        Size of the micro-batch it was evaluated in (0 until batched).
    model:
        Name of the model that served the request (``""`` when the
        service carries no model label).
    model_version:
        Monotonic store revision of the model version that served the
        request (0 when unversioned).  Under blue/green hot-swap the
        trail shows a clean old→new boundary in this field.
    error:
        ``repr`` of the exception for failed requests, else ``None``.
    """

    request_id: int
    status: str = "queued"
    t_enqueue: float = 0.0
    t_batch: float = 0.0
    t_complete: float = 0.0
    batch_size: int = 0
    model: str = ""
    model_version: int = 0
    error: Optional[str] = None

    @property
    def latency(self) -> float:
        """End-to-end seconds (0 until the request completes)."""
        if self.t_complete and self.t_enqueue:
            return self.t_complete - self.t_enqueue
        return 0.0

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued before batch assembly (0 until batched)."""
        if self.t_batch and self.t_enqueue:
            return self.t_batch - self.t_enqueue
        return 0.0

    def as_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable)."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "t_enqueue": self.t_enqueue,
            "t_batch": self.t_batch,
            "t_complete": self.t_complete,
            "batch_size": self.batch_size,
            "model": self.model,
            "model_version": self.model_version,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "error": self.error,
        }


class RequestTrail:
    """Bounded, thread-safe ring buffer of finished request records.

    Parameters
    ----------
    capacity:
        Number of most recent records retained.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("trail capacity must be >= 1")
        self._records: "deque[RequestRecord]" = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def append(self, record: RequestRecord) -> None:
        """Add a finished record (evicting the oldest at capacity).

        Parameters
        ----------
        record:
            The completed (or failed) request record.
        """
        with self._lock:
            self._records.append(record)

    def recent(self, n: Optional[int] = None) -> List[RequestRecord]:
        """The most recent records, oldest first.

        Parameters
        ----------
        n:
            Number of records to return (``None`` → all retained).
        """
        with self._lock:
            records = list(self._records)
        return records if n is None else records[-int(n):]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
