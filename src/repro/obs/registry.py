"""Process-wide metrics registry: counters, gauges and mergeable histograms.

The registry is the single accumulation point for everything the process
does — phase wall-clock, kernel evaluations, transport bytes, serving
latencies.  Three design constraints shape it:

* **Dependency-free.**  Only the standard library; ``repro.obs`` sits below
  every other ``repro`` package so even ``repro.utils.timing`` can import it.
* **Thread-safe and cheap.**  Each metric owns one lock; an increment is a
  lock/add/unlock.  Hot paths hold on to metric (or labeled-child) handles
  so no dictionary lookup happens per event.
* **Exactly mergeable.**  Histograms use one fixed, process-independent
  bucket boundary table (:data:`DEFAULT_BUCKETS`), so snapshots taken on
  different worker processes merge by plain elementwise integer addition —
  no re-binning, no approximation.

Distributed runs ship worker-local snapshots back to the coordinator
(see :meth:`MetricsRegistry.absorb`), which stores the *latest cumulative*
snapshot per shard; :meth:`MetricsRegistry.snapshot` then presents one
cluster view with a ``shard`` label on every remote sample.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "global_registry",
    "set_enabled",
    "is_enabled",
    "merge_snapshots",
]

#: Shared histogram bucket upper bounds: ``10**(e/4)`` for ``e`` in
#: ``range(-24, 17)`` — a quarter-decade grid from 1 microsecond to 10 000
#: (seconds, rows, bytes...).  Every histogram in every process uses this
#: table, which is what makes shard snapshot merging exact.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** (e / 4.0) for e in range(-24, 17))


def _serialize_labels(labels: Mapping[str, str]) -> str:
    """Render a label mapping as a Prometheus-style suffix (sorted keys)."""
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count.

    Parameters
    ----------
    name:
        Metric family name (by convention ends in ``_total``).
    labels:
        Fixed label key/value mapping of this child (empty for an
        unlabeled metric).
    """

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current accumulated count."""
        with self._lock:
            return self._value

    def _sample(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (pool sizes, generations, ...).

    Parameters
    ----------
    name:
        Metric family name.
    labels:
        Fixed label key/value mapping of this child.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value

    def _sample(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram of observed values.

    All histograms share :data:`DEFAULT_BUCKETS`, so two histograms of the
    same name — possibly observed in different processes — merge exactly by
    adding bucket counts.  Observations below the first bound land in
    bucket 0; observations above the last bound land in the implicit
    ``+Inf`` bucket.

    Parameters
    ----------
    name:
        Metric family name.
    labels:
        Fixed label key/value mapping of this child.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._counts = [0] * (len(DEFAULT_BUCKETS) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # log10(v)*4 inverts the 10**(e/4) bucket grid; math.ceil because
        # bucket bounds are *upper* bounds (v <= bound).
        if value <= DEFAULT_BUCKETS[0]:
            idx = 0
        elif value > DEFAULT_BUCKETS[-1]:
            idx = len(DEFAULT_BUCKETS)
        else:
            idx = int(math.ceil(math.log10(value) * 4.0)) + 24
            # Guard the float boundary: ensure v really is <= bounds[idx].
            while idx > 0 and value <= DEFAULT_BUCKETS[idx - 1]:
                idx -= 1
            while value > DEFAULT_BUCKETS[idx]:
                idx += 1
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (upper bucket bound), ``q`` in [0, 100]."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        target = max(1, math.ceil(total * q / 100.0))
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= target:
                return DEFAULT_BUCKETS[i] if i < len(DEFAULT_BUCKETS) else math.inf
        return math.inf  # pragma: no cover - unreachable

    def _sample(self) -> Dict[str, object]:
        with self._lock:
            return {
                "buckets": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class _LabeledFamily:
    """Get-or-create container of labeled children of one metric family."""

    def __init__(self, name: str, cls, labelnames: Tuple[str, ...]):
        self.name = name
        self.cls = cls
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """Return (creating if needed) the child with the given label values."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self.cls(self.name, dict(zip(self.labelnames, key)))
                self._children[key] = child
            return child

    def _iter_children(self) -> Iterable[object]:
        with self._lock:
            return list(self._children.values())


class MetricsRegistry:
    """Thread-safe registry of named metrics with snapshot/merge/export.

    Metrics are created lazily by :meth:`counter`, :meth:`gauge` and
    :meth:`histogram` — repeated calls with the same name return the same
    object, so call sites do not need to coordinate registration.  Passing
    ``labelnames`` returns a family whose ``.labels(k=v)`` children are the
    actual counters; hot paths should cache the child handle.

    Remote (worker) snapshots are attached with :meth:`absorb` and appear
    in :meth:`snapshot` / exporters with a ``shard`` label.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._remote: Dict[str, Dict] = {}
        self._remote_lock = threading.Lock()

    # ----------------------------------------------------------- registration
    def _get_or_create(self, name, cls, help, labelnames):
        labelnames = tuple(labelnames or ())
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                want_family = bool(labelnames)
                is_family = isinstance(existing, _LabeledFamily)
                if want_family != is_family or (
                    is_family and existing.labelnames != labelnames
                ) or (getattr(existing, "cls", type(existing)) is not cls):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different type or labels"
                    )
                return existing
            metric = _LabeledFamily(name, cls, labelnames) if labelnames else cls(name)
            self._metrics[name] = metric
            if help:
                self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Get or create a :class:`Counter` (or labeled counter family).

        Parameters
        ----------
        name:
            Metric family name; by convention counters end in ``_total``.
        help:
            One-line description used in the Prometheus exposition.
        labelnames:
            Label keys; when non-empty a family is returned and children
            are obtained via ``family.labels(key=value)``.
        """
        return self._get_or_create(name, Counter, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Get or create a :class:`Gauge` (or labeled gauge family).

        Parameters
        ----------
        name:
            Metric family name.
        help:
            One-line description used in the Prometheus exposition.
        labelnames:
            Label keys; when non-empty a family is returned.
        """
        return self._get_or_create(name, Gauge, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Get or create a :class:`Histogram` (or labeled histogram family).

        Parameters
        ----------
        name:
            Metric family name.
        help:
            One-line description used in the Prometheus exposition.
        labelnames:
            Label keys; when non-empty a family is returned.
        """
        return self._get_or_create(name, Histogram, help, labelnames)

    # -------------------------------------------------------------- snapshots
    def _iter_samples(self) -> Iterable[object]:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, _LabeledFamily):
                for child in metric._iter_children():
                    yield child
            else:
                yield metric

    def local_snapshot(self) -> Dict:
        """Snapshot of this process's own metrics (no absorbed remotes).

        Returns a plain, JSON-serializable dict with ``counters`` /
        ``gauges`` mapping serialized sample names to values, and
        ``histograms`` mapping names to ``{"buckets", "sum", "count"}``.
        The shared bucket bounds are recorded once under ``"bounds"``.
        """
        snap: Dict = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "bounds": list(DEFAULT_BUCKETS),
            "help": dict(self._help),
        }
        for metric in self._iter_samples():
            key = metric.name + _serialize_labels(metric.labels)
            if metric.kind == "counter":
                snap["counters"][key] = metric._sample()
            elif metric.kind == "gauge":
                snap["gauges"][key] = metric._sample()
            else:
                snap["histograms"][key] = metric._sample()
        return snap

    def absorb(self, key: str, snapshot: Dict) -> None:
        """Attach (replace) a remote process's cumulative snapshot.

        Workers ship their *cumulative* local snapshot on every
        ``fit``/``refit``/``collect`` reply; the registry keeps only the
        most recent snapshot per ``key``, so repeated absorption never
        double-counts.

        Parameters
        ----------
        key:
            Identity of the remote process (shard id as a string).
        snapshot:
            A dict produced by :meth:`local_snapshot` on the remote side.
        """
        with self._remote_lock:
            self._remote[str(key)] = snapshot

    def remote_keys(self) -> List[str]:
        """Shard keys with an absorbed snapshot, sorted."""
        with self._remote_lock:
            return sorted(self._remote)

    def snapshot(self) -> Dict:
        """Merged cluster view: local metrics plus absorbed remote snapshots.

        Remote samples gain a ``shard="<key>"`` label so per-shard
        breakdowns survive the merge; identical remote sample names from
        different shards stay distinct.
        """
        merged = self.local_snapshot()
        with self._remote_lock:
            remotes = dict(self._remote)
        for shard, snap in sorted(remotes.items()):
            merged = merge_snapshots(merged, snap, extra_labels={"shard": shard})
        return merged

    def to_json(self, indent: Optional[int] = None) -> str:
        """Merged snapshot serialized as JSON text.

        Parameters
        ----------
        indent:
            Passed through to :func:`json.dumps`.
        """
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Merged snapshot rendered in the Prometheus text exposition format."""
        from .export import snapshot_to_prometheus

        return snapshot_to_prometheus(self.snapshot())

    def reset(self) -> None:
        """Drop every metric and absorbed remote snapshot."""
        with self._lock:
            self._metrics.clear()
            self._help.clear()
        with self._remote_lock:
            self._remote.clear()


class _NullMetric:
    """No-op stand-in for any metric; every recording method does nothing."""

    name = "null"
    labels: Dict[str, str] = {}

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels_(self, **labels):  # pragma: no cover - alias, unused
        return self

    def labels(self, **labels) -> "_NullMetric":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def percentile(self, q: float) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """A registry whose metrics are no-ops (used when telemetry is disabled).

    Handles returned from :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` accept all recording calls and discard them, so
    instrumented code runs unchanged at near-zero cost.
    """

    def __init__(self):
        super().__init__()

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Return the shared no-op metric (see class docstring).

        Parameters
        ----------
        name:
            Ignored.
        help:
            Ignored.
        labelnames:
            Ignored.
        """
        return _NULL_METRIC

    gauge = counter
    histogram = counter


def _parse_sample_name(sample: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name{k="v",...}`` into (name, labels dict)."""
    if "{" not in sample:
        return sample, {}
    name, _, rest = sample.partition("{")
    rest = rest.rstrip("}")
    labels: Dict[str, str] = {}
    if rest:
        # Labels were serialized by _serialize_labels: no embedded commas
        # in values beyond escaped quotes — split naively and unescape.
        for part in rest.split('",'):
            k, _, v = part.partition('="')
            labels[k.strip()] = v.rstrip('"').replace(r"\"", '"').replace(r"\\", "\\")
    return name, labels


def _relabel(sample: str, extra: Mapping[str, str]) -> str:
    name, labels = _parse_sample_name(sample)
    labels.update(extra)
    return name + _serialize_labels(labels)


def merge_snapshots(base: Dict, other: Dict,
                    extra_labels: Optional[Mapping[str, str]] = None) -> Dict:
    """Merge two snapshots into a new one (exact histogram addition).

    Counters sum; gauges take the incoming value (last writer wins);
    histogram bucket counts add elementwise — exact because all snapshots
    share :data:`DEFAULT_BUCKETS`.

    Parameters
    ----------
    base:
        Snapshot merged *into* (not mutated).
    other:
        Snapshot merged *from*.
    extra_labels:
        Labels appended to every ``other`` sample name before merging,
        e.g. ``{"shard": "1"}`` to keep per-shard samples distinct.

    Returns
    -------
    dict
        A new snapshot dict; neither input is mutated.
    """
    out = {
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": {k: dict(v) for k, v in base.get("histograms", {}).items()},
        "bounds": list(base.get("bounds", DEFAULT_BUCKETS)),
        "help": dict(base.get("help", {})),
    }
    extra = dict(extra_labels or {})

    def rename(sample: str) -> str:
        return _relabel(sample, extra) if extra else sample

    for sample, value in other.get("counters", {}).items():
        key = rename(sample)
        out["counters"][key] = out["counters"].get(key, 0.0) + value
    for sample, value in other.get("gauges", {}).items():
        out["gauges"][rename(sample)] = value
    for sample, hist in other.get("histograms", {}).items():
        key = rename(sample)
        existing = out["histograms"].get(key)
        if existing is None:
            out["histograms"][key] = {
                "buckets": list(hist["buckets"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
        else:
            if len(existing["buckets"]) != len(hist["buckets"]):
                raise ValueError(
                    f"histogram {key!r} has mismatched bucket tables; "
                    "snapshots must share DEFAULT_BUCKETS"
                )
            existing["buckets"] = [
                a + b for a, b in zip(existing["buckets"], hist["buckets"])
            ]
            existing["sum"] += hist["sum"]
            existing["count"] += hist["count"]
    out["help"].update(other.get("help", {}))
    return out


# ------------------------------------------------------------------ globals
_enabled = os.environ.get("REPRO_OBS_DISABLED", "").strip() not in ("1", "true", "yes")
_registry = MetricsRegistry()
_null_registry = NullRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry.

    Returns
    -------
    MetricsRegistry
        The shared registry, or the no-op :class:`NullRegistry` while
        telemetry is disabled.
    """
    return _registry if _enabled else _null_registry


def set_enabled(enabled: bool) -> None:
    """Enable or disable telemetry process-wide.

    While disabled, :func:`global_registry` returns a no-op registry, so
    *newly created* metric handles discard all recordings.  Handles cached
    before disabling keep recording into the real registry; long-lived
    objects (engines, services) should be constructed after the switch.

    Parameters
    ----------
    enabled:
        ``True`` to record metrics, ``False`` to discard them.
    """
    global _enabled
    _enabled = bool(enabled)


def is_enabled() -> bool:
    """Whether telemetry is currently being recorded.

    Returns
    -------
    bool
        ``True`` while :func:`global_registry` hands out the real registry.
    """
    return _enabled
