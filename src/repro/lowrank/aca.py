"""Adaptive Cross Approximation (ACA).

ACA builds a low-rank approximation ``A ~= U V^T`` of a block by sampling a
small number of its rows and columns, never touching the rest of the block.
The paper's prototype H-matrix code uses a "hybrid-ACA scheme" to compress
admissible (well separated) blocks of the kernel matrix; we implement the
classical partially pivoted ACA with the standard stopping criterion based
on an incrementally updated Frobenius-norm estimate, plus a fully pivoted
variant used as a reference in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .lowrank_matrix import LowRank

#: signature of the row/column samplers handed to :func:`aca`:
#: ``row_fn(i) -> (n,)`` returns row ``i`` of the block,
#: ``col_fn(j) -> (m,)`` returns column ``j``.
RowFn = Callable[[int], np.ndarray]
ColFn = Callable[[int], np.ndarray]


@dataclass
class ACAResult:
    """Outcome of an ACA compression."""

    lowrank: LowRank
    rank: int
    converged: bool
    rows_sampled: int
    cols_sampled: int

    @property
    def nbytes(self) -> int:
        return self.lowrank.nbytes


def aca(
    m: int,
    n: int,
    row_fn: RowFn,
    col_fn: ColFn,
    rel_tol: float = 1e-6,
    max_rank: Optional[int] = None,
    min_pivot: float = 1e-14,
) -> ACAResult:
    """Partially pivoted adaptive cross approximation.

    Parameters
    ----------
    m, n:
        Block dimensions.
    row_fn, col_fn:
        Callables returning a single (dense) row or column of the block.
    rel_tol:
        Stopping tolerance: iteration stops when the norm of the new rank-1
        update falls below ``rel_tol`` times the running estimate of
        ``||A||_F``.
    max_rank:
        Hard cap on the number of cross updates (default ``min(m, n)``).
    min_pivot:
        Pivots smaller than this (in absolute value) terminate the
        iteration (the remaining block is numerically zero).

    Returns
    -------
    ACAResult
        With ``lowrank.U`` of shape ``(m, r)`` and ``lowrank.V`` of shape
        ``(n, r)`` such that the block is approximately ``U @ V.T``.
    """
    if m < 0 or n < 0:
        raise ValueError("block dimensions must be non-negative")
    if rel_tol <= 0:
        raise ValueError("rel_tol must be positive")
    limit = min(m, n) if max_rank is None else min(int(max_rank), m, n)
    if limit == 0 or m == 0 or n == 0:
        return ACAResult(LowRank.zero(m, n), 0, True, 0, 0)

    us = []
    vs = []
    used_rows: set = set()
    used_cols: set = set()
    frob_sq = 0.0  # running estimate of ||A||_F^2 of the approximation
    converged = False
    rows_sampled = 0
    cols_sampled = 0

    next_row = 0
    for _ in range(limit):
        # --- residual row at the pivot row
        if next_row in used_rows or next_row >= m:
            remaining = [i for i in range(m) if i not in used_rows]
            if not remaining:
                converged = True
                break
            next_row = remaining[0]
        row = np.asarray(row_fn(next_row), dtype=np.float64).copy()
        rows_sampled += 1
        for u, v in zip(us, vs):
            row -= u[next_row] * v
        used_rows.add(next_row)

        # --- column pivot: largest residual entry in that row
        if used_cols:
            masked = row.copy()
            masked[list(used_cols)] = 0.0
        else:
            masked = row
        j = int(np.argmax(np.abs(masked)))
        pivot = row[j]
        if abs(pivot) < min_pivot:
            # The row is (numerically) fully captured; try another row before
            # declaring convergence.
            remaining = [i for i in range(m) if i not in used_rows]
            if not remaining:
                converged = True
                break
            next_row = remaining[0]
            converged = True
            continue

        col = np.asarray(col_fn(j), dtype=np.float64).copy()
        cols_sampled += 1
        for u, v in zip(us, vs):
            col -= v[j] * u
        used_cols.add(j)

        u_new = col / pivot
        v_new = row
        us.append(u_new)
        vs.append(v_new)

        # --- stopping criterion (standard ACA norm update)
        unorm = float(np.linalg.norm(u_new))
        vnorm = float(np.linalg.norm(v_new))
        cross = 0.0
        for u, v in zip(us[:-1], vs[:-1]):
            cross += float((u @ u_new) * (v @ v_new))
        frob_sq += 2.0 * cross + (unorm * vnorm) ** 2
        frob = np.sqrt(max(frob_sq, 0.0))
        if unorm * vnorm <= rel_tol * max(frob, 1e-300):
            converged = True
            break

        # --- next row pivot: largest residual entry of the new column
        masked_col = np.abs(u_new).copy()
        masked_col[list(used_rows)] = -1.0
        next_row = int(np.argmax(masked_col))
    else:
        converged = max_rank is None

    if not us:
        return ACAResult(LowRank.zero(m, n), 0, converged, rows_sampled, cols_sampled)
    U = np.column_stack(us)
    V = np.column_stack(vs)
    return ACAResult(LowRank(U, V), U.shape[1], converged, rows_sampled, cols_sampled)


def aca_full(A: np.ndarray, rel_tol: float = 1e-6,
             max_rank: Optional[int] = None) -> ACAResult:
    """Fully pivoted ACA of an explicit dense block (reference implementation).

    Uses the true residual maximum as the pivot at every step, which gives
    near-optimal pivots at ``O(m n)`` cost per step.  Used for testing and
    for small blocks where the whole block is available anyway.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-dimensional, got shape {A.shape}")
    m, n = A.shape
    limit = min(m, n) if max_rank is None else min(int(max_rank), m, n)
    if limit == 0:
        return ACAResult(LowRank.zero(m, n), 0, True, 0, 0)
    R = A.copy()
    norm_a = np.linalg.norm(A)
    us = []
    vs = []
    converged = False
    for _ in range(limit):
        idx = np.unravel_index(int(np.argmax(np.abs(R))), R.shape)
        pivot = R[idx]
        if abs(pivot) <= rel_tol * max(norm_a, 1e-300):
            converged = True
            break
        u = R[:, idx[1]].copy() / pivot
        v = R[idx[0], :].copy()
        us.append(u)
        vs.append(v)
        R -= np.outer(u, v)
    else:
        converged = np.linalg.norm(R) <= rel_tol * max(norm_a, 1e-300)
    if not us:
        return ACAResult(LowRank.zero(m, n), 0, True, 0, 0)
    U = np.column_stack(us)
    V = np.column_stack(vs)
    return ACAResult(LowRank(U, V), U.shape[1], converged, len(us), len(us))
