"""A minimal low-rank matrix container ``A ~= U @ V.T``."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.bytes import nbytes_of_arrays


@dataclass
class LowRank:
    """Low-rank factorization ``A ~= U @ V.T`` with ``U (m x r)``, ``V (n x r)``.

    The convention (``V`` stored un-transposed) matches the HSS generator
    convention ``U_i B_ij V_j^T`` used throughout the paper and the library.
    """

    U: np.ndarray
    V: np.ndarray

    def __post_init__(self) -> None:
        self.U = np.ascontiguousarray(self.U, dtype=np.float64)
        self.V = np.ascontiguousarray(self.V, dtype=np.float64)
        if self.U.ndim != 2 or self.V.ndim != 2:
            raise ValueError("U and V must be 2-dimensional")
        if self.U.shape[1] != self.V.shape[1]:
            raise ValueError(
                f"rank mismatch: U has {self.U.shape[1]} columns, "
                f"V has {self.V.shape[1]}")

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> tuple:
        return (self.U.shape[0], self.V.shape[0])

    @property
    def rank(self) -> int:
        """Number of columns of the factors (the representation rank)."""
        return self.U.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory of the factors in bytes."""
        return nbytes_of_arrays((self.U, self.V))

    # ------------------------------------------------------------------ ops
    def to_dense(self) -> np.ndarray:
        """Materialise ``U @ V.T``."""
        return self.U @ self.V.T

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``(U V^T) x`` in ``O((m + n) r)`` operations."""
        return self.U @ (self.V.T @ np.asarray(x, dtype=np.float64))

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``(U V^T)^T x = V (U^T x)``."""
        return self.V @ (self.U.T @ np.asarray(x, dtype=np.float64))

    def transpose(self) -> "LowRank":
        """Return the transpose as a new :class:`LowRank`."""
        return LowRank(self.V.copy(), self.U.copy())

    def recompress(self, rel_tol: float = 1e-12) -> "LowRank":
        """Re-orthogonalise and truncate the factors to the numerical rank.

        Runs thin QR on both factors followed by an SVD of the small core,
        the standard rounding step for hierarchical matrix arithmetic.
        """
        if self.rank == 0:
            return LowRank(self.U.copy(), self.V.copy())
        qu, ru = np.linalg.qr(self.U)
        qv, rv = np.linalg.qr(self.V)
        core = ru @ rv.T
        w, s, vt = np.linalg.svd(core, full_matrices=False)
        if s.size == 0 or s[0] == 0.0:
            keep = 0
        else:
            keep = int(np.count_nonzero(s > rel_tol * s[0]))
        w = w[:, :keep] * s[:keep]
        return LowRank(qu @ w, qv @ vt[:keep].T)

    def __add__(self, other: "LowRank") -> "LowRank":
        """Formal sum: concatenate factor columns (rank adds, recompress later)."""
        if not isinstance(other, LowRank):
            return NotImplemented
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return LowRank(np.hstack([self.U, other.U]), np.hstack([self.V, other.V]))

    @classmethod
    def zero(cls, m: int, n: int) -> "LowRank":
        """Rank-zero matrix of shape ``(m, n)``."""
        return cls(np.zeros((m, 0)), np.zeros((n, 0)))

    @classmethod
    def from_dense(cls, A: np.ndarray, rel_tol: float = 1e-12) -> "LowRank":
        """SVD-truncate a dense matrix to relative tolerance ``rel_tol``."""
        A = np.asarray(A, dtype=np.float64)
        u, s, vt = np.linalg.svd(A, full_matrices=False)
        if s.size == 0 or s[0] == 0.0:
            return cls.zero(*A.shape)
        keep = int(np.count_nonzero(s > rel_tol * s[0]))
        return cls(u[:, :keep] * s[:keep], vt[:keep].T)
