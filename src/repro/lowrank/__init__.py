"""Low-rank approximation primitives.

These are the numerical kernels that both hierarchical formats are built
from:

* :func:`truncated_svd` — reference (optimal) low-rank factorization,
* :func:`rrqr` — rank-revealing (column-pivoted) QR with tolerance,
* :func:`row_id` / :func:`column_id` — interpolative decompositions, used by
  the HSS construction to pick representative rows/columns (skeletons),
* :func:`aca` / :func:`aca_full` — adaptive cross approximation, used to
  compress admissible H-matrix blocks from a few of their rows and columns,
* :func:`randomized_range_finder` — adaptive randomized range estimation,
* :class:`LowRank` — a small ``U @ V.T`` container with memory accounting.
"""

from .lowrank_matrix import LowRank
from .truncated_svd import truncated_svd, singular_values, effective_rank
from .rrqr import rrqr, rank_from_tolerance
from .interpolative import row_id, column_id, InterpolativeDecomposition
from .aca import aca, aca_full, ACAResult
from .randomized import randomized_range_finder, randomized_svd

__all__ = [
    "LowRank",
    "truncated_svd",
    "singular_values",
    "effective_rank",
    "rrqr",
    "rank_from_tolerance",
    "row_id",
    "column_id",
    "InterpolativeDecomposition",
    "aca",
    "aca_full",
    "ACAResult",
    "randomized_range_finder",
    "randomized_svd",
]
