"""Rank-revealing QR (column-pivoted QR) with tolerance-based truncation."""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg


def rank_from_tolerance(R_diag: np.ndarray, rel_tol: float, abs_tol: float = 0.0,
                        max_rank: int = None) -> int:
    """Numerical rank implied by the diagonal of the pivoted R factor.

    The diagonal magnitudes of a column-pivoted QR are non-increasing, so the
    rank is the count of entries above ``max(rel_tol * |R[0,0]|, abs_tol)``.
    """
    d = np.abs(np.asarray(R_diag, dtype=np.float64))
    if d.size == 0 or d[0] == 0.0:
        # An exactly zero leading pivot means the whole matrix is zero.
        return 0
    threshold = max(rel_tol * d[0], abs_tol)
    if threshold <= 0.0:
        rank = int(np.count_nonzero(d > 0.0))
    else:
        rank = int(np.count_nonzero(d > threshold))
    if max_rank is not None:
        rank = min(rank, int(max_rank))
    return rank


def rrqr(A: np.ndarray, rel_tol: float = 1e-8, abs_tol: float = 0.0,
         max_rank: int = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Column-pivoted QR truncated at the numerical rank.

    Parameters
    ----------
    A:
        Dense matrix of shape ``(m, n)``.
    rel_tol, abs_tol, max_rank:
        Truncation controls (see :func:`rank_from_tolerance`).

    Returns
    -------
    (Q, R, piv, rank):
        ``Q`` is ``(m, rank)`` with orthonormal columns, ``R`` is
        ``(rank, n)`` upper trapezoidal, ``piv`` is the column permutation
        such that ``A[:, piv] ~= Q @ R``.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-dimensional, got shape {A.shape}")
    m, n = A.shape
    if m == 0 or n == 0:
        return (np.zeros((m, 0)), np.zeros((0, n)), np.arange(n, dtype=np.intp), 0)
    Q, R, piv = scipy.linalg.qr(A, mode="economic", pivoting=True)
    rank = rank_from_tolerance(np.diag(R), rel_tol, abs_tol, max_rank)
    return Q[:, :rank], R[:rank], np.asarray(piv, dtype=np.intp), rank
