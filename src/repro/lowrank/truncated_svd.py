"""Truncated SVD helpers and effective-rank computation.

The *effective rank* — the number of singular values above an absolute
threshold (0.01 in the paper's Table 1) — is the paper's diagnostic for how
compressible an off-diagonal kernel block is under a given ordering.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg


def singular_values(A: np.ndarray) -> np.ndarray:
    """Singular values of a dense matrix, in non-increasing order."""
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-dimensional, got shape {A.shape}")
    if min(A.shape) == 0:
        return np.zeros(0)
    return scipy.linalg.svd(A, compute_uv=False)


def truncated_svd(A: np.ndarray, rel_tol: float = 0.0, abs_tol: float = 0.0,
                  max_rank: int = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD truncated to the requested tolerance and/or rank.

    Parameters
    ----------
    A:
        Dense matrix of shape ``(m, n)``.
    rel_tol:
        Keep singular values ``> rel_tol * sigma_max``.
    abs_tol:
        Keep singular values ``> abs_tol``.
    max_rank:
        Keep at most this many singular triplets.

    Returns
    -------
    (U, s, Vt):
        Truncated factors such that ``A ~= (U * s) @ Vt``.
    """
    A = np.asarray(A, dtype=np.float64)
    if min(A.shape) == 0:
        k = 0
        return (np.zeros((A.shape[0], 0)), np.zeros(0), np.zeros((0, A.shape[1])))
    u, s, vt = scipy.linalg.svd(A, full_matrices=False)
    if s.size == 0:
        return u[:, :0], s, vt[:0]
    threshold = max(rel_tol * s[0], abs_tol)
    keep = int(np.count_nonzero(s > threshold)) if threshold > 0 else s.size
    if max_rank is not None:
        keep = min(keep, int(max_rank))
    return u[:, :keep], s[:keep], vt[:keep]


def effective_rank(A: np.ndarray, threshold: float = 0.01) -> int:
    """Number of singular values of ``A`` strictly greater than ``threshold``.

    This reproduces the paper's Table 1 metric ("effective rank = number of
    singular values of the off-diagonal 500x500 K(1,2) block that are
    > 0.01").
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    s = singular_values(A)
    return int(np.count_nonzero(s > threshold))
