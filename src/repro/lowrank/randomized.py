"""Randomized range estimation and randomized SVD.

These routines implement the randomized sketching layer that STRUMPACK's HSS
construction is built on: multiply the (implicitly defined) matrix by a
block of random vectors, orthonormalise the result, and — if the requested
accuracy is not yet reached — *adaptively* enlarge the random block.  The
accuracy test is the standard a-posteriori bound of Halko, Martinsson &
Tropp: with ``q`` fresh Gaussian probes ``w_i``, ``max_i ||(I - QQ^T) A w_i||``
over-estimates ``||A - QQ^T A||`` with high probability up to a factor
``10 sqrt(2/pi)``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..utils.random import as_generator

MatMat = Callable[[np.ndarray], np.ndarray]


def randomized_range_finder(
    matmat: MatMat,
    n: int,
    rel_tol: float = 1e-6,
    initial_samples: int = 16,
    sample_increment: int = 16,
    max_rank: Optional[int] = None,
    probe_vectors: int = 8,
    max_rounds: int = 16,
    rng=None,
) -> Tuple[np.ndarray, int]:
    """Adaptively estimate an orthonormal basis of the range of ``A``.

    Parameters
    ----------
    matmat:
        Callable computing ``A @ V`` for an ``(n, k)`` block ``V``.
    n:
        Number of columns of ``A``.
    rel_tol:
        Target relative accuracy of the range approximation.
    initial_samples, sample_increment:
        Size of the first random block and of every enlargement.
    max_rank:
        Hard cap on the basis size.
    probe_vectors:
        Number of fresh probes used by the a-posteriori error estimate.
    max_rounds:
        Safety cap on the number of enlargement rounds.
    rng:
        Seed or generator.

    Returns
    -------
    (Q, rounds):
        ``Q`` with orthonormal columns spanning the estimated range, and the
        number of adaptation rounds used.
    """
    rng = as_generator(rng)
    if n <= 0:
        return np.zeros((0, 0)), 0
    cap = n if max_rank is None else min(int(max_rank), n)
    k = min(max(int(initial_samples), 1), cap + probe_vectors)

    Omega = rng.standard_normal((n, k))
    Y = np.asarray(matmat(Omega), dtype=np.float64)
    m = Y.shape[0]
    norm_estimate = max(float(np.linalg.norm(Y)) / np.sqrt(max(k, 1)), 1e-300)

    rounds = 0
    while True:
        rounds += 1
        Q, _ = np.linalg.qr(Y)
        if Q.shape[1] >= cap:
            Q = Q[:, :cap]
            return Q, rounds
        # a-posteriori error estimate with fresh probes
        W = rng.standard_normal((n, probe_vectors))
        AW = np.asarray(matmat(W), dtype=np.float64)
        resid = AW - Q @ (Q.T @ AW)
        err = float(np.max(np.linalg.norm(resid, axis=0))) * 10.0 * np.sqrt(2.0 / np.pi)
        scale = max(float(np.linalg.norm(AW)) / np.sqrt(probe_vectors), norm_estimate)
        if err <= rel_tol * scale or rounds >= max_rounds:
            return Q, rounds
        # enlarge the sample: reuse the probe results plus new random samples
        extra = rng.standard_normal((n, sample_increment))
        Y = np.hstack([Q * 1.0, AW, np.asarray(matmat(extra), dtype=np.float64)])
        if Y.shape[1] > m:
            Y = Y[:, :m]


def randomized_svd(
    matmat: MatMat,
    rmatmat: MatMat,
    n: int,
    rank: int,
    oversampling: int = 8,
    n_iter: int = 1,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed-rank randomized SVD of an implicitly defined matrix.

    Parameters
    ----------
    matmat, rmatmat:
        Callables computing ``A @ V`` and ``A.T @ V``.
    n:
        Number of columns of ``A``.
    rank:
        Target rank.
    oversampling:
        Extra random columns used to stabilise the range estimate.
    n_iter:
        Number of power iterations (improves accuracy for slowly decaying
        spectra).
    rng:
        Seed or generator.

    Returns
    -------
    (U, s, Vt):
        Approximate truncated SVD with ``U`` of shape ``(m, rank)``.
    """
    rng = as_generator(rng)
    if rank < 0:
        raise ValueError("rank must be non-negative")
    k = min(rank + max(int(oversampling), 0), n)
    if k == 0:
        return np.zeros((0, 0)), np.zeros(0), np.zeros((0, n))
    Omega = rng.standard_normal((n, k))
    Y = np.asarray(matmat(Omega), dtype=np.float64)
    Q, _ = np.linalg.qr(Y)
    for _ in range(max(int(n_iter), 0)):
        Z = np.asarray(rmatmat(Q), dtype=np.float64)
        Qz, _ = np.linalg.qr(Z)
        Y = np.asarray(matmat(Qz), dtype=np.float64)
        Q, _ = np.linalg.qr(Y)
    B = np.asarray(rmatmat(Q), dtype=np.float64).T  # B = Q^T A, shape (k, n)
    Ub, s, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ Ub
    keep = min(rank, s.size)
    return U[:, :keep], s[:keep], Vt[:keep]
