"""Interpolative decompositions (ID).

The randomized HSS construction does not store orthonormal bases directly:
it selects *representative rows and columns* (skeletons) of the sampled
off-diagonal blocks and expresses the remaining rows/columns as linear
combinations of them.  This is exactly a row (or column) interpolative
decomposition:

    row ID:     M  ~=  P @ M[J, :]      with  P[J, :] = I
    column ID:  M  ~=  M[:, J] @ P      with  P[:, J] = I

selecting ``|J| = r`` rows (columns) via a column-pivoted QR.  The skeleton
indices ``J`` are what makes the *partially matrix-free* construction work:
the coupling generators ``B_ij`` are later read off the original matrix at
the skeleton rows/columns only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from .rrqr import rank_from_tolerance


@dataclass
class InterpolativeDecomposition:
    """Result of a row or column interpolative decomposition.

    Attributes
    ----------
    interp:
        The interpolation matrix ``P``.  For a row ID of an ``(m, k)``
        matrix this has shape ``(m, r)`` and satisfies ``M ~= P @ M[J, :]``
        with ``P[J, :] = I_r``.  For a column ID it has shape ``(r, k)`` and
        satisfies ``M ~= M[:, J] @ P`` with ``P[:, J] = I_r``.
    skeleton:
        Indices ``J`` of the selected rows (columns), length ``r``.
    rank:
        The interpolation rank ``r``.
    """

    interp: np.ndarray
    skeleton: np.ndarray
    rank: int

    def __post_init__(self) -> None:
        self.skeleton = np.asarray(self.skeleton, dtype=np.intp)
        self.interp = np.asarray(self.interp, dtype=np.float64)
        self.rank = int(self.rank)


def _pivoted_qr_interp(M: np.ndarray, rel_tol: float, abs_tol: float,
                       max_rank) -> InterpolativeDecomposition:
    """Column ID of ``M`` (select columns): ``M ~= M[:, J] @ P``."""
    m, n = M.shape
    if m == 0 or n == 0:
        return InterpolativeDecomposition(np.zeros((0, n)), np.zeros(0, dtype=np.intp), 0)
    Q, R, piv = scipy.linalg.qr(M, mode="economic", pivoting=True)
    rank = rank_from_tolerance(np.diag(R), rel_tol, abs_tol, max_rank)
    piv = np.asarray(piv, dtype=np.intp)
    if rank == 0:
        return InterpolativeDecomposition(np.zeros((0, n)), np.zeros(0, dtype=np.intp), 0)
    R11 = R[:rank, :rank]
    R12 = R[:rank, rank:]
    # T solves R11 T = R12 (well conditioned because R11 comes from pivoted QR).
    if R12.shape[1] > 0:
        T = scipy.linalg.solve_triangular(R11, R12, lower=False)
    else:
        T = np.zeros((rank, 0))
    P = np.empty((rank, n), dtype=np.float64)
    P[:, piv[:rank]] = np.eye(rank)
    P[:, piv[rank:]] = T
    return InterpolativeDecomposition(P, piv[:rank].copy(), rank)


def column_id(M: np.ndarray, rel_tol: float = 1e-8, abs_tol: float = 0.0,
              max_rank: int = None) -> InterpolativeDecomposition:
    """Column interpolative decomposition ``M ~= M[:, J] @ P``.

    Parameters
    ----------
    M:
        Dense matrix ``(m, n)``.
    rel_tol, abs_tol, max_rank:
        Truncation controls; the rank is determined from the pivoted-QR
        diagonal exactly as in :func:`repro.lowrank.rrqr.rrqr`.
    """
    M = np.asarray(M, dtype=np.float64)
    if M.ndim != 2:
        raise ValueError(f"M must be 2-dimensional, got shape {M.shape}")
    return _pivoted_qr_interp(M, rel_tol, abs_tol, max_rank)


def row_id(M: np.ndarray, rel_tol: float = 1e-8, abs_tol: float = 0.0,
           max_rank: int = None) -> InterpolativeDecomposition:
    """Row interpolative decomposition ``M ~= P @ M[J, :]`` with ``P[J, :] = I``.

    Implemented as a column ID of ``M.T``.
    """
    M = np.asarray(M, dtype=np.float64)
    if M.ndim != 2:
        raise ValueError(f"M must be 2-dimensional, got shape {M.shape}")
    cid = _pivoted_qr_interp(M.T, rel_tol, abs_tol, max_rank)
    return InterpolativeDecomposition(cid.interp.T, cid.skeleton, cid.rank)
