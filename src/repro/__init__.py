"""repro — hierarchical matrix formats and clustering for kernel ridge regression.

A from-scratch Python reproduction of

    E. Rebrova, G. Chávez, Y. Liu, P. Ghysels, X. S. Li,
    "A Study of Clustering Techniques and Hierarchical Matrix Formats for
    Kernel Ridge Regression", 2018 (arXiv:1803.10274).

The library provides:

* clustering-based reorderings of a dataset (natural, recursive two-means,
  k-d tree, PCA tree, ball tree, agglomerative) producing the cluster tree
  that drives hierarchical matrix partitions — :mod:`repro.clustering`;
* HSS matrices with randomized (partially matrix-free) construction and a
  ULV factorization / solver — :mod:`repro.hss`;
* H matrices (strong admissibility, ACA) used as a fast sampling engine —
  :mod:`repro.hmatrix`;
* kernel ridge regression classification (binary and one-vs-all) on top of
  interchangeable dense / HSS / CG solvers — :mod:`repro.krr`;
* hyper-parameter tuning (grid search and an OpenTuner-style black-box
  tuner) — :mod:`repro.tuning`;
* synthetic stand-ins for the paper's UCI / MNIST datasets —
  :mod:`repro.datasets`;
* a distributed-memory performance model reproducing the paper's strong
  scaling study — :mod:`repro.parallel`;
* the experiment harness regenerating every table and figure —
  :mod:`repro.experiments`;
* model persistence (checksummed ``.npz`` artifacts, a directory-backed
  :class:`repro.serving.ModelStore`) and batched online prediction serving
  (:class:`repro.serving.PredictionEngine`,
  :class:`repro.serving.PredictionService`) — :mod:`repro.serving`;
* process-sharded training and serving over subtree ownership, mirroring
  the paper's rank-per-subtree MPI runs
  (:class:`repro.distributed.DistributedKRRPipeline`,
  :class:`repro.distributed.ShardedPredictionService`) —
  :mod:`repro.distributed`;
* unified observability — metrics registry, span tracing, per-request
  status trails and Prometheus/JSON exporters across the train / refit /
  serve stack — :mod:`repro.obs`;
* a layered runtime configuration spine (``repro.toml`` + ``REPRO_*`` env
  vars + CLI flags, with per-value provenance) and the ``repro`` umbrella
  CLI (``train`` / ``tune`` / ``refit`` / ``serve`` / ``bench`` /
  ``inspect`` / ``env``) driving the whole lifecycle without writing
  Python — :mod:`repro.runtime`, :mod:`repro.cli`.

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.krr import KernelRidgeClassifier
>>> data = load_dataset("gas", n_train=512, n_test=128, seed=0)
>>> clf = KernelRidgeClassifier(h=data.h, lam=data.lam, solver="hss",
...                             clustering="two_means")
>>> acc = clf.fit(data.X_train, data.y_train).score(data.X_test, data.y_test)
"""

from . import obs
from . import runtime
from . import clustering, datasets, hmatrix, hss, kernels, krr, lowrank, utils
from . import serving
from . import distributed
from .config import (ClusteringOptions, HMatrixOptions, HSSOptions, KRROptions)
from .clustering import ClusterTree, cluster
from .hss import HSSMatrix, ULVFactorization, build_hss_from_dense, build_hss_randomized
from .hmatrix import HMatrix, HMatrixSampler, build_hmatrix
from .kernels import GaussianKernel, KernelOperator, get_kernel
from .krr import (KernelRidgeClassifier, KernelRidgeRegressor, KRRPipeline,
                  OneVsAllClassifier)
from .datasets import load_dataset
from .serving import (ModelStore, PredictionEngine, PredictionService,
                      load_model, save_model)
from .distributed import (DistributedKRRPipeline, ShardPlan,
                          ShardedPredictionService)
from .runtime import RuntimeConfig, resolve_runtime_config

__version__ = "1.0.0"

__all__ = [
    "ClusteringOptions",
    "HMatrixOptions",
    "HSSOptions",
    "KRROptions",
    "ClusterTree",
    "cluster",
    "HSSMatrix",
    "ULVFactorization",
    "build_hss_from_dense",
    "build_hss_randomized",
    "HMatrix",
    "HMatrixSampler",
    "build_hmatrix",
    "GaussianKernel",
    "KernelOperator",
    "get_kernel",
    "KernelRidgeClassifier",
    "KernelRidgeRegressor",
    "KRRPipeline",
    "OneVsAllClassifier",
    "load_dataset",
    "ModelStore",
    "PredictionEngine",
    "PredictionService",
    "save_model",
    "load_model",
    "DistributedKRRPipeline",
    "ShardPlan",
    "ShardedPredictionService",
    "RuntimeConfig",
    "resolve_runtime_config",
    "obs",
    "runtime",
    "__version__",
]
