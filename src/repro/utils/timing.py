"""Lightweight timing utilities for the experiment harness.

The paper reports wall-clock timings per algorithmic phase (H construction,
HSS construction split into sampling and "other", ULV factorization, solve —
Table 4).  :class:`TimingLog` accumulates named phase durations and can be
merged, so the solver components simply record into the log handed to them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..obs import record_phase
from ..obs.tracing import trace


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Examples
    --------
    >>> t = Timer().start()
    >>> _ = sum(range(1000))
    >>> elapsed = t.stop()
    >>> elapsed >= 0.0
    True
    """

    _start: Optional[float] = None
    elapsed: float = 0.0

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer, accumulate and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._start = None
        self.elapsed = 0.0


@dataclass
class TimingLog:
    """Accumulates named wall-clock phase durations in seconds."""

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring the body and adding it to ``name``.

        Also opens a ``repro.obs`` trace span of the same name, so nested
        ``phase`` calls (pipeline ``train_total`` wrapping the solver
        phases) produce a nested span tree.
        """
        with trace.span(name):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated duration of phase ``name``.

        Every addition is mirrored into the global metrics registry as
        ``repro_phase_seconds_total{phase=name}``.
        """
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)
        record_phase(name, seconds)

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the accumulated duration of ``name`` (``default`` if absent)."""
        return self.phases.get(name, default)

    def merge(self, other: "TimingLog") -> "TimingLog":
        """Merge another log into this one (summing shared phases).

        Bypasses the registry hook: the merged phases were already
        recorded when ``other`` accumulated them, so reporting them again
        would double-count.
        """
        for name, seconds in other.phases.items():
            self.phases[name] = self.phases.get(name, 0.0) + float(seconds)
        return self

    def total(self) -> float:
        """Total time over all phases."""
        return float(sum(self.phases.values()))

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the phase dictionary."""
        return dict(self.phases)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.phases.items()))
        return f"TimingLog({parts})"
