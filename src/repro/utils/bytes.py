"""Memory accounting helpers.

The paper's main performance metric alongside accuracy is the memory of the
compressed representation in MB: "the sum of the memory used by all the
individual smaller matrices in the HSS structure: D_i, U_i, V_i, B_ij, B_ji"
(Section 4.2).  These helpers make that accounting uniform across the HSS
and H-matrix formats.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

_MB = 1024.0 * 1024.0


def nbytes_of_arrays(arrays: Iterable[Optional[np.ndarray]]) -> int:
    """Total number of bytes of the given arrays, ignoring ``None`` entries."""
    total = 0
    for a in arrays:
        if a is not None:
            total += int(np.asarray(a).nbytes)
    return total


def megabytes(nbytes: float) -> float:
    """Convert a byte count into MiB (the unit used in the paper's tables)."""
    return float(nbytes) / _MB


def format_bytes(nbytes: float) -> str:
    """Human readable byte count (e.g. ``'1.25 MB'``)."""
    nbytes = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(nbytes) < 1024.0 or unit == "TB":
            return f"{nbytes:.2f} {unit}"
        nbytes /= 1024.0
    return f"{nbytes:.2f} TB"  # pragma: no cover - unreachable


def dense_matrix_bytes(n: int, m: Optional[int] = None, itemsize: int = 8) -> int:
    """Bytes needed to store a dense ``n x m`` matrix (``m = n`` if omitted).

    Used for the paper's headline comparison: "storing a 1M dense matrix
    requires 8,000GB, whereas the HSS construction used in this work just
    required 1.3 GB" (Section 5.5).
    """
    if m is None:
        m = n
    if n < 0 or m < 0:
        raise ValueError("matrix dimensions must be non-negative")
    return int(n) * int(m) * int(itemsize)
