"""Input validation helpers used at public API boundaries.

The library performs validation at the entry points (classifiers, builders,
clustering front-ends) and then trusts its own internal invariants, keeping
the inner loops free of redundant checks as recommended for numerical code.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def check_array_2d(X, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Validate and convert ``X`` to a C-contiguous 2-D float array.

    Parameters
    ----------
    X:
        Array-like of shape ``(n, d)``.
    name:
        Name used in error messages.
    dtype:
        Target dtype (default ``float64``).

    Returns
    -------
    numpy.ndarray
        A 2-D array of the requested dtype.

    Raises
    ------
    ValueError
        If the input is not 2-dimensional, is empty, or contains
        non-finite values.
    """
    arr = np.ascontiguousarray(X, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_vector(y, name: str = "y", dtype=np.float64, length: Optional[int] = None) -> np.ndarray:
    """Validate and convert ``y`` to a 1-D array, optionally of fixed length."""
    arr = np.ascontiguousarray(y, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_square(A, name: str = "A") -> np.ndarray:
    """Validate that ``A`` is a square 2-D array."""
    arr = check_array_2d(A, name=name)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_index_array(idx, n: int, name: str = "indices") -> np.ndarray:
    """Validate an integer index array with entries in ``[0, n)``."""
    arr = np.ascontiguousarray(idx, dtype=np.intp)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ValueError(f"{name} must lie in [0, {n}), got range "
                         f"[{arr.min()}, {arr.max()}]")
    return arr


def check_permutation(perm, n: int, name: str = "permutation") -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``range(n)``."""
    arr = check_index_array(perm, n, name=name)
    if arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    seen = np.zeros(n, dtype=bool)
    seen[arr] = True
    if not seen.all():
        raise ValueError(f"{name} is not a permutation of range({n})")
    return arr


def check_labels_binary(y, name: str = "y") -> np.ndarray:
    """Validate a vector of ±1 labels (the encoding used by Algorithm 1)."""
    arr = np.ascontiguousarray(y, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    values = np.unique(arr)
    if not np.all(np.isin(values, (-1.0, 1.0))):
        raise ValueError(
            f"{name} must contain only -1/+1 labels, got values {values[:10]}")
    return arr


def check_positive(value: float, name: str) -> float:
    """Validate a strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate a non-negative scalar."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_same_dimension(X: np.ndarray, Y: np.ndarray,
                         names: Sequence[str] = ("X", "Y")) -> None:
    """Validate that two point sets live in the same feature dimension."""
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"{names[0]} and {names[1]} must have the same number of columns, "
            f"got {X.shape[1]} and {Y.shape[1]}")
