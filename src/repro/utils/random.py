"""Random number generator plumbing.

All stochastic components of the library (two-means initialisation,
randomized HSS sampling, synthetic dataset generation, the black-box tuner)
accept either an integer seed, an existing :class:`numpy.random.Generator`,
or ``None`` and normalise it through :func:`as_generator` so results are
reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like input.

    Passing an existing generator returns it unchanged, so a caller can
    thread a single generator through a multi-stage pipeline and get a
    deterministic stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators.

    Used by parallel block assembly and by repeated-trial experiments
    (e.g. the three-run averaging of the 2MN ordering in Table 2) so each
    trial gets an independent stream while remaining reproducible.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
