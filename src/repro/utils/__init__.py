"""Small shared utilities: validation, RNG handling, timing, byte formatting."""

from .validation import (
    check_array_2d,
    check_vector,
    check_square,
    check_index_array,
    check_labels_binary,
    check_positive,
    check_non_negative,
)
from .random import as_generator, spawn_generators
from .timing import Timer, TimingLog
from .bytes import nbytes_of_arrays, format_bytes, megabytes

__all__ = [
    "check_array_2d",
    "check_vector",
    "check_square",
    "check_index_array",
    "check_labels_binary",
    "check_positive",
    "check_non_negative",
    "as_generator",
    "spawn_generators",
    "Timer",
    "TimingLog",
    "nbytes_of_arrays",
    "format_bytes",
    "megabytes",
]
