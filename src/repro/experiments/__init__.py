"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run_*`` function that generates the workload,
performs the sweep, and returns both structured results and a rendered
plain-text table mirroring the corresponding table/figure of the paper.
The ``benchmarks/`` directory wraps these functions with pytest-benchmark;
the ``examples/`` scripts call them directly.

Problem sizes default to values that run in seconds-to-minutes in pure
Python; every function takes explicit size parameters so the sweeps can be
scaled up towards the paper's sizes on bigger machines.
"""

from .fig1_singular_values import run_fig1_singular_values
from .table1_effective_rank import run_table1_effective_rank
from .table2_preprocessing import run_table2_preprocessing
from .fig5_memory_vs_h import run_fig5_memory_vs_h
from .fig6_tuning import run_fig6_tuning
from .table3_large_scale import run_table3_large_scale
from .fig7_asymptotic import run_fig7_asymptotic
from .table4_timing_breakdown import run_table4_timing_breakdown
from .fig8_strong_scaling import MeasuredPoint, run_fig8_strong_scaling
from .ablations import (
    run_ablation_sampling,
    run_ablation_leafsize,
    run_ablation_tolerance,
    run_ablation_solvers,
    run_ablation_kd_split,
    run_ablation_normalization,
)

__all__ = [
    "run_fig1_singular_values",
    "run_table1_effective_rank",
    "run_table2_preprocessing",
    "run_fig5_memory_vs_h",
    "run_fig6_tuning",
    "run_table3_large_scale",
    "run_fig7_asymptotic",
    "run_table4_timing_breakdown",
    "MeasuredPoint",
    "run_fig8_strong_scaling",
    "run_ablation_sampling",
    "run_ablation_leafsize",
    "run_ablation_tolerance",
    "run_ablation_solvers",
    "run_ablation_kd_split",
    "run_ablation_normalization",
]
