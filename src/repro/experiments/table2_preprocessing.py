"""Table 2: HSS memory and classification accuracy per preprocessing method.

The paper's main table: for seven datasets (10K train / 1K test), the HSS
memory in MB under the four orderings (NP, KD, PCA, 2MN) and the test
accuracy at the per-dataset ``(h, lambda)``.  Expected shape (Section 5.2):

* memory ordering ``2MN <= PCA <= KD <= NP`` on nearly every dataset, with
  up to ~10x reduction from NP to 2MN and ~4x versus KD on the best cases,
* the prediction accuracy is essentially independent of the ordering and
  matches the uncompressed (dense) kernel baseline,
* the 2MN numbers are averaged over several runs because the random
  seeding gives it a higher variance.

Problem sizes default to 2,048 / 512 so the full sweep runs in minutes in
pure Python; pass larger sizes to approach the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import HSSOptions
from ..datasets import load_dataset
from ..diagnostics.report import Table
from ..krr.pipeline import KRRPipeline
from ..utils.random import spawn_generators

#: Orderings in the column order of the paper's Table 2.
TABLE2_ORDERINGS = ("natural", "kd", "pca", "two_means")


@dataclass
class Table2Row:
    """One dataset's results across all orderings."""

    dataset: str
    dim: int
    h: float
    lam: float
    memory_mb: Dict[str, float] = field(default_factory=dict)
    max_rank: Dict[str, int] = field(default_factory=dict)
    accuracy: Dict[str, float] = field(default_factory=dict)
    dense_accuracy: Optional[float] = None


@dataclass
class Table2Result:
    """All rows of the preprocessing-comparison table."""

    n_train: int
    n_test: int
    rows: List[Table2Row] = field(default_factory=list)

    def table(self) -> Table:
        table = Table(title=f"Table 2 — HSS memory (MB) and accuracy, "
                            f"{self.n_train} train / {self.n_test} test")
        for row in self.rows:
            entry: Dict[str, object] = {
                "dataset": f"{row.dataset.upper()} ({row.dim})",
                "h": row.h, "lambda": row.lam,
            }
            for ordering in TABLE2_ORDERINGS:
                entry[f"mem {ordering}"] = round(row.memory_mb.get(ordering, float("nan")), 3)
            best = min(row.memory_mb, key=row.memory_mb.get) if row.memory_mb else ""
            entry["best"] = best
            entry["acc %"] = round(100 * np.mean(list(row.accuracy.values())), 1)
            if row.dense_accuracy is not None:
                entry["dense acc %"] = round(100 * row.dense_accuracy, 1)
            table.rows.append(entry)
        return table

    def memory_improvement(self, dataset: str, against: str = "natural") -> float:
        """Memory reduction factor of 2MN relative to another ordering."""
        for row in self.rows:
            if row.dataset == dataset:
                base = row.memory_mb[against]
                best = row.memory_mb["two_means"]
                return base / best if best > 0 else float("inf")
        raise KeyError(dataset)


def run_table2_preprocessing(
    datasets: Sequence[str] = ("susy", "letter", "pen", "hepmass", "covtype",
                               "gas", "mnist"),
    n_train: int = 2048,
    n_test: int = 512,
    orderings: Sequence[str] = TABLE2_ORDERINGS,
    two_means_repeats: int = 3,
    include_dense_baseline: bool = False,
    hss_options: Optional[HSSOptions] = None,
    use_hmatrix_sampling: bool = False,
    seed: int = 0,
    mnist_ambient_dim: Optional[int] = 196,
) -> Table2Result:
    """Run the preprocessing comparison over the requested datasets.

    Parameters
    ----------
    datasets:
        Dataset names (Table 2 uses all seven).
    n_train, n_test:
        Scaled-down sizes (the paper uses 10,000 / 1,000).
    orderings:
        Preprocessing methods to compare.
    two_means_repeats:
        The 2MN ordering is random; its memory is averaged over this many
        runs, mirroring the paper's protocol.
    include_dense_baseline:
        Also fit the exact dense solver to verify the accuracy parity claim
        (slower; off by default).
    hss_options:
        HSS compression options.  The default tolerance here is 0.05: the
        paper requires "at most 0.1", and at the reduced problem sizes used
        in this reproduction the slightly tighter setting keeps the
        accuracy-parity-across-orderings claim intact even for the natural
        ordering, whose per-block errors accumulate the most.
    use_hmatrix_sampling:
        Sample through the H matrix (slower in pure Python for these sizes,
        so off by default here; Table 4 exercises it).
    seed:
        Base seed.
    mnist_ambient_dim:
        Reduced ambient dimension for the MNIST-like dataset (784 is very
        slow in pure Python); ``None`` keeps the full 784.
    """
    opts = hss_options if hss_options is not None else HSSOptions(rel_tol=0.05)
    result = Table2Result(n_train=n_train, n_test=n_test)

    for d_idx, name in enumerate(datasets):
        kwargs = {}
        if name == "mnist" and mnist_ambient_dim is not None:
            kwargs["ambient_dim"] = int(mnist_ambient_dim)
        data = load_dataset(name, n_train=n_train, n_test=n_test,
                            seed=seed + d_idx, **kwargs)
        row = Table2Row(dataset=name, dim=data.dim, h=data.h, lam=data.lam)

        for ordering in orderings:
            if ordering == "two_means" and two_means_repeats > 1:
                rngs = spawn_generators(seed + 1000 + d_idx, two_means_repeats)
                memories, ranks, accs = [], [], []
                for rep_rng in rngs:
                    rep_seed = int(rep_rng.integers(2**31 - 1))
                    pipeline = KRRPipeline(h=data.h, lam=data.lam,
                                           clustering=ordering, solver="hss",
                                           hss_options=opts,
                                           use_hmatrix_sampling=use_hmatrix_sampling,
                                           seed=rep_seed)
                    rep = pipeline.run(data.X_train, data.y_train,
                                       data.X_test, data.y_test, dataset_name=name)
                    memories.append(rep.hss_memory_mb)
                    ranks.append(rep.max_rank)
                    accs.append(rep.accuracy)
                row.memory_mb[ordering] = float(np.mean(memories))
                row.max_rank[ordering] = int(np.mean(ranks))
                row.accuracy[ordering] = float(np.mean(accs))
            else:
                pipeline = KRRPipeline(h=data.h, lam=data.lam, clustering=ordering,
                                       solver="hss", hss_options=opts,
                                       use_hmatrix_sampling=use_hmatrix_sampling,
                                       seed=seed)
                rep = pipeline.run(data.X_train, data.y_train,
                                   data.X_test, data.y_test, dataset_name=name)
                row.memory_mb[ordering] = rep.hss_memory_mb
                row.max_rank[ordering] = rep.max_rank
                row.accuracy[ordering] = rep.accuracy

        if include_dense_baseline:
            pipeline = KRRPipeline(h=data.h, lam=data.lam, clustering="two_means",
                                   solver="dense", seed=seed)
            rep = pipeline.run(data.X_train, data.y_train, data.X_test, data.y_test,
                               dataset_name=name)
            row.dense_accuracy = rep.accuracy
        result.rows.append(row)
    return result
